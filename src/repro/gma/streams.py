"""Continuous SQL subscriptions — GridRM's streaming plane.

GMA names three interaction modes: request/response, query, and
*subscription*.  The R-GMA work the paper cites (Cooke & Nutt) makes the
third mode relational: a consumer registers ``SELECT ... FROM Processor
WHERE load > 0.9`` **once** and receives matching tuples as producers
publish them, with the predicate evaluated at the source rather than the
consumer.  This module is that plane for GridRM:

* :class:`StreamHub` — the producing gateway's registration endpoint.
  A continuous query is compiled once through the shared
  :class:`~repro.core.plans.PlanCache`; on every publish the bound
  predicate/projection runs *here*, and only matching tuples cross the
  wire.  Three producer flavours (R-GMA's vocabulary): ``latest``
  replays the current row per source on attach, ``history`` replays
  from the gateway's :class:`~repro.core.history.HistoryStore` since a
  client watermark, ``stream`` is publish-forward only.
* :class:`StreamConsumer` — the consumer side: registers continuous
  queries, receives tuple batches as datagrams, renews leases, and
  re-registers when a partition let a lease lapse.
* :class:`Republisher` — an archiving consumer upgraded to a producer:
  it subscribes to upstream tuple streams, folds them into windowed
  per-key aggregates (per-site ``AVG(load)``), and publishes the derived
  rows through its **own** hub, which downstream consumers subscribe to
  like any source.

Flow control reuses the bounded-buffer / pause-resume discipline of
:mod:`repro.gma.subscription`: while a subscription is paused its tuples
buffer (bounded) at the hub, and overflow fates (``drop_oldest`` |
``pause``) are counted, never silent.  Registration rides the same
Deadline / QueryClass / trace-context envelope as the GMA query wire,
and the hub honours the gateway's admission state: in BROWNOUT and SHED
pushes to BATCH-class subscriptions are suppressed (counted), and new
BATCH registrations are refused with a typed shed while the gateway is
shedding.

Leases sweep with a one-period **tombstone grace**: a subscription the
sweeper removed stays resurrectable until the *next* sweep, so a renewal
whose arrival the virtual clock inflated past the expiry instant (a
nested callback can push ``now`` beyond a later callback's due time —
see ``VirtualClock.advance_to``) still lands, and a short partition
heals without a re-registration round-trip.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.analysis import races
from repro.core.admission import QueryClass
from repro.gma.archiver import EventArchiver
from repro.core.deadline import Deadline
from repro.core.errors import DeadlineExceededError, GridRmError, OverloadError
from repro.core.history import HistoryStore
from repro.core.policy import GatewayPolicy
from repro.core.shed import PressureState, ShedAction, shed_action
from repro.glue.schema import GlueField, GlueGroup, GlueSchema
from repro.obs.trace import NO_TRACER, Tracer
from repro.simnet.errors import NetworkError
from repro.simnet.network import Address, Network
from repro.sql.errors import SqlError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.admission import AdmissionController
    from repro.core.plans import PlanCache
    from repro.sql.plan import CompiledPlan

STREAM_PORT = 8500
CONSUMER_PORT = 8501

#: Producer flavours, R-GMA's vocabulary (see module docstring).
FLAVOURS = ("stream", "latest", "history")


def encode_batch(
    cq_id: int,
    columns: list[str],
    rows: list[list[Any]],
    *,
    published_at: float,
    source_url: str,
    replay: bool,
) -> dict[str, Any]:
    """Wire form of one delivered tuple batch (plain dict)."""
    return {
        "kind": "gridrm-tuples",
        "cq": cq_id,
        "columns": list(columns),
        "rows": [list(r) for r in rows],
        "published_at": published_at,
        "source_url": source_url,
        "replay": replay,
    }


def decode_batch(payload: Any) -> Optional[dict[str, Any]]:
    if not isinstance(payload, dict) or payload.get("kind") != "gridrm-tuples":
        return None
    try:
        return {
            "kind": "gridrm-tuples",
            "cq": int(payload["cq"]),
            "columns": [str(c) for c in payload["columns"]],
            "rows": [list(r) for r in payload["rows"]],
            "published_at": float(payload["published_at"]),
            "source_url": str(payload.get("source_url", "")),
            "replay": bool(payload.get("replay", False)),
        }
    except (KeyError, TypeError, ValueError):
        return None


@dataclass
class _Continuous:
    """One registered continuous query at the hub."""

    cq_id: int
    consumer: Address
    sql: str
    flavour: str
    group: str
    plan: "CompiledPlan"
    query_class: str
    expires_at: float
    #: Backpressure: while paused, batches buffer here (bounded) instead
    #: of being pushed — a continuous query cannot OOM a slow consumer.
    max_buffer: int = 256
    overflow: str = "drop_oldest"
    paused: bool = False
    delivered: int = 0
    tuples: int = 0
    dropped: int = 0
    suppressed: int = 0
    unsatisfied: int = 0
    buffer: "deque[dict[str, Any]]" = field(default_factory=deque)


class StreamHub:
    """Producing-gateway endpoint for continuous SQL subscriptions.

    Control protocol (request/response on :data:`STREAM_PORT`, dict ops
    like the GMA query wire):

    * ``{"op": "register", "sql", "host", "port", "flavour", "lease",
      "max_buffer", "overflow", "query_class", "watermark",
      "deadline_budget", "trace_ctx"}`` ->
      ``{"ok": True, "cq": id, "group": g, "replayed": n}``;
      a shed registration returns the typed form
      ``{"ok": False, "shed": True, "retry_after": s, ...}``
    * ``{"op": "renew", "cq": id, "lease": s}`` -> ``{"ok": True}`` |
      ``{"ok": False, "error": "missing"}``
    * ``{"op": "deregister", "cq": id}`` -> same shape as renew
    * ``{"op": "pause", "cq": id}`` -> ``{"ok": True}``
    * ``{"op": "resume", "cq": id}`` -> ``{"ok": True, "flushed": n}``
    * ``{"op": "stats"}`` -> ``{"ok": True, "stats": {...}}``

    Constructible standalone (the :class:`Republisher` owns one with no
    gateway behind it) or wired by the Gateway when
    ``policy.streaming_enabled`` — the gateway injects its shared plan
    cache, schema, history store, tracer and admission controller.
    """

    def __init__(
        self,
        network: Network,
        host: str,
        *,
        plans: "PlanCache",
        schema: GlueSchema,
        policy: GatewayPolicy,
        history: "HistoryStore | None" = None,
        overload: "AdmissionController | None" = None,
        tracer: "Tracer | None" = None,
        port: int = STREAM_PORT,
    ) -> None:
        self.network = network
        self.host = host
        self.plans = plans
        self.schema = schema
        self.policy = policy
        self.history = history
        self.overload = overload
        self.tracer = tracer if tracer is not None else NO_TRACER
        self.address = Address(host, port)
        self._subs: dict[int, _Continuous] = {}
        #: Swept subscriptions kept resurrectable until the next sweep
        #: (the lease-gap fix: a renewal the clock carried past the
        #: expiry instant still lands; a short partition heals in place).
        self._tombstones: dict[int, _Continuous] = {}
        self._ids = itertools.count(1)
        #: Current row snapshot per (group, source) — what the ``latest``
        #: flavour replays on attach.
        self._latest: dict[str, dict[str, tuple[list[str], list[list[Any]]]]] = {}
        self.stats = {
            "registered": 0,
            "pushes": 0,
            "tuples": 0,
            "replayed": 0,
            "dropped": 0,
            "suppressed": 0,
            "shed": 0,
            "expired": 0,
            "resurrected": 0,
            "unsatisfied": 0,
        }
        network.listen(self.address, self._handle_control)
        self._sweep_task = network.clock.call_every(
            policy.stream_sweep_period, self.sweep
        )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _handle_control(self, payload: Any, src: Address) -> dict[str, Any]:
        if not isinstance(payload, dict) or "op" not in payload:
            return {"ok": False, "error": "malformed request"}
        op = payload["op"]
        try:
            if op == "register":
                return self._register(payload)
            if op == "renew":
                return self._renew(payload)
            if op == "deregister":
                return self._deregister(payload)
            if op == "pause":
                return self._pause(payload)
            if op == "resume":
                return self._resume(payload)
            if op == "stats":
                return {"ok": True, "stats": self.snapshot()}
        except OverloadError as exc:
            # Typed shed, same wire form as the GMA query path: the
            # consumer raises OverloadError with the retry-after hint,
            # never a breaker penalty against a merely-busy gateway.
            self.stats["shed"] += 1
            return {
                "ok": False,
                "shed": True,
                "retry_after": exc.retry_after,
                "query_class": exc.query_class,
                "error": str(exc),
            }
        except (GridRmError, SqlError) as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _register(self, payload: dict[str, Any]) -> dict[str, Any]:
        budget = payload.get("deadline_budget")
        if budget is not None and float(budget) <= 0:
            raise DeadlineExceededError(
                "deadline exhausted before continuous-query registration"
            )
        sql = str(payload.get("sql", ""))
        flavour = str(payload.get("flavour", "stream"))
        if flavour not in FLAVOURS:
            return {"ok": False, "error": f"unknown flavour {flavour!r}"}
        overflow = str(payload.get("overflow") or "drop_oldest")
        if overflow not in ("drop_oldest", "pause"):
            return {"ok": False, "error": f"unknown overflow policy {overflow!r}"}
        qc = QueryClass.parse(payload.get("query_class") or None)
        trace_ctx = payload.get("trace_ctx")
        with self.tracer.start_trace(
            "subscribe",
            remote_parent=trace_ctx if isinstance(trace_ctx, dict) else None,
            sql=sql,
            flavour=flavour,
            query_class=qc.value,
        ) as root:
            self._admit_registration(qc)
            if len(self._subs) >= self.policy.stream_max_subscriptions:
                raise OverloadError(
                    "continuous-query table full "
                    f"({self.policy.stream_max_subscriptions} registrations)",
                    retry_after=self.policy.stream_sweep_period,
                    query_class=qc.value,
                )
            entry = self.plans.get(sql)
            if entry.findings:
                return {"ok": False, "error": entry.findings[0].message}
            if entry.plan is None:
                return {
                    "ok": False,
                    "error": "statement shape not supported for "
                    "continuous evaluation",
                }
            group = (
                self.schema.group(entry.select.table).name
                if self.schema.has_group(entry.select.table)
                else entry.select.table
            )
            now = self.network.clock.now()
            cq = _Continuous(
                cq_id=next(self._ids),
                consumer=Address(
                    str(payload.get("host", "")), int(payload.get("port", 0))
                ),
                sql=sql,
                flavour=flavour,
                group=group,
                plan=entry.plan,
                query_class=qc.value,
                expires_at=now
                + float(payload.get("lease") or self.policy.stream_default_lease),
                max_buffer=int(payload.get("max_buffer") or 0)
                or self.policy.subscription_buffer_limit,
                overflow=overflow,
            )
            self._subs[cq.cq_id] = cq
            self.stats["registered"] += 1
            if races.ACTIVE is not None:
                races.ACTIVE.note(
                    "stream.subs", str(cq.cq_id), "w", site="StreamHub.register"
                )
            replayed = self._replay(cq, float(payload.get("watermark") or 0.0))
            root.annotate(cq=cq.cq_id, group=group, replayed=replayed)
            return {"ok": True, "cq": cq.cq_id, "group": group, "replayed": replayed}

    def _admit_registration(self, qc: QueryClass) -> None:
        """Refuse sheddable registrations while the gateway is shedding.

        Only the hard-SHED fate refuses: a registration has no stale to
        serve, so the brownout fates degrade on the *push* side instead
        (see :meth:`publish`).
        """
        ov = self.overload
        if ov is None or not ov.enabled:
            return
        if shed_action(ov.state, qc) is ShedAction.SHED:
            raise OverloadError(
                f"gateway is shedding {qc.value} registrations",
                retry_after=ov.monitor.retry_after(),
                query_class=qc.value,
            )

    def _replay(self, cq: _Continuous, watermark: float) -> int:
        """Flavour-specific attach replay; returns tuples replayed."""
        if cq.flavour == "stream":
            return 0
        now = self.network.clock.now()
        replayed = 0
        with self.tracer.span("replay", cq=cq.cq_id, flavour=cq.flavour):
            if cq.flavour == "latest":
                for source_url in sorted(self._latest.get(cq.group, {})):
                    columns, rows = self._latest[cq.group][source_url]
                    try:
                        result = cq.plan.bind(tuple(columns)).execute(rows)
                    except SqlError:
                        # A narrower publish left a snapshot without every
                        # column this plan needs; nothing to replay from it.
                        cq.unsatisfied += 1
                        self.stats["unsatisfied"] += 1
                        continue
                    if not result.rows:
                        continue
                    batch = encode_batch(
                        cq.cq_id,
                        list(result.columns),
                        [list(r) for r in result.rows],
                        published_at=now,
                        source_url=source_url,
                        replay=True,
                    )
                    replayed += len(result.rows)
                    self._offer(cq, batch)
            elif cq.flavour == "history" and self.history is not None:
                if cq.group in self.history.db.tables:
                    table = self.history.db.table(cq.group)
                    rows = HistoryStore._since_slice(table.rows, watermark)
                    # Cap at the newest rows: attach replay is a catch-up,
                    # not a full table scan shipped over the wire.
                    limit = self.policy.stream_replay_limit
                    if len(rows) > limit:
                        rows = rows[-limit:]
                    result = cq.plan.bind_mapping(
                        tuple(table.column_names)
                    ).execute(rows)
                    if result.rows:
                        batch = encode_batch(
                            cq.cq_id,
                            list(result.columns),
                            [list(r) for r in result.rows],
                            published_at=now,
                            source_url="history://" + cq.group,
                            replay=True,
                        )
                        replayed = len(result.rows)
                        self._offer(cq, batch)
        self.stats["replayed"] += replayed
        return replayed

    def _renew(self, payload: dict[str, Any]) -> dict[str, Any]:
        cq_id = int(payload.get("cq", 0))
        now = self.network.clock.now()
        cq = self._subs.get(cq_id)
        if cq is None:
            # Tombstone grace: this renewal may have been on the wire —
            # sent while the lease was still live — when the sweeper ran
            # and removed the subscription (transport delay carries the
            # arrival past the expiry instant).  Within one sweep period
            # the registration is resurrected in place, buffers and
            # counters intact.
            cq = self._tombstones.pop(cq_id, None)
            if cq is None:
                return {"ok": False, "error": "missing"}
            self._subs[cq_id] = cq
            self.stats["resurrected"] += 1
        cq.expires_at = now + float(
            payload.get("lease") or self.policy.stream_default_lease
        )
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "stream.subs", str(cq_id), "w", site="StreamHub.renew"
            )
        return {"ok": True}

    def _deregister(self, payload: dict[str, Any]) -> dict[str, Any]:
        cq_id = int(payload.get("cq", 0))
        removed = self._subs.pop(cq_id, None) or self._tombstones.pop(cq_id, None)
        if removed is None:
            return {"ok": False, "error": "missing"}
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "stream.subs", str(cq_id), "w", site="StreamHub.deregister"
            )
        return {"ok": True}

    def _pause(self, payload: dict[str, Any]) -> dict[str, Any]:
        cq = self._subs.get(int(payload.get("cq", 0)))
        if cq is None:
            return {"ok": False, "error": "missing"}
        cq.paused = True
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "stream.subs", str(cq.cq_id), "w", site="StreamHub.pause"
            )
        return {"ok": True}

    def _resume(self, payload: dict[str, Any]) -> dict[str, Any]:
        cq = self._subs.get(int(payload.get("cq", 0)))
        if cq is None:
            return {"ok": False, "error": "missing"}
        cq.paused = False
        flushed = len(cq.buffer)
        while cq.buffer:
            batch = cq.buffer.popleft()
            self.network.send(self.host, cq.consumer, batch)
            cq.delivered += 1
            cq.tuples += len(batch["rows"])
        if races.ACTIVE is not None:
            races.ACTIVE.note(
                "stream.subs", str(cq.cq_id), "w", site="StreamHub.resume"
            )
        return {"ok": True, "flushed": flushed}

    # ------------------------------------------------------------------
    # Publish plane
    # ------------------------------------------------------------------
    def publish(
        self,
        group: str,
        columns: list[str],
        rows: list[Any],
        *,
        source_url: str = "",
    ) -> int:
        """Evaluate every live continuous query against one publish.

        Called by the RequestManager after each real-time fetch (inside
        the fan-out branch, so the ``push`` spans nest under the live
        query trace) and by the :class:`Republisher`'s window rolls.
        Returns the number of subscriptions that received tuples.
        """
        g = (
            self.schema.group(group).name
            if self.schema.has_group(group)
            else group
        )
        cols = list(columns)
        snapshot = [list(r) for r in rows]
        self._latest.setdefault(g, {})[source_url] = (cols, snapshot)
        now = self.network.clock.now()
        suppress = self._brownout()
        pushed = 0
        for cq in self._subs.values():
            if cq.group != g or cq.expires_at < now:
                continue
            if suppress and cq.query_class == QueryClass.BATCH.value:
                # Admission interplay: a pressured gateway stops paying
                # per-publish evaluation + wire cost for the batch tier
                # first — the stream analogue of the brownout fate.
                cq.suppressed += 1
                self.stats["suppressed"] += 1
                continue
            try:
                result = cq.plan.bind(tuple(cols)).execute(snapshot)
            except SqlError:
                # This publish does not carry every column the plan needs
                # (a narrower real-time projection can acquire a subset of
                # the group).  The subscription simply cannot be satisfied
                # from this snapshot — skip it; a subscriber's plan must
                # never fail the publisher's query.
                cq.unsatisfied += 1
                self.stats["unsatisfied"] += 1
                continue
            if not result.rows:
                continue
            with self.tracer.span(
                "push", cq=cq.cq_id, group=g, rows=len(result.rows)
            ):
                batch = encode_batch(
                    cq.cq_id,
                    list(result.columns),
                    [list(r) for r in result.rows],
                    published_at=now,
                    source_url=source_url,
                    replay=False,
                )
                self._offer(cq, batch)
            if races.ACTIVE is not None:
                # Registered COMMUTATIVE: sibling fan-out branches
                # (different sources) push to one subscription in launch
                # order, but every batch carries its own source_url and
                # published_at, so consumers are insensitive to the
                # interleaving — the same argument as history appends.
                races.ACTIVE.note(
                    "stream.push", str(cq.cq_id), "w", site="StreamHub.publish"
                )
            pushed += 1
        return pushed

    def _brownout(self) -> bool:
        ov = self.overload
        return (
            ov is not None
            and ov.enabled
            and ov.state is not PressureState.NORMAL
        )

    def _offer(self, cq: _Continuous, batch: dict[str, Any]) -> None:
        """Push live, or buffer (bounded) while the consumer is paused."""
        if not cq.paused:
            self.network.send(self.host, cq.consumer, batch)
            cq.delivered += 1
            cq.tuples += len(batch["rows"])
            self.stats["pushes"] += 1
            self.stats["tuples"] += len(batch["rows"])
            return
        if len(cq.buffer) < cq.max_buffer:
            cq.buffer.append(batch)
            return
        # Bounded buffer full: something must be dropped, and counted.
        cq.dropped += 1
        self.stats["dropped"] += 1
        if cq.overflow == "drop_oldest":
            cq.buffer.popleft()
            cq.buffer.append(batch)
        # "pause": the newcomer is dropped — the orderly prefix survives.

    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Tombstone expired registrations; returns how many moved.

        Tombstones from the *previous* sweep are discarded first, so a
        swept registration stays resurrectable (via renew) for exactly
        one sweep period before it is truly gone.
        """
        self._tombstones.clear()
        now = self.network.clock.now()
        dead = [cq_id for cq_id, s in self._subs.items() if s.expires_at < now]
        for cq_id in dead:
            self._tombstones[cq_id] = self._subs.pop(cq_id)
            if races.ACTIVE is not None:
                races.ACTIVE.note(
                    "stream.subs", str(cq_id), "w", site="StreamHub.sweep"
                )
        self.stats["expired"] += len(dead)
        return len(dead)

    def close(self) -> None:
        """Stop background sweeping (gateway shutdown/crash)."""
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            self._sweep_task = None

    def subscription_count(self) -> int:
        return len(self._subs)

    def buffer_stats(self) -> dict[int, dict[str, Any]]:
        """Per-subscription flow-control state (console view)."""
        return {
            cq_id: {
                "sql": s.sql,
                "flavour": s.flavour,
                "group": s.group,
                "query_class": s.query_class,
                "paused": s.paused,
                "buffered": len(s.buffer),
                "max_buffer": s.max_buffer,
                "overflow": s.overflow,
                "delivered": s.delivered,
                "tuples": s.tuples,
                "dropped": s.dropped,
                "suppressed": s.suppressed,
            }
            for cq_id, s in sorted(self._subs.items())
        }

    def snapshot(self) -> dict[str, Any]:
        return {
            **self.stats,
            "subscriptions": len(self._subs),
            "tombstones": len(self._tombstones),
            "groups": sorted(self._latest),
        }


@dataclass
class _Registration:
    """Consumer-side record of one continuous query (for renew/recover)."""

    hub: Address
    cq_id: int
    sql: str
    flavour: str
    lease: float
    max_buffer: int | None
    overflow: str | None
    query_class: str
    #: Newest published_at seen — the watermark a lease recovery passes
    #: so a ``history`` re-registration does not replay delivered rows.
    last_published: float = 0.0


class StreamConsumer:
    """Consumer side: register continuous queries, receive tuple batches.

    Batches arrive as one-way datagrams on ``port``; they are retained in
    arrival order (``batches``, and per-query under ``delivered``) and
    handed to any registered callbacks.  A renew timer keeps every
    registration's lease alive at half-lease cadence; a renewal answered
    ``missing`` (the lease lapsed beyond the hub's tombstone grace, e.g.
    across a long partition) triggers an automatic re-registration with
    the last-seen watermark.
    """

    RENEW_FRACTION = 0.5

    def __init__(
        self,
        network: Network,
        host: str,
        *,
        port: int = CONSUMER_PORT,
        tracer: "Tracer | None" = None,
    ) -> None:
        if not network.has_host(host):
            network.add_host(host, site="consumer")
        self.network = network
        self.host = host
        self.tracer = tracer if tracer is not None else NO_TRACER
        self.address = Address(host, port)
        self.received = 0
        self.batches: list[dict[str, Any]] = []
        self.delivered: dict[int, list[dict[str, Any]]] = {}
        self._callbacks: list[Callable[[dict[str, Any]], None]] = []
        self._regs: list[_Registration] = []
        self._renew_timer = None
        self._renew_period = 0.0
        self.stats = {
            "renewals": 0,
            "renewal_failures": 0,
            "reregisters": 0,
            "shed": 0,
        }
        network.listen(
            self.address, lambda p, s: None, datagram_handler=self._on_datagram
        )

    # ------------------------------------------------------------------
    def _on_datagram(self, payload: Any, src: Address) -> None:
        batch = decode_batch(payload)
        if batch is None:
            return
        batch["received_at"] = self.network.clock.now()
        self.received += 1
        self.batches.append(batch)
        self.delivered.setdefault(batch["cq"], []).append(batch)
        for reg in self._regs:
            if reg.cq_id == batch["cq"]:
                reg.last_published = max(reg.last_published, batch["published_at"])
        for cb in list(self._callbacks):
            cb(batch)

    def on_batch(self, callback: Callable[[dict[str, Any]], None]) -> None:
        self._callbacks.append(callback)

    def rows(self, cq_id: int) -> list[list[Any]]:
        """All delivered rows for one continuous query, arrival order."""
        out: list[list[Any]] = []
        for batch in self.delivered.get(cq_id, []):
            out.extend(batch["rows"])
        return out

    # ------------------------------------------------------------------
    def register(
        self,
        hub: Address,
        sql: str,
        *,
        flavour: str = "stream",
        lease: float = 300.0,
        max_buffer: int | None = None,
        overflow: str | None = None,
        query_class: str = "",
        deadline: "Deadline | None" = None,
        watermark: float = 0.0,
        timeout: float = 5.0,
    ) -> int:
        """Register a continuous query at a hub; returns the cq id.

        ``deadline`` rides the registration hop exactly like a GMA
        query: the remaining budget clamps the network timeout and
        crosses the wire as ``deadline_budget``; an exhausted budget is
        refused at the hub.  A shed registration raises
        :class:`~repro.core.errors.OverloadError` with the hub's
        retry-after hint.
        """
        payload: dict[str, Any] = {
            "op": "register",
            "sql": sql,
            "host": self.address.host,
            "port": self.address.port,
            "flavour": flavour,
            "lease": lease,
            "watermark": watermark,
        }
        if max_buffer is not None:
            payload["max_buffer"] = int(max_buffer)
        if overflow is not None:
            payload["overflow"] = overflow
        if query_class:
            payload["query_class"] = query_class
        if deadline is not None:
            timeout = deadline.clamp(timeout, "stream.register")
            payload["deadline_budget"] = deadline.remaining()
        ctx = self.tracer.context()
        if ctx is not None:
            payload["trace_ctx"] = ctx
        with self.tracer.span("subscribe", hub=f"{hub.host}:{hub.port}"):
            response = self.network.request(
                self.host, hub, payload, timeout=timeout
            )
        response = response if isinstance(response, dict) else {}
        if response.get("shed"):
            self.stats["shed"] += 1
            raise OverloadError(
                str(response.get("error", "shed")),
                retry_after=float(response.get("retry_after", 0.0)),
                query_class=str(response.get("query_class", "")),
            )
        if not response.get("ok"):
            raise NetworkError(f"register rejected: {response!r}")
        reg = _Registration(
            hub=hub,
            cq_id=int(response["cq"]),
            sql=sql,
            flavour=flavour,
            lease=lease,
            max_buffer=max_buffer,
            overflow=overflow,
            query_class=query_class,
        )
        self._regs.append(reg)
        self._ensure_renewals()
        return reg.cq_id

    def _control(self, hub: Address, payload: dict[str, Any]) -> dict[str, Any]:
        response = self.network.request(self.host, hub, payload)
        return response if isinstance(response, dict) else {}

    def renew(self, hub: Address, cq_id: int, lease: float) -> bool:
        return bool(
            self._control(hub, {"op": "renew", "cq": cq_id, "lease": lease}).get(
                "ok"
            )
        )

    def pause(self, hub: Address, cq_id: int) -> bool:
        return bool(self._control(hub, {"op": "pause", "cq": cq_id}).get("ok"))

    def resume(self, hub: Address, cq_id: int) -> int:
        response = self._control(hub, {"op": "resume", "cq": cq_id})
        if not response.get("ok"):
            raise NetworkError(f"resume rejected: {response!r}")
        return int(response.get("flushed", 0))

    def deregister(self, hub: Address, cq_id: int) -> bool:
        ok = bool(self._control(hub, {"op": "deregister", "cq": cq_id}).get("ok"))
        self._regs = [r for r in self._regs if r.cq_id != cq_id]
        if not self._regs and self._renew_timer is not None:
            self._renew_timer.cancel()
            self._renew_timer = None
            self._renew_period = 0.0
        return ok

    # ------------------------------------------------------------------
    def _ensure_renewals(self) -> None:
        """(Re)arm the renew timer at half the *shortest* live lease.

        Recomputed on every registration — a later, shorter lease must
        tighten the cadence, or it would expire between renewals (the
        archiver had exactly this bug).
        """
        if not self._regs:
            return
        period = min(r.lease for r in self._regs) * self.RENEW_FRACTION
        if self._renew_timer is not None:
            if period >= self._renew_period:
                return
            self._renew_timer.cancel()
        self._renew_period = period
        self._renew_timer = self.network.clock.call_every(period, self._renew_all)

    def _renew_all(self) -> None:
        for reg in self._regs:
            try:
                ok = self.renew(reg.hub, reg.cq_id, reg.lease)
            except NetworkError:
                self.stats["renewal_failures"] += 1
                continue
            if ok:
                self.stats["renewals"] += 1
                continue
            # The hub no longer knows this registration (lease lapsed
            # beyond the tombstone grace — e.g. a healed partition):
            # recover it with the last-seen watermark so a history
            # flavour does not replay rows already delivered.
            try:
                response = self._control(
                    reg.hub,
                    {
                        "op": "register",
                        "sql": reg.sql,
                        "host": self.address.host,
                        "port": self.address.port,
                        "flavour": reg.flavour,
                        "lease": reg.lease,
                        "watermark": reg.last_published,
                        **(
                            {"max_buffer": int(reg.max_buffer)}
                            if reg.max_buffer is not None
                            else {}
                        ),
                        **(
                            {"overflow": reg.overflow}
                            if reg.overflow is not None
                            else {}
                        ),
                        **(
                            {"query_class": reg.query_class}
                            if reg.query_class
                            else {}
                        ),
                    },
                )
            except NetworkError:
                self.stats["renewal_failures"] += 1
                continue
            if response.get("ok"):
                reg.cq_id = int(response["cq"])
                self.stats["reregisters"] += 1
            else:
                self.stats["renewal_failures"] += 1

    def stop(self) -> None:
        """Deregister everything and stop renewing."""
        for reg in list(self._regs):
            try:
                self._control(reg.hub, {"op": "deregister", "cq": reg.cq_id})
            except NetworkError:
                pass
        self._regs.clear()
        if self._renew_timer is not None:
            self._renew_timer.cancel()
            self._renew_timer = None
            self._renew_period = 0.0


# ----------------------------------------------------------------------
# Derived streams
# ----------------------------------------------------------------------
#: Derived-group aggregate columns appended after the key column.
DERIVED_FIELDS = (
    GlueField("AvgValue", "REAL"),
    GlueField("MinValue", "REAL"),
    GlueField("MaxValue", "REAL"),
    GlueField("Samples", "INTEGER"),
    GlueField("WindowStart", "TIMESTAMP"),
    GlueField("WindowEnd", "TIMESTAMP"),
)


@dataclass
class _Derivation:
    """One windowed aggregation over an upstream continuous query."""

    hub: Address
    cq_id: int
    group: str
    key_column: str
    value_column: str
    window: float
    window_start: float
    #: (key, value) samples accumulated since the last roll.
    pending: list[tuple[Any, float]] = field(default_factory=list)
    task: Any = None
    windows_published: int = 0


class Republisher(EventArchiver):
    """The :class:`~repro.gma.archiver.EventArchiver`, upgraded from an
    archiving consumer into a producer of derived streams.

    R-GMA's archiver/republisher shape: besides archiving upstream
    *event* feeds (the inherited behaviour), it subscribes to upstream
    *tuple* streams, folds each window into per-key aggregates (e.g.
    per-host ``AVG(load)``), and publishes the derived rows through an
    **own** :class:`StreamHub` — downstream consumers register
    continuous queries against the derived group exactly as against any
    gateway.

    ``derive()`` declares one aggregation: it registers the upstream
    continuous query, adds a GLUE group for the derived rows to the
    republisher's private schema (key column + :data:`DERIVED_FIELDS`),
    and rolls a window every ``window`` virtual seconds.
    """

    def __init__(
        self,
        network: Network,
        host: str,
        *,
        archive_port: int = 8450,
        hub_port: int = STREAM_PORT,
        consumer_port: int = CONSUMER_PORT,
        max_rows: int = 100_000,
        policy: GatewayPolicy | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        super().__init__(network, host, port=archive_port, max_rows=max_rows)
        self.policy = policy if policy is not None else GatewayPolicy()
        self.tracer = tracer if tracer is not None else NO_TRACER
        self.schema = GlueSchema("derived-1")
        # Private plan cache over the derived schema: downstream
        # continuous queries against derived groups compile here.  The
        # schema object is mutable (derive() adds groups), and new
        # groups only ever *add* — cached plans stay valid.
        from repro.core.plans import PlanCache

        self.plans = PlanCache(self.schema, tracer=self.tracer)
        self.hub = StreamHub(
            network,
            host,
            plans=self.plans,
            schema=self.schema,
            policy=self.policy,
            tracer=self.tracer,
            port=hub_port,
        )
        self.consumer = StreamConsumer(
            network, host, port=consumer_port, tracer=self.tracer
        )
        self.consumer.on_batch(self._on_batch)
        self._derivations: list[_Derivation] = []
        # Extends the inherited archiver counters, never replaces them.
        self.stats.update({"samples": 0, "windows": 0, "skipped_rows": 0})

    # ------------------------------------------------------------------
    def derive(
        self,
        upstream: Address,
        sql: str,
        *,
        key_column: str,
        value_column: str,
        window: float,
        group: str,
        flavour: str = "stream",
        lease: float = 300.0,
        query_class: str = "",
    ) -> _Derivation:
        """Declare one windowed aggregation over an upstream stream."""
        if window <= 0:
            raise ValueError(f"window must be > 0: {window!r}")
        if not self.schema.has_group(group):
            self.schema.add_group(
                GlueGroup(
                    name=group,
                    fields=(GlueField(key_column, "TEXT"),) + DERIVED_FIELDS,
                    description=f"windowed {value_column} aggregate of {sql!r}",
                )
            )
        cq_id = self.consumer.register(
            upstream,
            sql,
            flavour=flavour,
            lease=lease,
            query_class=query_class,
        )
        derivation = _Derivation(
            hub=upstream,
            cq_id=cq_id,
            group=group,
            key_column=key_column,
            value_column=value_column,
            window=window,
            window_start=self.network.clock.now(),
        )
        derivation.task = self.network.clock.call_every(
            window, lambda d=derivation: self._roll(d)
        )
        self._derivations.append(derivation)
        return derivation

    def _on_batch(self, batch: dict[str, Any]) -> None:
        for derivation in self._derivations:
            if derivation.cq_id != batch["cq"]:
                continue
            columns = batch["columns"]
            try:
                ki = columns.index(derivation.key_column)
                vi = columns.index(derivation.value_column)
            except ValueError:
                self.stats["skipped_rows"] += len(batch["rows"])
                continue
            for row in batch["rows"]:
                value = row[vi]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    self.stats["skipped_rows"] += 1
                    continue
                derivation.pending.append((row[ki], float(value)))
                self.stats["samples"] += 1

    def _roll(self, derivation: _Derivation) -> None:
        """Close one window: publish per-key aggregates, reset pending."""
        now = self.network.clock.now()
        window_start, derivation.window_start = derivation.window_start, now
        samples, derivation.pending = derivation.pending, []
        if not samples:
            return
        by_key: dict[Any, list[float]] = {}
        for key, value in samples:
            by_key.setdefault(key, []).append(value)
        columns = [derivation.key_column] + [f.name for f in DERIVED_FIELDS]
        rows = [
            [
                key,
                sum(values) / len(values),
                min(values),
                max(values),
                len(values),
                window_start,
                now,
            ]
            for key, values in sorted(by_key.items(), key=lambda kv: str(kv[0]))
        ]
        derivation.windows_published += 1
        self.stats["windows"] += 1
        self.hub.publish(
            derivation.group,
            columns,
            rows,
            source_url=f"republish://{self.host}/{derivation.group}",
        )

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Deregister everywhere, stop window rolls and the hub sweep."""
        super().stop()
        for derivation in self._derivations:
            if derivation.task is not None:
                derivation.task.cancel()
                derivation.task = None
        self._derivations.clear()
        self.consumer.stop()
        self.hub.close()
