"""GMA directory service.

The directory is itself a networked service (Figure 1 shows gateways
registering with a "GMA Directory"): it runs on its own host and answers
register / unregister / lookup requests.  :class:`DirectoryClient` is the
stub gateways and consumers use.

Wire protocol (tuples over the simulated network):

* ``("register_producer", record_fields)`` -> ``("ok",)``
* ``("unregister_producer", key)`` -> ``("ok",)`` | ``("missing",)``
* ``("lookup_site", site)`` -> ``("ok", [record_fields...])``
* ``("list_producers",)`` -> ``("ok", [record_fields...])``
* ``("register_consumer", record_fields)`` -> ``("ok",)``
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Sequence

from repro.gma.records import ConsumerRecord, ProducerRecord
from repro.simnet.network import Address, Network

DIRECTORY_PORT = 8200


class GMADirectory:
    """The directory service process."""

    def __init__(
        self, network: Network, host: str = "gma-directory", *, port: int = DIRECTORY_PORT
    ) -> None:
        if not network.has_host(host):
            network.add_host(host, site="gma")
        self.network = network
        self.address = Address(host, port)
        self._producers: dict[str, ProducerRecord] = {}
        self._consumers: dict[str, ConsumerRecord] = {}
        self.requests_served = 0
        network.listen(self.address, self._handle)

    # ------------------------------------------------------------------
    def _handle(self, payload: Any, src: Address) -> tuple:
        self.requests_served += 1
        if not isinstance(payload, tuple) or not payload:
            return ("error", "malformed request")
        op = payload[0]
        if op == "register_producer":
            record = ProducerRecord(**payload[1])
            self._producers[record.key()] = record
            return ("ok",)
        if op == "unregister_producer":
            return ("ok",) if self._producers.pop(payload[1], None) else ("missing",)
        if op == "lookup_site":
            hits = [asdict(r) for r in self._producers.values() if r.site == payload[1]]
            return ("ok", hits)
        if op == "list_producers":
            return ("ok", [asdict(r) for r in self._producers.values()])
        if op == "register_consumer":
            record = ConsumerRecord(**payload[1])
            self._consumers[record.key()] = record
            return ("ok",)
        if op == "list_consumers":
            return ("ok", [asdict(r) for r in self._consumers.values()])
        return ("error", f"unknown op {op!r}")

    # Direct (in-process) views, for tests and the console.
    def producers(self) -> list[ProducerRecord]:
        return sorted(self._producers.values(), key=ProducerRecord.key)

    def consumers(self) -> list[ConsumerRecord]:
        return sorted(self._consumers.values(), key=ConsumerRecord.key)


class DirectoryClient:
    """Network stub for the directory service."""

    def __init__(self, network: Network, from_host: str, directory: Address) -> None:
        self.network = network
        self.from_host = from_host
        self.directory = directory

    def _call(self, *payload: Any) -> tuple:
        response = self.network.request(self.from_host, self.directory, tuple(payload))
        if not isinstance(response, tuple) or not response:
            raise RuntimeError("malformed directory response")
        if response[0] == "error":
            raise RuntimeError(f"directory error: {response[1]}")
        return response

    def register_producer(self, record: ProducerRecord) -> None:
        self._call("register_producer", asdict(record))

    def unregister_producer(self, key: str) -> bool:
        return self._call("unregister_producer", key)[0] == "ok"

    def lookup_site(self, site: str) -> list[ProducerRecord]:
        return [ProducerRecord(**d) for d in self._call("lookup_site", site)[1]]

    def lookup_sites(self, sites: Sequence[str]) -> dict[str, list[ProducerRecord]]:
        """Resolve several sites with overlapped directory round-trips.

        Uses deferred RPC (:meth:`Network.request_async` + ``gather``) so
        N lookups cost ~one round-trip of virtual time instead of N.
        Falls back to serial calls inside a concurrent branch, where the
        clock cannot be pumped (deliveries are deferred to the join).
        """
        sites = list(sites)
        if len(sites) <= 1 or self.network.clock.in_concurrent_branch:
            return {site: self.lookup_site(site) for site in sites}
        futures = [
            self.network.request_async(
                self.from_host, self.directory, ("lookup_site", site)
            )
            for site in sites
        ]
        responses = self.network.gather(futures)
        out: dict[str, list[ProducerRecord]] = {}
        for site, response in zip(sites, responses):
            if not isinstance(response, tuple) or not response:
                raise RuntimeError("malformed directory response")
            if response[0] == "error":
                raise RuntimeError(f"directory error: {response[1]}")
            out[site] = [ProducerRecord(**d) for d in response[1]]
        return out

    def list_producers(self) -> list[ProducerRecord]:
        return [ProducerRecord(**d) for d in self._call("list_producers")[1]]

    def register_consumer(self, record: ConsumerRecord) -> None:
        self._call("register_consumer", asdict(record))
