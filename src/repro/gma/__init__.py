"""GMA Global layer (paper Figure 1).

"The Global layer, which provides inter Grid site, or Virtual
Organisation, interaction is based on the Global Grid Forum's Grid
Monitoring Architecture (GMA)."  GMA's three parts are all here:

* :mod:`repro.gma.directory` — the directory service producers and
  consumers register with and look each other up in;
* :mod:`repro.gma.producer` — a gateway-side producer answering remote
  queries over the network;
* :mod:`repro.gma.consumer` — the consumer used to reach remote
  producers;
* :mod:`repro.gma.global_layer` — glues a Gateway into the GMA fabric:
  registration, remote-query routing, and gateway-to-gateway caching
  ("used between gateways to increase scalability by reducing
  unnecessary requests", §4).
"""

from repro.gma.records import ProducerRecord, ConsumerRecord
from repro.gma.directory import GMADirectory, DirectoryClient
from repro.gma.producer import GatewayProducer
from repro.gma.consumer import GatewayConsumer
from repro.gma.global_layer import GlobalLayer, RemoteQueryError
from repro.gma.subscription import EventPublisher, EventSubscriber
from repro.gma.archiver import EventArchiver
from repro.gma.streams import Republisher, StreamConsumer, StreamHub

__all__ = [
    "ProducerRecord",
    "ConsumerRecord",
    "GMADirectory",
    "DirectoryClient",
    "GatewayProducer",
    "GatewayConsumer",
    "GlobalLayer",
    "RemoteQueryError",
    "EventPublisher",
    "EventSubscriber",
    "EventArchiver",
    "StreamHub",
    "StreamConsumer",
    "Republisher",
]
