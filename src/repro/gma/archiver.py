"""Multi-gateway event archiver — an archiving GMA consumer.

The GMA architecture the paper builds on explicitly anticipates
"archiver" consumers: components that subscribe to many producers and
record the event stream for later analysis (R-GMA, which the paper cites,
is exactly this shape).  :class:`EventArchiver` subscribes to any number
of gateway :class:`~repro.gma.subscription.EventPublisher` endpoints and
records every received event into its own relational store, queryable
with the same SQL engine the rest of GridRM uses.

It renews its subscription leases automatically while running, so it
survives publisher lease expiry, and exposes small report helpers the
operations examples/benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.events import Event
from repro.gma.subscription import EventPublisher, EventSubscriber
from repro.simnet.errors import NetworkError
from repro.simnet.network import Address, Network
from repro.sql.database import Database
from repro.sql.executor import SelectResult


@dataclass
class _Feed:
    publisher: Address
    subscription_id: int
    lease: float
    name_prefix: str = ""


class EventArchiver:
    """Subscribes to gateways and archives their event streams."""

    RENEW_FRACTION = 0.5  # renew when half the lease has elapsed

    def __init__(
        self,
        network: Network,
        host: str,
        *,
        port: int = 8450,
        max_rows: int = 100_000,
    ) -> None:
        if not network.has_host(host):
            network.add_host(host, site="archiver")
        self.network = network
        self.host = host
        self.max_rows = max_rows
        self.subscriber = EventSubscriber(network, host, port=port)
        self.subscriber.on_event(self._archive)
        self._feeds: list[_Feed] = []
        self._renew_timer = None
        self._renew_period = 0.0
        self.db = Database()
        self.stats = {
            "archived": 0,
            "renewals": 0,
            "renewal_failures": 0,
            "resubscribes": 0,
        }
        self.db.create_table(
            "events",
            [
                ("source_host", "TEXT"),
                ("name", "TEXT"),
                ("severity", "TEXT"),
                ("time", "TIMESTAMP"),
                ("native_kind", "TEXT"),
                ("received_at", "TIMESTAMP"),
            ],
        )

    # ------------------------------------------------------------------
    def follow(
        self,
        publisher: EventPublisher | Address,
        *,
        name_prefix: str = "",
        lease: float = 300.0,
    ) -> int:
        """Subscribe to a gateway's events; returns the subscription id."""
        address = (
            publisher.address if isinstance(publisher, EventPublisher) else publisher
        )
        sid = self.subscriber.subscribe(
            address, name_prefix=name_prefix, lease=lease
        )
        self._feeds.append(
            _Feed(
                publisher=address,
                subscription_id=sid,
                lease=lease,
                name_prefix=name_prefix,
            )
        )
        self._ensure_renewals()
        return sid

    def _ensure_renewals(self) -> None:
        """(Re)arm the renew timer at half the *shortest* live lease.

        Recomputed on every follow: a later feed with a shorter lease
        must tighten the cadence, or it would expire between renewals.
        """
        if not self._feeds:
            return
        period = min(f.lease for f in self._feeds) * self.RENEW_FRACTION
        if self._renew_timer is not None:
            if period >= self._renew_period:
                return
            self._renew_timer.cancel()
        self._renew_period = period
        self._renew_timer = self.network.clock.call_every(period, self._renew_all)

    def _renew_all(self) -> None:
        for feed in self._feeds:
            try:
                ok = self.subscriber.renew(
                    feed.publisher, feed.subscription_id, feed.lease
                )
            except NetworkError:
                self.stats["renewal_failures"] += 1
                continue
            if ok:
                self.stats["renewals"] += 1
                continue
            # The publisher no longer knows the subscription — the lease
            # lapsed beyond the sweep's tombstone grace (e.g. across a
            # partition that has since healed).  Recover by
            # re-subscribing rather than silently renewing into the
            # void forever.
            try:
                feed.subscription_id = self.subscriber.subscribe(
                    feed.publisher,
                    name_prefix=feed.name_prefix,
                    lease=feed.lease,
                )
                self.stats["resubscribes"] += 1
            except NetworkError:
                self.stats["renewal_failures"] += 1

    def stop(self) -> None:
        """Unsubscribe everywhere and stop renewing."""
        for feed in self._feeds:
            try:
                self.subscriber.unsubscribe(feed.publisher, feed.subscription_id)
            except NetworkError:
                pass
        self._feeds.clear()
        if self._renew_timer is not None:
            self._renew_timer.cancel()
            self._renew_timer = None
            self._renew_period = 0.0

    # ------------------------------------------------------------------
    def _archive(self, event: Event) -> None:
        table = self.db.table("events")
        table.insert_row(
            {
                "source_host": event.source_host,
                "name": event.name,
                "severity": event.severity,
                "time": event.time,
                "native_kind": event.native_kind,
                "received_at": self.network.clock.now(),
            }
        )
        overflow = len(table.rows) - self.max_rows
        if overflow > 0:
            del table.rows[:overflow]
        self.stats["archived"] += 1

    # ------------------------------------------------------------------
    def query(self, sql: str) -> SelectResult:
        """Arbitrary SQL over the archive (table: ``events``)."""
        return self.db.query(sql)

    def event_count(self) -> int:
        return len(self.db.table("events").rows)

    def noisiest_hosts(self, limit: int = 5) -> list[tuple[str, int]]:
        result = self.db.query(
            "SELECT source_host, COUNT(*) AS n FROM events "
            f"GROUP BY source_host ORDER BY n DESC, source_host ASC LIMIT {limit}"
        )
        return [(r[0], r[1]) for r in result.rows]

    def severity_breakdown(self) -> dict[str, int]:
        result = self.db.query(
            "SELECT severity, COUNT(*) FROM events GROUP BY severity"
        )
        return {r[0]: r[1] for r in result.rows}
