"""GMA consumer: the client side of gateway-to-gateway queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.deadline import Deadline
from repro.core.errors import GridRmError, OverloadError
from repro.gma.directory import DirectoryClient
from repro.gma.records import ProducerRecord
from repro.obs.trace import NO_TRACER, Tracer
from repro.simnet.errors import NetworkError
from repro.simnet.network import Address, Network


class RemoteQueryFailure(GridRmError):
    """The remote gateway rejected or failed the query.

    A :class:`GridRmError` so the dispatch layer treats it as a
    legitimate branch/flight outcome (captured and shared), not a
    programming error.
    """


@dataclass
class RemoteResult:
    """A remote gateway's answer, mirroring QueryResult's shape."""

    columns: list[str]
    rows: list[list[Any]]
    statuses: list[dict[str, Any]] = field(default_factory=list)
    producer: ProducerRecord | None = None
    #: Trace id of the query as executed at the *remote* gateway (its
    #: tracer owns that trace; ours only records the wire span).
    remote_trace_id: str = ""

    def dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, r)) for r in self.rows]


class GatewayConsumer:
    """Looks producers up in the directory and queries them."""

    def __init__(
        self,
        network: Network,
        from_host: str,
        directory: DirectoryClient,
        *,
        from_site: str = "",
        tracer: Tracer | None = None,
    ) -> None:
        self.network = network
        self.from_host = from_host
        self.directory = directory
        self.from_site = from_site or network.site_of(from_host)
        self.tracer = tracer if tracer is not None else NO_TRACER
        self.queries_sent = 0

    # ------------------------------------------------------------------
    def producers_for(self, site: str) -> list[ProducerRecord]:
        return self.directory.lookup_site(site)

    def query_producer(
        self,
        producer: ProducerRecord,
        sql: str,
        *,
        urls: list[str] | None = None,
        mode: str = "cached_ok",
        max_age: float | None = None,
        timeout: float | None = None,
        deadline: Deadline | None = None,
        query_class: str | None = None,
    ) -> RemoteResult:
        """Send one query to one producer.

        A ``deadline`` clamps the network timeout to the remaining
        budget and rides along on the wire as ``deadline_budget`` — a
        relative number of seconds, because the producer's clock is not
        ours to anchor an absolute instant against.  The producer
        re-anchors it locally, so every hop sees only what is left.
        ``query_class`` rides along too, so the remote gateway's
        admission control sheds by the *originating* query's priority.
        A remote shed comes back as :class:`OverloadError` — typed, so
        callers never mistake a protecting gateway for a failing one.
        """
        self.queries_sent += 1
        payload = {
            "op": "query",
            "sql": sql,
            "urls": urls,
            "mode": mode,
            "max_age": max_age,
            "from_site": self.from_site,
        }
        if query_class is not None:
            payload["query_class"] = query_class
        if deadline is not None:
            base = self.network.DEFAULT_TIMEOUT if timeout is None else timeout
            timeout = deadline.clamp(base, f"remote query to {producer.key()}")
            payload["deadline_budget"] = deadline.remaining()
        # Span context rides the wire so the remote gateway re-parents
        # its own query trace under this hop (see GatewayProducer._query).
        ctx = self.tracer.context()
        if ctx is not None:
            payload["trace_ctx"] = ctx
        with self.tracer.span("wire", producer=producer.key()) as span:
            try:
                response = self.network.request(
                    self.from_host,
                    Address(producer.gateway_host, producer.port),
                    payload,
                    timeout=timeout,
                )
            except NetworkError as exc:
                raise RemoteQueryFailure(
                    f"producer {producer.key()} unreachable: {exc}"
                ) from exc
            if isinstance(response, dict) and response.get("shed"):
                # The remote gateway refused the query to protect itself:
                # propagate as the typed shed, not a producer failure
                # (no failover to siblings, no breaker penalty upstream).
                span["shed"] = True
                raise OverloadError(
                    f"producer {producer.key()} shed the query: "
                    f"{response.get('error', 'overloaded')}",
                    retry_after=float(response.get("retry_after", 0) or 0),
                    query_class=str(response.get("query_class", "")),
                )
            if not isinstance(response, dict) or not response.get("ok"):
                error = (
                    response.get("error") if isinstance(response, dict) else "garbage"
                )
                raise RemoteQueryFailure(f"producer {producer.key()}: {error}")
            remote_trace_id = str(response.get("trace_id", ""))
            if remote_trace_id:
                span["remote_trace"] = remote_trace_id
            # Batched wire shape (status keys once, statuses positional);
            # the legacy dict-per-status form is still decoded so mixed
            # gateway versions interoperate.
            if "status_rows" in response:
                keys = list(response.get("status_keys", []))
                statuses = [
                    dict(zip(keys, row))
                    for row in response.get("status_rows", [])
                ]
            else:
                statuses = list(response.get("statuses", []))
            return RemoteResult(
                columns=list(response.get("columns", [])),
                rows=[list(r) for r in response.get("rows", [])],
                statuses=statuses,
                producer=producer,
                remote_trace_id=remote_trace_id,
            )

    def query_site(
        self,
        site: str,
        sql: str,
        *,
        urls: list[str] | None = None,
        mode: str = "cached_ok",
        max_age: float | None = None,
        producers: list[ProducerRecord] | None = None,
        deadline: Deadline | None = None,
        query_class: str | None = None,
    ) -> RemoteResult:
        """Query a site via its first reachable registered producer.

        ``producers`` short-circuits the directory lookup when the caller
        already resolved the site (e.g. a batched
        :meth:`DirectoryClient.lookup_sites` round).  A ``deadline``
        stops the failover loop: once the budget is gone, remaining
        producers are not tried (``DeadlineExceededError`` propagates
        rather than being folded into the all-failed summary).  A shed
        (:class:`OverloadError`) stops it too — a producer protecting
        itself is not a producer that failed, and hammering its siblings
        with the same query would amplify the overload.
        """
        if producers is None:
            producers = self.producers_for(site)
        if not producers:
            raise RemoteQueryFailure(f"no producer registered for site {site!r}")
        last: Exception | None = None
        for producer in producers:
            try:
                return self.query_producer(
                    producer, sql, urls=urls, mode=mode, max_age=max_age,
                    deadline=deadline, query_class=query_class,
                )
            except RemoteQueryFailure as exc:
                last = exc
        raise RemoteQueryFailure(
            f"all {len(producers)} producer(s) for {site!r} failed: {last}"
        )

    def query_sites(
        self,
        sites: Sequence[str],
        sql: str,
        *,
        mode: str = "cached_ok",
        max_age: float | None = None,
        urls_by_site: dict[str, list[str]] | None = None,
        deadline: Deadline | None = None,
        query_class: str | None = None,
    ) -> "list[RemoteResult | RemoteQueryFailure | OverloadError]":
        """Scatter one query to several sites concurrently.

        Directory lookups for all sites go out in one overlapped round,
        then each site's query runs as a concurrent branch in virtual
        time — the scatter costs the slowest site's round-trip, not the
        sum.  Results come back in ``sites`` order; a site that fails
        contributes its :class:`RemoteQueryFailure` in place rather than
        aborting the gather.
        """
        sites = list(sites)
        urls_by_site = urls_by_site or {}
        if not sites:
            return []

        producers_by_site = self.directory.lookup_sites(sites)

        def one(site: str) -> "RemoteResult | RemoteQueryFailure | OverloadError":
            try:
                return self.query_site(
                    site,
                    sql,
                    urls=urls_by_site.get(site),
                    mode=mode,
                    max_age=max_age,
                    producers=producers_by_site[site],
                    deadline=deadline,
                    query_class=query_class,
                )
            except (RemoteQueryFailure, OverloadError) as exc:
                # Both are legitimate per-site outcomes: returned in
                # place (never raised out of a concurrent branch, which
                # would abort the gather's sibling sites).
                return exc

        if len(sites) == 1:
            return [one(sites[0])]
        results: "list[RemoteResult | RemoteQueryFailure | OverloadError]" = []
        with self.network.clock.concurrent() as scope:
            for site in sites:
                with scope.branch():
                    results.append(one(site))
        return results
