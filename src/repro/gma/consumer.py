"""GMA consumer: the client side of gateway-to-gateway queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.gma.directory import DirectoryClient
from repro.gma.records import ProducerRecord
from repro.simnet.errors import NetworkError
from repro.simnet.network import Address, Network


class RemoteQueryFailure(Exception):
    """The remote gateway rejected or failed the query."""


@dataclass
class RemoteResult:
    """A remote gateway's answer, mirroring QueryResult's shape."""

    columns: list[str]
    rows: list[list[Any]]
    statuses: list[dict[str, Any]] = field(default_factory=list)
    producer: ProducerRecord | None = None

    def dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, r)) for r in self.rows]


class GatewayConsumer:
    """Looks producers up in the directory and queries them."""

    def __init__(
        self,
        network: Network,
        from_host: str,
        directory: DirectoryClient,
        *,
        from_site: str = "",
    ) -> None:
        self.network = network
        self.from_host = from_host
        self.directory = directory
        self.from_site = from_site or network.site_of(from_host)
        self.queries_sent = 0

    # ------------------------------------------------------------------
    def producers_for(self, site: str) -> list[ProducerRecord]:
        return self.directory.lookup_site(site)

    def query_producer(
        self,
        producer: ProducerRecord,
        sql: str,
        *,
        urls: list[str] | None = None,
        mode: str = "cached_ok",
        max_age: float | None = None,
        timeout: float | None = None,
    ) -> RemoteResult:
        """Send one query to one producer."""
        self.queries_sent += 1
        payload = {
            "op": "query",
            "sql": sql,
            "urls": urls,
            "mode": mode,
            "max_age": max_age,
            "from_site": self.from_site,
        }
        try:
            response = self.network.request(
                self.from_host,
                Address(producer.gateway_host, producer.port),
                payload,
                timeout=timeout,
            )
        except NetworkError as exc:
            raise RemoteQueryFailure(
                f"producer {producer.key()} unreachable: {exc}"
            ) from exc
        if not isinstance(response, dict) or not response.get("ok"):
            error = response.get("error") if isinstance(response, dict) else "garbage"
            raise RemoteQueryFailure(f"producer {producer.key()}: {error}")
        return RemoteResult(
            columns=list(response.get("columns", [])),
            rows=[list(r) for r in response.get("rows", [])],
            statuses=list(response.get("statuses", [])),
            producer=producer,
        )

    def query_site(
        self,
        site: str,
        sql: str,
        *,
        urls: list[str] | None = None,
        mode: str = "cached_ok",
        max_age: float | None = None,
    ) -> RemoteResult:
        """Query a site via its first reachable registered producer."""
        producers = self.producers_for(site)
        if not producers:
            raise RemoteQueryFailure(f"no producer registered for site {site!r}")
        last: Exception | None = None
        for producer in producers:
            try:
                return self.query_producer(
                    producer, sql, urls=urls, mode=mode, max_age=max_age
                )
            except RemoteQueryFailure as exc:
                last = exc
        raise RemoteQueryFailure(
            f"all {len(producers)} producer(s) for {site!r} failed: {last}"
        )
