"""Gateway-side GMA producer.

Listens on the gateway host and answers remote query requests: the paper
deploys each gateway as a servlet reachable from other sites (Figure 1);
the producer is that servlet's query endpoint.  Security decisions are
made *here*, by the owning gateway (paper §2: "In a hierarchy of GridRM
Gateways, security decisions can be deferred to the local Gateway
responsible for a given resource"), against a ``remote:<site>`` role
principal.

Wire protocol::

    {"op": "query", "urls": [...], "sql": "...", "mode": "cached_ok",
     "from_site": "site-b", "max_age": 10.0}
      -> {"ok": True, "columns": [...], "rows": [...],
          "status_keys": [...], "status_rows": [[...], ...]}
    {"op": "groups"} -> {"ok": True, "groups": [...]}
    {"op": "sources"} -> {"ok": True, "urls": [...]}
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.core.deadline import Deadline
from repro.core.errors import DeadlineExceededError, GridRmError, OverloadError
from repro.core.request_manager import QueryMode
from repro.core.security import Principal
from repro.dbapi.exceptions import SQLException
from repro.simnet.network import Address
from repro.sql.errors import SqlError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway

PRODUCER_PORT = 8300


class GatewayProducer:
    """The gateway's Global-layer query endpoint."""

    def __init__(self, gateway: "Gateway", *, port: int = PRODUCER_PORT) -> None:
        self.gateway = gateway
        self.address = Address(gateway.host, port)
        self.requests_served = 0
        gateway.network.listen(self.address, self._handle)

    def _handle(self, payload: Any, src: Address) -> dict[str, Any]:
        self.requests_served += 1
        if not isinstance(payload, dict) or "op" not in payload:
            return {"ok": False, "error": "malformed request"}
        op = payload["op"]
        try:
            if op == "query":
                return self._query(payload)
            if op == "groups":
                return {"ok": True, "groups": self.gateway.schema_manager.group_names()}
            if op == "sources":
                return {
                    "ok": True,
                    "urls": [str(s.url) for s in self.gateway.sources() if s.enabled],
                }
        except OverloadError as exc:
            # This gateway shed the query to protect itself.  The refusal
            # crosses the wire as a *typed* shed (not a generic failure)
            # so the consumer raises OverloadError — never a breaker
            # penalty or failover storm against a merely-busy site.
            return {
                "ok": False,
                "shed": True,
                "retry_after": exc.retry_after,
                "query_class": exc.query_class,
                "error": str(exc),
            }
        except (GridRmError, SQLException, SqlError) as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _query(self, payload: dict[str, Any]) -> dict[str, Any]:
        urls = payload.get("urls") or [
            str(s.url) for s in self.gateway.sources() if s.enabled
        ]
        sql = payload["sql"]
        mode = QueryMode(payload.get("mode", "cached_ok"))
        from_site = payload.get("from_site", "unknown")
        principal = Principal.with_roles(f"remote:{from_site}", "remote")
        # The wire carries the *remaining* budget as a relative number of
        # seconds (clocks are per-simulation here, but real deployments
        # cannot assume synchronised clocks either); re-anchor it against
        # our own clock so every local hop inherits what is left.
        budget = payload.get("deadline_budget")
        deadline = None
        if budget is not None:
            if budget <= 0:
                raise DeadlineExceededError(
                    f"remote query from {from_site!r} arrived with no budget left"
                )
            deadline = Deadline.after(self.gateway.network.clock, budget)
        # Span context from the consumer's wire envelope: the local trace
        # records where in the *caller's* trace this query hangs, and the
        # response carries our trace id back for cross-site correlation.
        trace_ctx = payload.get("trace_ctx")
        result = self.gateway.query(
            urls,
            sql,
            mode=mode,
            principal=principal,
            max_age=payload.get("max_age"),
            deadline=deadline,
            trace_parent=trace_ctx if isinstance(trace_ctx, dict) else None,
            query_class=payload.get("query_class"),
        )
        # Batched wire shape: column labels (result columns AND status
        # keys) cross the wire once per response; every row and status is
        # a positional list.  For an N-source status list that saves
        # N-1 copies of the key strings — bandwidth-delay charging sees
        # the honest, smaller payload.  (The consumer zips keys to rows
        # positionally, so extending the key list is wire-compatible.)
        return {
            "ok": True,
            "trace_id": result.trace_id,
            "columns": result.columns,
            "rows": result.rows,
            "status_keys": [
                "url", "ok", "rows", "from_cache", "degraded", "shed", "error"
            ],
            "status_rows": [
                [s.url, s.ok, s.rows, s.from_cache, s.degraded, s.shed, s.error]
                for s in result.statuses
            ],
        }
