"""GlobalLayer: a gateway's attachment to the GMA fabric.

"Clients are free to connect to any Gateway; requests for remote resource
data are routed through to the Global layer for processing by the gateway
that owns the required data" (paper §1.1).  The GlobalLayer:

* registers the gateway's producer with the GMA directory;
* answers ``query_remote``: route a query to the owning site's gateway;
* caches remote answers in the local gateway's CacheController — "this
  approach is used between gateways to increase scalability by reducing
  unnecessary requests" (§4, experiment E7);
* tracks each remote gateway's health in the local gateway's circuit
  breakers (key ``gma://<site>``): a partitioned or dead site is
  fast-failed (or served stale from the remote-answer cache, flagged
  degraded) instead of adding its full timeout to every multi-site
  query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.deadline import Deadline
from repro.core.errors import GridRmError, OverloadError
from repro.core.security import ANONYMOUS, Principal
from repro.gma.consumer import GatewayConsumer, RemoteQueryFailure, RemoteResult
from repro.gma.directory import DirectoryClient, GMADirectory
from repro.gma.producer import PRODUCER_PORT, GatewayProducer
from repro.gma.records import ProducerRecord
from repro.obs.metrics import StatsView
from repro.simnet.network import Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gateway import Gateway


class RemoteQueryError(GridRmError):
    """A remote (inter-site) query could not be served."""


class GlobalLayer:
    """One gateway's Global-layer endpoint + routing logic."""

    def __init__(
        self,
        gateway: "Gateway",
        directory: GMADirectory | Address,
        *,
        producer_port: int = PRODUCER_PORT,
        cache_remote: bool = True,
    ) -> None:
        self.gateway = gateway
        directory_address = (
            directory.address if isinstance(directory, GMADirectory) else directory
        )
        self.directory = DirectoryClient(
            gateway.network, gateway.host, directory_address
        )
        self.producer = GatewayProducer(gateway, port=producer_port)
        self.consumer = GatewayConsumer(
            gateway.network,
            gateway.host,
            self.directory,
            from_site=gateway.site,
            tracer=gateway.tracer,
        )
        self.cache_remote = cache_remote
        self.stats = StatsView(
            gateway.metrics,
            "gma",
            (
                "remote_queries",
                "remote_cache_hits",
                "remote_short_circuits",
                "remote_stale_served",
                "remote_coalesced",
                "remote_sheds",
            ),
        )
        self.register()
        # Enable the gateway's transparent remote-URL routing (paper
        # §1.1: remote requests "are routed through to the Global layer").
        gateway.global_layer = self

    # ------------------------------------------------------------------
    def register(self) -> None:
        """(Re-)register this gateway's producer with the directory."""
        record = ProducerRecord(
            site=self.gateway.site,
            gateway_host=self.gateway.host,
            port=self.producer.address.port,
            groups=tuple(self.gateway.schema_manager.group_names()),
            registered_at=self.gateway.network.clock.now(),
        )
        self.directory.register_producer(record)

    def unregister(self) -> None:
        record_key = (
            f"{self.gateway.site}@{self.gateway.host}:{self.producer.address.port}"
        )
        self.directory.unregister_producer(record_key)

    # ------------------------------------------------------------------
    def query_remote(
        self,
        site: str,
        sql: str,
        *,
        urls: list[str] | None = None,
        mode: str = "cached_ok",
        max_age: float | None = None,
        principal: Principal = ANONYMOUS,
        deadline: Deadline | None = None,
        query_class: str | None = None,
    ) -> RemoteResult:
        """Route a query to the gateway owning ``site``'s resources.

        The local CGSL gates outbound remote queries; the remote FGSL is
        applied by the owning gateway when it executes them.  A
        ``deadline`` is checked before any remote cost is paid and
        carried onto the wire as the remaining budget, so the owning
        gateway inherits what is left rather than a fresh allowance.
        ``query_class`` crosses the wire so the remote gateway's
        admission control sheds by the originating query's priority; a
        remote shed propagates as :class:`OverloadError` and is *not* a
        breaker failure against ``gma://<site>``.
        """
        self.gateway.cgsl.check(principal, "query_remote")
        if deadline is not None:
            deadline.check(f"remote query to site {site!r}")
        with self.gateway.tracer.span("remote", site=site) as span:
            return self._query_remote_traced(
                site, sql, urls, mode, max_age, deadline, span, query_class
            )

    def _query_remote_traced(
        self,
        site: str,
        sql: str,
        urls: list[str] | None,
        mode: str,
        max_age: float | None,
        deadline: Deadline | None,
        span,
        query_class: str | None = None,
    ) -> RemoteResult:
        self.stats["remote_queries"] += 1
        cache_key_url = f"gma://{site}" + (f"/{','.join(urls)}" if urls else "")
        if self.cache_remote:
            cached = self.gateway.cache.lookup(cache_key_url, sql, max_age=max_age)
            if cached is not None:
                self.stats["remote_cache_hits"] += 1
                span["cache"] = "hit"
                return RemoteResult(
                    columns=list(cached.columns),
                    rows=[list(r) for r in cached.rows],
                    statuses=[{"url": cache_key_url, "ok": True, "from_cache": True}],
                )
        # The remote gateway has a circuit breaker in the local gateway's
        # health tracker: while it is OPEN a partitioned site costs
        # nothing instead of a full consumer timeout per query.
        health = self.gateway.health
        health_key = f"gma://{site}"
        if not health.allow_request(health_key):
            self.stats["remote_short_circuits"] += 1
            span["short_circuited"] = True
            if self.cache_remote and self.gateway.policy.serve_stale_on_open:
                stale = self.gateway.cache.lookup_stale(cache_key_url, sql)
                if stale is not None:
                    self.stats["remote_stale_served"] += 1
                    span["stale"] = True
                    return RemoteResult(
                        columns=list(stale.columns),
                        rows=[list(r) for r in stale.rows],
                        statuses=[
                            {
                                "url": cache_key_url,
                                "ok": True,
                                "from_cache": True,
                                "degraded": True,
                            }
                        ],
                    )
            entry = health.health(health_key)
            raise RemoteQueryError(
                f"circuit open for site {site!r} until t={entry.open_until:.1f}s "
                f"(last error: {entry.last_error or 'unknown'})"
            )
        # Single-flight: an identical query to this site already in the
        # air answers both callers with one consumer round-trip; the
        # per-source concurrency cap queues excess requests to one
        # remote gateway in virtual time.
        dispatcher = self.gateway.dispatcher
        flight = dispatcher.join_flight(cache_key_url, sql)
        if flight is not None:
            self.stats["remote_coalesced"] += 1
            span["coalesced"] = True
            if isinstance(flight.error, OverloadError):
                # The shared flight was shed by the remote gateway:
                # joiners get the same typed shed, not a generic failure.
                raise flight.error
            if flight.error is not None:
                raise RemoteQueryError(str(flight.error)) from flight.error
            shared = flight.value
            return RemoteResult(
                columns=list(shared.columns),
                rows=[list(r) for r in shared.rows],
                statuses=[dict(s, coalesced=True) for s in shared.statuses],
                producer=shared.producer,
            )
        try:
            result = dispatcher.run_flight(
                cache_key_url,
                sql,
                lambda: self.consumer.query_site(
                    site, sql, urls=urls, mode=mode, max_age=max_age,
                    deadline=deadline, query_class=query_class,
                ),
            )
        except OverloadError:
            # A shed says nothing about the remote site's health: no
            # record_failure (the breaker must not trip on a gateway
            # protecting itself), just the typed error to the caller.
            self.stats["remote_sheds"] += 1
            raise
        except RemoteQueryFailure as exc:
            health.record_failure(health_key, str(exc))
            raise RemoteQueryError(str(exc)) from exc
        health.record_success(health_key)
        if result.remote_trace_id:
            span["remote_trace"] = result.remote_trace_id
        if self.cache_remote:
            self.gateway.cache.store(cache_key_url, sql, result.columns, result.rows)
        return result

    def query_remote_all(
        self,
        sites: Sequence[str],
        sql: str,
        *,
        mode: str = "cached_ok",
        max_age: float | None = None,
        principal: Principal = ANONYMOUS,
    ) -> dict[str, RemoteResult | Exception]:
        """Scatter one query across several sites concurrently.

        Each site goes through the full :meth:`query_remote` path (CGSL,
        remote-answer cache, circuit breaker, single-flight) as its own
        concurrent branch, so the gather costs the slowest site's
        round-trip in virtual time.  Returns per-site results keyed in
        ``sites`` order; a site that fails maps to its exception rather
        than aborting the rest.
        """
        sites = list(sites)

        def member(site: str):
            return lambda: self.query_remote(
                site, sql, mode=mode, max_age=max_age, principal=principal
            )

        outcomes = self.gateway.dispatcher.run([member(s) for s in sites])
        return {
            site: (o.value if o.error is None else o.error)
            for site, o in zip(sites, outcomes)
        }

    def known_sites(self) -> list[str]:
        """All sites with a registered producer (for the console)."""
        return sorted({p.site for p in self.directory.list_producers()})
