"""Lockstep dual-run divergence harness: ``python -m repro racecheck``.

The dynamic half of the determinism sanitizer.  The virtual-lane race
detector (:mod:`repro.analysis.races`) catches unordered-branch sharing
*as it happens*; this harness proves the end-to-end property the whole
system claims — that a seeded scenario is a pure function of its seed —
by running the standard chaos scenario **twice in lockstep** and
comparing three independent evidence streams:

* **per-round result digests** — columns, rows and per-source statuses
  of every query round (the client-visible surface);
* **trace renders** — the retained query traces' deterministic ASCII
  renders (the observability surface, byte-identical by design);
* **WAL frame digests** — the durable history's write-ahead-log frames
  (the storage surface).

Run 1 executes under the race detector; run 2 does not.  Matching
streams therefore also prove the detector's hooks are pure observers.
On mismatch the harness *bisects*: it names the first diverging round,
the first diverging trace (and the first differing line inside it), or
the first diverging WAL frame — the instant replay identity broke, not
just the fact that it did.

Chaos runs get the same check per-seed via ``repro chaos
--verify-replay``; CI's ``racecheck-smoke`` job runs this harness over a
seed matrix.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis import races
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.simnet.clock import VirtualClock
from repro.simnet.faults import FaultPlane
from repro.simnet.network import Network
from repro.storage.simdisk import SimDisk
from repro.storage.wal import read_frames
from repro.testbed import build_site


def _digest(payload: Any) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


@dataclass
class _Capture:
    """Everything one scenario run leaves behind for comparison."""

    round_digests: list[str] = field(default_factory=list)
    trace_renders: list[str] = field(default_factory=list)
    wal_frames: list[str] = field(default_factory=list)
    wal_tail: str = ""
    race_findings: list[str] = field(default_factory=list)
    race_accesses: int = 0


@dataclass
class RacecheckReport:
    """Outcome of one dual-run divergence check."""

    seed: int
    rounds: int
    #: GRM55x findings from the detector (run 1) — must be empty.
    race_findings: list[str] = field(default_factory=list)
    #: Shared-state accesses the detector inspected in run 1.
    race_accesses: int = 0
    #: Bisected divergence descriptions — must be empty.
    divergence: list[str] = field(default_factory=list)
    rounds_compared: int = 0
    traces_compared: int = 0
    wal_frames_compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.race_findings and not self.divergence

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "race_findings": list(self.race_findings),
            "race_accesses": self.race_accesses,
            "divergence": list(self.divergence),
            "rounds_compared": self.rounds_compared,
            "traces_compared": self.traces_compared,
            "wal_frames_compared": self.wal_frames_compared,
            "ok": self.ok,
        }

    def format(self) -> str:
        lines = [
            f"Racecheck: seed={self.seed}, {self.rounds} rounds, dual run",
            f"  lane races: {len(self.race_findings)} finding(s) over "
            f"{self.race_accesses} shared-state accesses",
            f"  lockstep compare: {self.rounds_compared} rounds, "
            f"{self.traces_compared} traces, "
            f"{self.wal_frames_compared} WAL frames",
        ]
        for finding in self.race_findings:
            lines.append(f"    {finding}")
        if self.divergence:
            lines.append(f"  DIVERGENCE ({len(self.divergence)}):")
            for d in self.divergence:
                lines.append(f"    - {d}")
        else:
            lines.append("  replay identity: OK (all three streams identical)")
        return "\n".join(lines)


def _run_once(
    *,
    seed: int,
    rounds: int,
    hosts: int,
    agents: Sequence[str],
    period: float,
    deadline: float,
    warmup_rounds: int,
    sql: str,
    race_detect: bool,
) -> _Capture:
    """One full scenario run; returns its evidence streams."""
    from repro.chaos import install_standard_faults

    clock = VirtualClock()
    network = Network(clock, seed=seed)
    disk = SimDisk(
        clock=clock, write_latency=0.0002, fsync_latency=0.002, read_latency=0.0005
    )
    policy = GatewayPolicy(
        hedge_enabled=True,
        fanout_enabled=True,
        retry_attempts=2,
        default_deadline=deadline,
        history_durable=True,
        # One WAL generation for the whole run: every frame stays
        # comparable by index (rotation would reshuffle file names).
        history_checkpoint_interval=0.0,
    )
    site = build_site(
        network,
        name="racecheck",
        n_hosts=hosts,
        agents=tuple(agents),
        seed=seed,
        policy=policy,
        disk=disk,
    )
    gw = site.gateway
    clock.advance(60.0)
    urls = list(site.source_urls)

    capture = _Capture()
    detector = races.RaceDetector.standard(clock) if race_detect else None
    if detector is not None:
        gw.race_detector = detector
    ambient = races.activate(detector) if detector is not None else None
    if ambient is not None:
        ambient.__enter__()
    try:
        for _ in range(max(0, warmup_rounds)):
            gw.query(urls, sql, mode=QueryMode.REALTIME)
            clock.advance(period)

        plane = FaultPlane(network, seed=seed)
        install_standard_faults(plane, site, period=period, rounds=rounds)

        for i in range(rounds):
            result = gw.query(urls, sql, mode=QueryMode.REALTIME)
            capture.round_digests.append(
                _digest(
                    (
                        i,
                        result.columns,
                        result.rows,
                        [
                            (s.url, s.ok, s.rows, s.from_cache, s.degraded, s.error)
                            for s in result.statuses
                        ],
                    )
                )
            )
            clock.advance(period)
        clock.advance(10 * period)
    finally:
        if ambient is not None:
            ambient.__exit__(None, None, None)

    if detector is not None:
        capture.race_findings = [f.format() for f in detector.report()]
        capture.race_accesses = detector.accesses_noted

    capture.trace_renders = [t.render() for t in gw.tracer.traces()]

    engine = gw.history_engine
    if engine is not None:
        engine.sync()
        frames, tail, _ = read_frames(disk.read(engine.wal.path))
        capture.wal_frames = [
            hashlib.sha256(f).hexdigest()[:16] for f in frames
        ]
        capture.wal_tail = tail
    return capture


def _first_diff_line(a: str, b: str) -> tuple[int, str, str]:
    """(1-based line number, line from a, line from b) of the first
    differing line between two renders."""
    lines_a = a.splitlines()
    lines_b = b.splitlines()
    for i, (la, lb) in enumerate(zip(lines_a, lines_b)):
        if la != lb:
            return i + 1, la, lb
    n = min(len(lines_a), len(lines_b))
    return (
        n + 1,
        lines_a[n] if n < len(lines_a) else "<absent>",
        lines_b[n] if n < len(lines_b) else "<absent>",
    )


def _bisect_streams(run1: _Capture, run2: _Capture, report: RacecheckReport) -> None:
    """Compare the three evidence streams; name the first divergence."""
    report.rounds_compared = min(len(run1.round_digests), len(run2.round_digests))
    for i, (d1, d2) in enumerate(zip(run1.round_digests, run2.round_digests)):
        if d1 != d2:
            report.divergence.append(
                f"round {i}: result digest {d1} != {d2} — first diverging "
                "query round (rows/statuses differ between runs)"
            )
            break

    report.traces_compared = min(len(run1.trace_renders), len(run2.trace_renders))
    if len(run1.trace_renders) != len(run2.trace_renders):
        report.divergence.append(
            f"trace count differs: {len(run1.trace_renders)} != "
            f"{len(run2.trace_renders)}"
        )
    for i, (t1, t2) in enumerate(zip(run1.trace_renders, run2.trace_renders)):
        if t1 != t2:
            line, la, lb = _first_diff_line(t1, t2)
            report.divergence.append(
                f"trace {i} line {line}: first diverging span line: "
                f"{la!r} != {lb!r}"
            )
            break

    report.wal_frames_compared = min(len(run1.wal_frames), len(run2.wal_frames))
    if len(run1.wal_frames) != len(run2.wal_frames):
        report.divergence.append(
            f"WAL frame count differs: {len(run1.wal_frames)} != "
            f"{len(run2.wal_frames)}"
        )
    for i, (f1, f2) in enumerate(zip(run1.wal_frames, run2.wal_frames)):
        if f1 != f2:
            report.divergence.append(
                f"WAL frame {i}: digest {f1} != {f2} — first diverging "
                "durable history frame"
            )
            break
    if run1.wal_tail != run2.wal_tail:
        report.divergence.append(
            f"WAL tail classification differs: {run1.wal_tail!r} != "
            f"{run2.wal_tail!r}"
        )


def run_racecheck(
    *,
    seed: int = 0,
    rounds: int = 15,
    hosts: int = 4,
    agents: Sequence[str] = ("snmp", "ganglia"),
    period: float = 30.0,
    deadline: float = 10.0,
    warmup_rounds: int = 10,
    sql: str = "SELECT * FROM Processor",
) -> RacecheckReport:
    """Run the scenario twice (detector on, then off) and compare.

    Returns a :class:`RacecheckReport`; ``report.ok`` is True iff the
    detector saw no lane races *and* the two runs were byte-identical
    across rounds, traces and WAL frames.  Never raises on divergence —
    the caller (CLI, CI) decides what a red report means.
    """
    kwargs = dict(
        seed=seed,
        rounds=rounds,
        hosts=hosts,
        agents=agents,
        period=period,
        deadline=deadline,
        warmup_rounds=warmup_rounds,
        sql=sql,
    )
    run1 = _run_once(race_detect=True, **kwargs)
    run2 = _run_once(race_detect=False, **kwargs)

    report = RacecheckReport(seed=seed, rounds=rounds)
    report.race_findings = run1.race_findings
    report.race_accesses = run1.race_accesses
    _bisect_streams(run1, run2, report)
    return report
