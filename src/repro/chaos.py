"""Chaos scenario runner: the fault plane pointed at a live testbed.

``python -m repro chaos`` (or :func:`run_chaos` from a test) builds a
site, installs a standard :class:`~repro.simnet.faults.FaultPlane`
scenario — latency spikes, a slowed host, a flapping host, a flaky agent
port, payload corruption and a timed partition — and drives query rounds
through it, measuring what the robustness machinery (deadlines, retry
budgets, hedged requests, circuit breakers) does to tail latency.

Everything is seeded: re-running with the same ``seed`` and the same
knobs replays the exact same fault schedule, the same per-request fault
draws and therefore byte-identical results — the :class:`ChaosReport`
carries a SHA-256 signature over every round's rows and statuses to make
replay identity checkable.  (Different knobs legitimately produce
different signatures: hedges and retries consume extra fault draws, and
fan-out shifts request instants.)  The soak tests assert replay identity
per configuration, plus the structural invariants: no stuck network
futures and no inconsistent breaker entries once the dust settles.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.dispatch import percentile
from repro.core.health import BreakerState
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.simnet.faults import FaultPlane
from repro.testbed import Site, build_testbed


@dataclass
class ChaosReport:
    """One chaos run's measurements and invariant checks."""

    seed: int
    rounds: int
    hedging: bool
    fanout: bool
    deadline: float
    #: Per-round end-to-end virtual latencies, in round order.
    latencies: list[float] = field(default_factory=list)
    ok_rounds: int = 0
    #: SHA-256 over every round's (columns, rows, statuses) — the replay
    #: identity: same seed => same signature, whatever the knobs.
    signature: str = ""
    requests: dict[str, Any] = field(default_factory=dict)
    dispatch: dict[str, Any] = field(default_factory=dict)
    faults: dict[str, Any] = field(default_factory=dict)
    breakers: dict[str, Any] = field(default_factory=dict)
    #: Breaker entries violating structural invariants (must be empty).
    breaker_violations: list[str] = field(default_factory=list)
    #: Span-tree invariant violations across every retained query trace
    #: (closure, containment, hedge accounting — must be empty).
    trace_violations: list[str] = field(default_factory=list)
    #: Query traces checked by the invariant pass.
    traces_checked: int = 0
    #: Unresolved NetFutures after the run (must be 0).
    pending_futures: int = 0
    elapsed_virtual: float = 0.0
    #: GRM55x lane-race findings (``race_detect=True`` runs only; must
    #: be empty — an entry means two unordered branches shared state).
    race_findings: list[str] = field(default_factory=list)
    #: State accesses the race detector inspected (0 = detection off).
    race_accesses: int = 0

    # ------------------------------------------------------------------
    def latency(self, q: float) -> float:
        """The q-th percentile of per-round latency (virtual seconds)."""
        return percentile(self.latencies, q)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "hedging": self.hedging,
            "fanout": self.fanout,
            "deadline": self.deadline,
            "p50": self.latency(50),
            "p95": self.latency(95),
            "p99": self.latency(99),
            "max": max(self.latencies),
            "ok_rounds": self.ok_rounds,
            "signature": self.signature,
            "requests": dict(self.requests),
            "dispatch": dict(self.dispatch),
            "faults": dict(self.faults),
            "breakers": dict(self.breakers),
            "breaker_violations": list(self.breaker_violations),
            "trace_violations": list(self.trace_violations),
            "traces_checked": self.traces_checked,
            "pending_futures": self.pending_futures,
            "elapsed_virtual": self.elapsed_virtual,
            "race_findings": list(self.race_findings),
            "race_accesses": self.race_accesses,
        }

    def format(self) -> str:
        """Console rendering of the run."""
        r = self.requests
        d = self.dispatch
        f = self.faults
        lines = [
            f"Chaos run: seed={self.seed}, {self.rounds} rounds, "
            f"hedging {'on' if self.hedging else 'off'}, "
            f"fan-out {'on' if self.fanout else 'off'}, "
            f"deadline={self.deadline:g}s",
            f"  latency (virtual): p50={self.latency(50):.3f}s "
            f"p95={self.latency(95):.3f}s p99={self.latency(99):.3f}s "
            f"max={max(self.latencies):.3f}s",
            f"  clean rounds: {self.ok_rounds}/{self.rounds}, "
            f"source failures: {r.get('source_failures', 0)}, "
            f"deadline exceeded: {r.get('deadline_exceeded', 0)}",
            f"  retries: {r.get('retries', 0)} "
            f"(gave up {r.get('retry_giveups', 0)})",
            f"  hedges: fired {d.get('hedges_fired', 0)}, "
            f"won {d.get('hedges_won', 0)}, "
            f"cancelled {d.get('hedges_cancelled', 0)}, "
            f"saved {d.get('hedge_time_saved', 0.0):.2f}s virtual",
            f"  faults injected: spikes={f.get('spikes_injected', 0)} "
            f"(+{f.get('spike_seconds', 0.0):.1f}s), "
            f"refusals={f.get('refusals', 0)}, "
            f"corruptions={f.get('corruptions', 0)}, "
            f"flaps={f.get('flaps', 0)}, "
            f"partitions={f.get('partitions', 0)}/"
            f"heals={f.get('heals', 0)}",
            f"  breakers: {self.breakers.get('trips', 0)} trips, "
            f"{self.breakers.get('recoveries', 0)} recoveries, "
            f"{self.breakers.get('open', 0)} open at end",
            f"  invariants: pending futures={self.pending_futures}, "
            f"breaker violations={len(self.breaker_violations)}, "
            f"trace violations={len(self.trace_violations)} "
            f"({self.traces_checked} traces checked)",
        ]
        if self.race_accesses:
            lines.append(
                f"  lane races: {len(self.race_findings)} finding(s) over "
                f"{self.race_accesses} shared-state accesses"
            )
        lines += [
            f"  replay signature: {self.signature[:16]}…",
        ]
        return "\n".join(lines)


def install_standard_faults(
    plane: FaultPlane, site: Site, *, period: float, rounds: int
) -> None:
    """Schedule the canonical chaos scenario over one site.

    All windows are expressed relative to *now* and scaled by the poll
    ``period`` so the same mix of overlapping faults hits whatever the
    cadence: two spiky hosts from the start, a mid-run slowdown, a
    flapping host, a flaky agent port, a corruption window, and a timed
    partition (auto-healed) between the gateway and one host.
    """
    hosts = site.host_names()

    def h(i: int) -> str:
        return hosts[i % len(hosts)]

    span = rounds * period
    plane.latency_spikes(h(0), prob=0.30, extra=1.5)
    plane.latency_spikes(h(1), prob=0.15, extra=2.5, start=0.1 * span)
    plane.slow_host(
        h(1), factor=3.0, service_time=0.05, start=0.25 * span, duration=0.25 * span
    )
    plane.flap_host(h(2), down_at=0.2 * span, down_for=1.5 * period, times=2)
    plane.flaky_port(h(0), prob=0.25, start=0.4 * span, duration=0.3 * span)
    plane.corrupt_payloads(h(1), prob=0.15, start=0.55 * span, duration=0.25 * span)
    plane.partition_between(
        [site.gateway.host], [h(3)], start=0.7 * span, duration=1.5 * period
    )


def _breaker_violations(board: dict[str, dict[str, Any]]) -> list[str]:
    """Structural invariants every breaker entry must satisfy."""
    valid = {s.value for s in BreakerState}
    out = []
    for key, e in board.items():
        if e["state"] not in valid:
            out.append(f"{key}: unknown state {e['state']!r}")
        if e["consecutive_failures"] > e["total_failures"]:
            out.append(f"{key}: consecutive_failures > total_failures")
        if e["state"] == BreakerState.OPEN.value and e["open_until"] <= 0:
            out.append(f"{key}: OPEN with no open_until instant")
        if e["trips"] > 0 and e["total_failures"] == 0:
            out.append(f"{key}: tripped without any recorded failure")
    return out


def _maybe_detect(detector: "Any | None"):
    """races.activate(detector), or a no-op context when detection is off."""
    if detector is None:
        return nullcontext()
    from repro.analysis import races

    return races.activate(detector)


def run_chaos(
    *,
    seed: int = 0,
    rounds: int = 30,
    hosts: int = 4,
    agents: Sequence[str] = ("snmp", "ganglia"),
    hedging: bool = True,
    fanout: bool = True,
    deadline: float = 10.0,
    period: float = 30.0,
    warmup_rounds: int = 10,
    sql: str = "SELECT * FROM Processor",
    race_detect: bool = False,
) -> ChaosReport:
    """Build a site, inject the standard fault scenario, measure.

    ``warmup_rounds`` clean polls run first so the hedger has a latency
    window to take its percentile from; faults start only after warm-up,
    so two runs differing only in knobs see the identical schedule.
    Returns a :class:`ChaosReport`; raises nothing on per-source
    failures (they are part of the measurement).

    ``race_detect=True`` runs the whole scenario under the virtual-lane
    race detector (:mod:`repro.analysis.races`): any unordered-branch
    shared-state access lands in ``report.race_findings`` as a GRM55x
    line, and the detector stays attached to the gateway so a later
    ``gw.analyze()`` reports the same findings.
    """
    policy = GatewayPolicy(
        fanout_enabled=fanout,
        hedge_enabled=hedging,
        retry_attempts=2,
        default_deadline=deadline,
    )
    network, (site,) = build_testbed(
        n_hosts=hosts, agents=tuple(agents), seed=seed, policy=policy
    )
    gw = site.gateway
    clock = network.clock
    clock.advance(60.0)
    urls = list(site.source_urls)

    detector = None
    if race_detect:
        from repro.analysis import races

        detector = races.RaceDetector.standard(clock)
        gw.race_detector = detector
    with _maybe_detect(detector):
        for _ in range(max(0, warmup_rounds)):
            gw.query(urls, sql, mode=QueryMode.REALTIME)
            clock.advance(period)

        plane = FaultPlane(network, seed=seed)
        install_standard_faults(plane, site, period=period, rounds=rounds)

        report = ChaosReport(
            seed=seed, rounds=rounds, hedging=hedging, fanout=fanout, deadline=deadline
        )
        digest = hashlib.sha256()
        started = clock.now()
        for i in range(rounds):
            result = gw.query(urls, sql, mode=QueryMode.REALTIME)
            report.latencies.append(result.elapsed)
            if all(s.ok for s in result.statuses):
                report.ok_rounds += 1
            digest.update(
                repr(
                    (
                        i,
                        result.columns,
                        result.rows,
                        [
                            (s.url, s.ok, s.rows, s.from_cache, s.degraded, s.error)
                            for s in result.statuses
                        ],
                    )
                ).encode()
            )
            clock.advance(period)
        # Drain anything still scheduled (fault heals, breaker re-probes) so
        # the invariant checks see the settled end state.
        clock.advance(10 * period)

    if detector is not None:
        report.race_findings = [f.format() for f in detector.report()]
        report.race_accesses = detector.accesses_noted

    report.signature = digest.hexdigest()
    report.elapsed_virtual = clock.now() - started
    report.requests = dict(gw.request_manager.stats)
    report.dispatch = gw.dispatcher.stats.as_dict()
    report.faults = plane.stats.as_dict()
    report.breakers = gw.health.summary()
    report.breaker_violations = _breaker_violations(gw.health.scoreboard())
    from repro.obs.invariants import check_tracer

    report.traces_checked = len(gw.tracer.traces())
    report.trace_violations = check_tracer(gw.tracer)
    report.pending_futures = network.pending_futures()
    return report


# ----------------------------------------------------------------------
# Overload scenario: offered-load spike x slow-host fault
# ----------------------------------------------------------------------
@dataclass
class OverloadReport:
    """One overload-chaos run's measurements and invariant checks.

    *Goodput* counts complete answers delivered **within the deadline
    budget** (every source ok — brownout stale serves qualify: the
    client got a complete, honestly degraded-marked answer, fast).  An
    answer that limps in after the deadline is *not* good — the client
    gave up — which is what makes queueing collapse measurable even
    where nothing raised: work kept completing, just ever later.  Sheds,
    deadline blowouts and partial results produce no good answer either.
    """

    seed: int
    rounds: int
    shedding: bool
    base_load: int
    spike_load: int
    deadline: float
    #: Per-round good completions / offered members, in round order.
    goodput: list[int] = field(default_factory=list)
    offered: list[int] = field(default_factory=list)
    offered_total: int = 0
    good_total: int = 0
    #: Per-class shed counts from the gateway's ledger.
    shed_counts: dict[str, int] = field(default_factory=dict)
    brownout_served: int = 0
    doomed: int = 0
    critical_offered: int = 0
    critical_shed: int = 0
    pressure_transitions: int = 0
    final_state: str = "normal"
    #: SHA-256 over every member outcome of every round (replay identity).
    signature: str = ""
    requests: dict[str, Any] = field(default_factory=dict)
    breakers: dict[str, Any] = field(default_factory=dict)
    breaker_violations: list[str] = field(default_factory=list)
    trace_violations: list[str] = field(default_factory=list)
    traces_checked: int = 0
    pending_futures: int = 0
    elapsed_virtual: float = 0.0
    race_findings: list[str] = field(default_factory=list)
    race_accesses: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "shedding": self.shedding,
            "base_load": self.base_load,
            "spike_load": self.spike_load,
            "deadline": self.deadline,
            "goodput": list(self.goodput),
            "offered": list(self.offered),
            "offered_total": self.offered_total,
            "good_total": self.good_total,
            "shed_counts": dict(self.shed_counts),
            "brownout_served": self.brownout_served,
            "doomed": self.doomed,
            "critical_offered": self.critical_offered,
            "critical_shed": self.critical_shed,
            "pressure_transitions": self.pressure_transitions,
            "final_state": self.final_state,
            "signature": self.signature,
            "requests": dict(self.requests),
            "breakers": dict(self.breakers),
            "breaker_violations": list(self.breaker_violations),
            "trace_violations": list(self.trace_violations),
            "traces_checked": self.traces_checked,
            "pending_futures": self.pending_futures,
            "elapsed_virtual": self.elapsed_virtual,
            "race_findings": list(self.race_findings),
            "race_accesses": self.race_accesses,
        }

    def format(self) -> str:
        """Console rendering of the run."""
        r = self.requests
        lines = [
            f"Overload run: seed={self.seed}, {self.rounds} rounds, "
            f"shedding {'on' if self.shedding else 'off'}, "
            f"load {self.base_load}->{self.spike_load}/round, "
            f"deadline={self.deadline:g}s",
            f"  goodput: {self.good_total}/{self.offered_total} "
            f"(per round: {' '.join(str(g) for g in self.goodput)})",
            f"  sheds: total={self.shed_counts.get('total', 0)} "
            f"(critical={self.shed_counts.get('critical', 0)}, "
            f"interactive={self.shed_counts.get('interactive', 0)}, "
            f"batch={self.shed_counts.get('batch', 0)}), "
            f"brownout served={self.brownout_served}, doomed={self.doomed}",
            f"  critical: {self.critical_shed}/{self.critical_offered} shed",
            f"  pressure: {self.pressure_transitions} transitions, "
            f"final state={self.final_state}",
            f"  deadline exceeded: {r.get('deadline_exceeded', 0)}, "
            f"source failures: {r.get('source_failures', 0)}, "
            f"retries: {r.get('retries', 0)} "
            f"(gave up {r.get('retry_giveups', 0)})",
            f"  breakers: {self.breakers.get('trips', 0)} trips, "
            f"{self.breakers.get('open', 0)} open at end",
            f"  invariants: pending futures={self.pending_futures}, "
            f"breaker violations={len(self.breaker_violations)}, "
            f"trace violations={len(self.trace_violations)} "
            f"({self.traces_checked} traces checked)",
        ]
        if self.race_accesses:
            lines.append(
                f"  lane races: {len(self.race_findings)} finding(s) over "
                f"{self.race_accesses} shared-state accesses"
            )
        lines.append(f"  replay signature: {self.signature[:16]}…")
        return "\n".join(lines)


def _overload_class(i: int) -> str:
    """Deterministic class mix for burst member ``i`` (no RNG: replay
    identity must not depend on draw order): 10% critical, ~30% batch,
    the rest interactive."""
    if i % 10 == 0:
        return "critical"
    if i % 3 == 2:
        return "batch"
    return "interactive"


def run_overload(
    *,
    seed: int = 0,
    rounds: int = 12,
    hosts: int = 4,
    agents: Sequence[str] = ("snmp",),
    shedding: bool = True,
    base_load: int = 2,
    spike_load: int = 32,
    spike_start_round: int = 3,
    spike_rounds: int = 6,
    deadline: float = 2.0,
    period: float = 10.0,
    warmup_rounds: int = 4,
    queue_limit: int = 8,
    slow_host: bool = True,
    slow_factor: float = 3.0,
    slow_service: float = 0.3,
    sql: str = "SELECT * FROM Processor",
    race_detect: bool = False,
) -> OverloadReport:
    """Offered-load spike x slow-host fault against one gateway.

    Each round offers a burst of concurrent client queries
    (``base_load``, spiking to ``spike_load`` during the spike window)
    with a deterministic CRITICAL/INTERACTIVE/BATCH mix; during the
    spike every monitored host also degrades (site-wide contention), so
    per-request cost inflates exactly when offered load peaks.  The
    default spike (32 members against an initial admission limit of 8)
    is 4x the no-queue capacity.  With ``shedding`` on, the gateway's
    admission control + adaptive concurrency + brownout machinery
    (:mod:`repro.core.admission`) degrades gracefully: excess load is
    absorbed by bounded queueing, brownout stale serving and typed
    sheds, and the breakers stay quiet.  With it off, per-source queue
    waits push answers past their deadline (late answers are not
    goodput), the resulting failures trip breakers on *healthy* hosts,
    and goodput collapses.

    ``warmup_rounds=0`` removes the stale coverage brownout serving
    depends on, so pressured queries shed instead — the shed-heavy
    variant.  ``slow_host=False`` drops the fault entirely: sheds then
    come purely from offered load, which is what the breaker x shed
    end-to-end assertion wants (sheds happen, zero breaker activity).
    """
    policy = GatewayPolicy(
        fanout_enabled=True,
        hedge_enabled=False,
        retry_attempts=2,
        default_deadline=deadline,
        admission_enabled=shedding,
        adaptive_concurrency=shedding,
        admission_queue_limit=queue_limit,
        pressure_min_dwell=period / 2,
        # The breaker's stale-on-open path would mask the comparison:
        # without admission control, queueing blows deadlines, the
        # breakers mistake overload for host failure and quietly serve
        # everything stale — "goodput" by accident, with healthy sources
        # marked dead (breaker pollution, visible in ``breakers``).
        # run_chaos covers that path; here it is off in BOTH arms so the
        # measured stale serving is the *deliberate* brownout machinery.
        serve_stale_on_open=False,
    )
    network, (site,) = build_testbed(
        n_hosts=hosts, agents=tuple(agents), seed=seed, policy=policy
    )
    gw = site.gateway
    clock = network.clock
    clock.advance(60.0)
    urls = list(site.source_urls)

    detector = None
    if race_detect:
        from repro.analysis import races

        detector = races.RaceDetector.standard(clock)
        gw.race_detector = detector

    report = OverloadReport(
        seed=seed,
        rounds=rounds,
        shedding=shedding,
        base_load=base_load,
        spike_load=spike_load,
        deadline=deadline,
    )
    digest = hashlib.sha256()
    from repro.core.gateway import BatchQuery

    # Burst member i asks a *distinct* query (an always-true predicate
    # varying by slot) — identical queries would coalesce via
    # single-flight and the "offered load" would be one flight per
    # source, which is no load at all.
    member_sql = [
        f"{sql} WHERE 0 <= {i}" for i in range(max(spike_load, base_load))
    ]

    with _maybe_detect(detector):
        # Clean warm-up polls: the query cache needs a relation per
        # (source, member-sql) so brownout has stale coverage to serve,
        # and the limiters need a latency baseline.  Not measured.
        for _ in range(max(0, warmup_rounds)):
            for msql in member_sql:
                gw.query(urls, msql, mode=QueryMode.REALTIME)
            clock.advance(period)

        spike_start = clock.now() + spike_start_round * period
        # Rounds take `period` plus the batch's own virtual elapsed time,
        # and an overloaded batch runs long — size the fault window
        # generously so it covers the spike rounds in both arms (trailing
        # base-load rounds are far below capacity either way).
        spike_len = 3 * spike_rounds * period
        if slow_host:
            # Every monitored host degrades together (site-wide resource
            # contention, exactly when offered load peaks).  A single slow
            # host would just trip its breaker and be served stale — real
            # overload is the case breakers *cannot* isolate.
            plane = FaultPlane(network, seed=seed)
            for name in site.host_names():
                plane.slow_host(
                    name,
                    factor=slow_factor,
                    service_time=slow_service,
                    start=spike_start - clock.now(),
                    duration=spike_len,
                )

        started = clock.now()
        for rnd in range(rounds):
            in_spike = spike_start_round <= rnd < spike_start_round + spike_rounds
            n = spike_load if in_spike else base_load
            classes = [_overload_class(i) for i in range(n)]
            report.critical_offered += sum(1 for c in classes if c == "critical")
            members = [
                BatchQuery(
                    urls=urls,
                    sql=member_sql[i],
                    mode=QueryMode.REALTIME,
                    query_class=c,
                )
                for i, c in enumerate(classes)
            ]
            outcomes = gw.query_batch(members)
            good = 0
            for i, out in enumerate(outcomes):
                if isinstance(out, Exception):
                    digest.update(
                        repr((rnd, i, type(out).__name__, str(out))).encode()
                    )
                    continue
                digest.update(
                    repr(
                        (
                            rnd,
                            i,
                            out.columns,
                            out.rows,
                            [
                                (
                                    s.url, s.ok, s.rows, s.from_cache,
                                    s.degraded, s.shed, s.error,
                                )
                                for s in out.statuses
                            ],
                        )
                    ).encode()
                )
                if (
                    out.statuses
                    and out.failed_sources == 0
                    and out.elapsed <= deadline
                ):
                    good += 1
            report.goodput.append(good)
            report.offered.append(n)
            report.good_total += good
            report.offered_total += n
            clock.advance(period)
        # Drain scheduled work (fault heal, re-probes) before invariants.
        clock.advance(10 * period)

    if detector is not None:
        report.race_findings = [f.format() for f in detector.report()]
        report.race_accesses = detector.accesses_noted

    snapshot = gw.overload.snapshot()
    report.signature = digest.hexdigest()
    report.elapsed_virtual = clock.now() - started
    report.shed_counts = dict(snapshot["sheds"])
    report.critical_shed = int(snapshot["sheds"].get("critical", 0))
    report.brownout_served = int(snapshot["brownout_served"])
    report.doomed = int(snapshot["doomed"])
    report.pressure_transitions = int(snapshot["transitions"])
    report.final_state = str(snapshot["state"])
    report.requests = dict(gw.request_manager.stats)
    report.breakers = gw.health.summary()
    report.breaker_violations = _breaker_violations(gw.health.scoreboard())
    from repro.obs.invariants import check_tracer

    report.traces_checked = len(gw.tracer.traces())
    report.trace_violations = check_tracer(gw.tracer)
    report.pending_futures = network.pending_futures()
    return report


# ----------------------------------------------------------------------
# Streaming scenario: continuous queries x faults x lease recovery
# ----------------------------------------------------------------------
@dataclass
class StreamReport:
    """One streaming-chaos run's measurements and invariant checks.

    The scenario registers a mix of continuous queries (all three
    producer flavours, a deterministic query-class mix) against a
    gateway hub, wires a :class:`~repro.gma.streams.Republisher` deriving
    windowed per-host aggregates the same consumer subscribes to
    downstream, then drives poll rounds through the standard fault
    scenario plus (optionally) a long consumer partition.  The partition
    outlives the lease *and* the hub's tombstone grace, so recovery must
    go through the consumer's automatic re-registration — ``reregisters``
    measures exactly that path.

    The signature folds every delivered batch (id, columns, rows,
    publish/receive instants, provenance) plus every poll round's rows:
    same seed and knobs => byte-identical delivery, whatever the
    detector or console is doing on the side.
    """

    seed: int
    rounds: int
    subscriptions: int
    partition: bool
    #: Batches / rows the consumer received (replays included).
    delivered_batches: int = 0
    delivered_rows: int = 0
    #: Batches flagged ``replay`` (latest/history attach catch-up).
    replay_batches: int = 0
    #: Hub-side counters (pushes sent, rows replayed on attach, drops,
    #: brownout suppressions, expiries, tombstone resurrections, sheds).
    pushes: int = 0
    replayed: int = 0
    dropped: int = 0
    suppressed: int = 0
    expired: int = 0
    resurrected: int = 0
    shed: int = 0
    #: Consumer-side lease upkeep.
    renewals: int = 0
    renewal_failures: int = 0
    reregisters: int = 0
    #: Republisher-derived windows published / samples folded.
    derived_windows: int = 0
    derived_samples: int = 0
    #: Non-paused subscriptions left holding buffered batches after the
    #: drain (must be empty — a live subscription never buffers).
    stuck_buffers: list[str] = field(default_factory=list)
    #: SHA-256 over every delivered batch and poll round (replay identity).
    signature: str = ""
    hub: dict[str, Any] = field(default_factory=dict)
    faults: dict[str, Any] = field(default_factory=dict)
    trace_violations: list[str] = field(default_factory=list)
    traces_checked: int = 0
    pending_futures: int = 0
    elapsed_virtual: float = 0.0
    race_findings: list[str] = field(default_factory=list)
    race_accesses: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "subscriptions": self.subscriptions,
            "partition": self.partition,
            "delivered_batches": self.delivered_batches,
            "delivered_rows": self.delivered_rows,
            "replay_batches": self.replay_batches,
            "pushes": self.pushes,
            "replayed": self.replayed,
            "dropped": self.dropped,
            "suppressed": self.suppressed,
            "expired": self.expired,
            "resurrected": self.resurrected,
            "shed": self.shed,
            "renewals": self.renewals,
            "renewal_failures": self.renewal_failures,
            "reregisters": self.reregisters,
            "derived_windows": self.derived_windows,
            "derived_samples": self.derived_samples,
            "stuck_buffers": list(self.stuck_buffers),
            "signature": self.signature,
            "hub": dict(self.hub),
            "faults": dict(self.faults),
            "trace_violations": list(self.trace_violations),
            "traces_checked": self.traces_checked,
            "pending_futures": self.pending_futures,
            "elapsed_virtual": self.elapsed_virtual,
            "race_findings": list(self.race_findings),
            "race_accesses": self.race_accesses,
        }

    def format(self) -> str:
        """Console rendering of the run."""
        f = self.faults
        lines = [
            f"Stream run: seed={self.seed}, {self.rounds} rounds, "
            f"{self.subscriptions} subscription(s), "
            f"consumer partition {'on' if self.partition else 'off'}",
            f"  delivered: {self.delivered_batches} batches "
            f"({self.delivered_rows} rows), "
            f"{self.replay_batches} replay batches on attach",
            f"  hub: {self.pushes} pushes, {self.replayed} rows replayed, "
            f"{self.dropped} dropped, {self.suppressed} suppressed, "
            f"{self.shed} shed",
            f"  leases: {self.renewals} renewals "
            f"({self.renewal_failures} failed), {self.expired} expired, "
            f"{self.resurrected} resurrected, "
            f"{self.reregisters} re-registered after lapse",
            f"  republisher: {self.derived_windows} windows from "
            f"{self.derived_samples} samples",
            f"  faults injected: spikes={f.get('spikes_injected', 0)} "
            f"(+{f.get('spike_seconds', 0.0):.1f}s), "
            f"refusals={f.get('refusals', 0)}, "
            f"corruptions={f.get('corruptions', 0)}, "
            f"flaps={f.get('flaps', 0)}, "
            f"partitions={f.get('partitions', 0)}/"
            f"heals={f.get('heals', 0)}",
            f"  invariants: pending futures={self.pending_futures}, "
            f"stuck buffers={len(self.stuck_buffers)}, "
            f"trace violations={len(self.trace_violations)} "
            f"({self.traces_checked} traces checked)",
        ]
        if self.race_accesses:
            lines.append(
                f"  lane races: {len(self.race_findings)} finding(s) over "
                f"{self.race_accesses} shared-state accesses"
            )
        lines.append(f"  replay signature: {self.signature[:16]}…")
        return "\n".join(lines)


def run_stream(
    *,
    seed: int = 0,
    rounds: int = 12,
    hosts: int = 4,
    agents: Sequence[str] = ("snmp",),
    subscriptions: int = 6,
    period: float = 10.0,
    warmup_rounds: int = 3,
    deadline: float = 10.0,
    partition: bool = True,
    sql: str = "SELECT * FROM Processor",
    race_detect: bool = False,
) -> StreamReport:
    """Continuous queries under the standard fault scenario.

    Warm-up polls run first so ``latest``/``history`` registrations have
    rows to replay on attach; the continuous queries register next (a
    deterministic flavour x class mix, each with a distinct predicate so
    plans do not alias), a republisher derives per-host windowed
    aggregates the same consumer subscribes to downstream, and only then
    do the faults start — including, when ``partition`` is on, a
    consumer partition sized to outlive lease + tombstone grace so
    recovery exercises re-registration with the delivery watermark.
    """
    from repro.gma.streams import FLAVOURS, Republisher, StreamConsumer

    lease = 2.0 * period
    policy = GatewayPolicy(
        fanout_enabled=True,
        hedge_enabled=False,
        retry_attempts=2,
        default_deadline=deadline,
        streaming_enabled=True,
        stream_sweep_period=period,
        stream_default_lease=lease,
    )
    network, (site,) = build_testbed(
        n_hosts=hosts, agents=tuple(agents), seed=seed, policy=policy
    )
    gw = site.gateway
    clock = network.clock
    clock.advance(60.0)
    urls = list(site.source_urls)
    assert gw.streams is not None  # streaming_enabled above

    detector = None
    if race_detect:
        from repro.analysis import races

        detector = races.RaceDetector.standard(clock)
        gw.race_detector = detector

    report = StreamReport(
        seed=seed, rounds=rounds, subscriptions=subscriptions, partition=partition
    )
    digest = hashlib.sha256()

    with _maybe_detect(detector):
        # Clean warm-up polls: populate the hub's latest-rows map and the
        # gateway history so latest/history registrations replay rows.
        for _ in range(max(0, warmup_rounds)):
            gw.query(urls, sql, mode=QueryMode.REALTIME)
            clock.advance(period)

        consumer = StreamConsumer(network, "stream-client")
        hub_addr = gw.streams.address
        # Deterministic flavour x class mix; distinct predicates so the
        # per-subscription plans (and their pushes) do not alias.
        for i in range(subscriptions):
            consumer.register(
                hub_addr,
                f"SELECT HostName, LoadAverage1Min FROM Processor "
                f"WHERE 0 <= {i}",
                flavour=FLAVOURS[i % len(FLAVOURS)],
                lease=lease,
                query_class=_overload_class(i),
            )
        # The republisher folds per-host CPU into windowed aggregates and
        # publishes them through its own hub; the same consumer
        # subscribes downstream, closing the derived-stream loop.
        rep = Republisher(network, "stream-rep", policy=policy)
        derivation = rep.derive(
            hub_addr,
            "SELECT HostName, CPUUtilization FROM Processor",
            key_column="HostName",
            value_column="CPUUtilization",
            window=2.0 * period,
            group="DerivedLoad",
            lease=lease,
        )
        consumer.register(
            rep.hub.address,
            "SELECT HostName, AvgValue, Samples FROM DerivedLoad",
            flavour="stream",
            lease=lease,
        )

        plane = FaultPlane(network, seed=seed)
        install_standard_faults(plane, site, period=period, rounds=rounds)
        span = rounds * period
        if partition:
            # Outlives lease (2p) + sweep-to-tombstone + tombstone drop
            # (2 sweeps, 2p): the hub forgets the consumer's
            # subscriptions entirely, so healing must re-register.
            plane.partition_between(
                [gw.host], ["stream-client"],
                start=0.25 * span,
                duration=lease + 3.0 * period,
            )

        started = clock.now()
        for i in range(rounds):
            result = gw.query(urls, sql, mode=QueryMode.REALTIME)
            digest.update(
                repr(
                    (
                        i,
                        result.columns,
                        result.rows,
                        [(s.url, s.ok, s.rows, s.error) for s in result.statuses],
                    )
                ).encode()
            )
            clock.advance(period)
        # Drain fault heals, sweeps, renew timers, pending window rolls.
        clock.advance(10 * period)

        # Fold every delivered batch, arrival order: the push plane's
        # half of the replay identity.
        for batch in consumer.batches:
            digest.update(
                repr(
                    (
                        batch["cq"],
                        batch["columns"],
                        batch["rows"],
                        batch["published_at"],
                        batch["received_at"],
                        batch["source_url"],
                        batch["replay"],
                    )
                ).encode()
            )

        report.delivered_batches = len(consumer.batches)
        report.delivered_rows = sum(len(b["rows"]) for b in consumer.batches)
        report.replay_batches = sum(1 for b in consumer.batches if b["replay"])
        report.renewals = consumer.stats["renewals"]
        report.renewal_failures = consumer.stats["renewal_failures"]
        report.reregisters = consumer.stats["reregisters"]
        report.derived_windows = derivation.windows_published
        report.derived_samples = rep.stats["samples"]
        for hub in (gw.streams, rep.hub):
            for cq_id, b in hub.buffer_stats().items():
                if b["buffered"] and not b["paused"]:
                    report.stuck_buffers.append(
                        f"{hub.address.host}: cq{cq_id} live with "
                        f"{b['buffered']} buffered batch(es)"
                    )
        report.hub = gw.streams.snapshot()
        for key in (
            "pushes", "replayed", "dropped", "suppressed",
            "expired", "resurrected", "shed",
        ):
            setattr(report, key, int(report.hub[key]))

        # Clean teardown over a healed network, then settle.
        consumer.stop()
        rep.stop()
        clock.advance(period)

    if detector is not None:
        report.race_findings = [f.format() for f in detector.report()]
        report.race_accesses = detector.accesses_noted

    report.signature = digest.hexdigest()
    report.elapsed_virtual = clock.now() - started
    report.faults = plane.stats.as_dict()
    from repro.obs.invariants import check_tracer

    report.traces_checked = len(gw.tracer.traces())
    report.trace_violations = check_tracer(gw.tracer)
    report.pending_futures = network.pending_futures()
    return report
