"""Chaos scenario runner: the fault plane pointed at a live testbed.

``python -m repro chaos`` (or :func:`run_chaos` from a test) builds a
site, installs a standard :class:`~repro.simnet.faults.FaultPlane`
scenario — latency spikes, a slowed host, a flapping host, a flaky agent
port, payload corruption and a timed partition — and drives query rounds
through it, measuring what the robustness machinery (deadlines, retry
budgets, hedged requests, circuit breakers) does to tail latency.

Everything is seeded: re-running with the same ``seed`` and the same
knobs replays the exact same fault schedule, the same per-request fault
draws and therefore byte-identical results — the :class:`ChaosReport`
carries a SHA-256 signature over every round's rows and statuses to make
replay identity checkable.  (Different knobs legitimately produce
different signatures: hedges and retries consume extra fault draws, and
fan-out shifts request instants.)  The soak tests assert replay identity
per configuration, plus the structural invariants: no stuck network
futures and no inconsistent breaker entries once the dust settles.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.dispatch import percentile
from repro.core.health import BreakerState
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.simnet.faults import FaultPlane
from repro.testbed import Site, build_testbed


@dataclass
class ChaosReport:
    """One chaos run's measurements and invariant checks."""

    seed: int
    rounds: int
    hedging: bool
    fanout: bool
    deadline: float
    #: Per-round end-to-end virtual latencies, in round order.
    latencies: list[float] = field(default_factory=list)
    ok_rounds: int = 0
    #: SHA-256 over every round's (columns, rows, statuses) — the replay
    #: identity: same seed => same signature, whatever the knobs.
    signature: str = ""
    requests: dict[str, Any] = field(default_factory=dict)
    dispatch: dict[str, Any] = field(default_factory=dict)
    faults: dict[str, Any] = field(default_factory=dict)
    breakers: dict[str, Any] = field(default_factory=dict)
    #: Breaker entries violating structural invariants (must be empty).
    breaker_violations: list[str] = field(default_factory=list)
    #: Span-tree invariant violations across every retained query trace
    #: (closure, containment, hedge accounting — must be empty).
    trace_violations: list[str] = field(default_factory=list)
    #: Query traces checked by the invariant pass.
    traces_checked: int = 0
    #: Unresolved NetFutures after the run (must be 0).
    pending_futures: int = 0
    elapsed_virtual: float = 0.0
    #: GRM55x lane-race findings (``race_detect=True`` runs only; must
    #: be empty — an entry means two unordered branches shared state).
    race_findings: list[str] = field(default_factory=list)
    #: State accesses the race detector inspected (0 = detection off).
    race_accesses: int = 0

    # ------------------------------------------------------------------
    def latency(self, q: float) -> float:
        """The q-th percentile of per-round latency (virtual seconds)."""
        return percentile(self.latencies, q)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "hedging": self.hedging,
            "fanout": self.fanout,
            "deadline": self.deadline,
            "p50": self.latency(50),
            "p95": self.latency(95),
            "p99": self.latency(99),
            "max": max(self.latencies),
            "ok_rounds": self.ok_rounds,
            "signature": self.signature,
            "requests": dict(self.requests),
            "dispatch": dict(self.dispatch),
            "faults": dict(self.faults),
            "breakers": dict(self.breakers),
            "breaker_violations": list(self.breaker_violations),
            "trace_violations": list(self.trace_violations),
            "traces_checked": self.traces_checked,
            "pending_futures": self.pending_futures,
            "elapsed_virtual": self.elapsed_virtual,
            "race_findings": list(self.race_findings),
            "race_accesses": self.race_accesses,
        }

    def format(self) -> str:
        """Console rendering of the run."""
        r = self.requests
        d = self.dispatch
        f = self.faults
        lines = [
            f"Chaos run: seed={self.seed}, {self.rounds} rounds, "
            f"hedging {'on' if self.hedging else 'off'}, "
            f"fan-out {'on' if self.fanout else 'off'}, "
            f"deadline={self.deadline:g}s",
            f"  latency (virtual): p50={self.latency(50):.3f}s "
            f"p95={self.latency(95):.3f}s p99={self.latency(99):.3f}s "
            f"max={max(self.latencies):.3f}s",
            f"  clean rounds: {self.ok_rounds}/{self.rounds}, "
            f"source failures: {r.get('source_failures', 0)}, "
            f"deadline exceeded: {r.get('deadline_exceeded', 0)}",
            f"  retries: {r.get('retries', 0)} "
            f"(gave up {r.get('retry_giveups', 0)})",
            f"  hedges: fired {d.get('hedges_fired', 0)}, "
            f"won {d.get('hedges_won', 0)}, "
            f"cancelled {d.get('hedges_cancelled', 0)}, "
            f"saved {d.get('hedge_time_saved', 0.0):.2f}s virtual",
            f"  faults injected: spikes={f.get('spikes_injected', 0)} "
            f"(+{f.get('spike_seconds', 0.0):.1f}s), "
            f"refusals={f.get('refusals', 0)}, "
            f"corruptions={f.get('corruptions', 0)}, "
            f"flaps={f.get('flaps', 0)}, "
            f"partitions={f.get('partitions', 0)}/"
            f"heals={f.get('heals', 0)}",
            f"  breakers: {self.breakers.get('trips', 0)} trips, "
            f"{self.breakers.get('recoveries', 0)} recoveries, "
            f"{self.breakers.get('open', 0)} open at end",
            f"  invariants: pending futures={self.pending_futures}, "
            f"breaker violations={len(self.breaker_violations)}, "
            f"trace violations={len(self.trace_violations)} "
            f"({self.traces_checked} traces checked)",
        ]
        if self.race_accesses:
            lines.append(
                f"  lane races: {len(self.race_findings)} finding(s) over "
                f"{self.race_accesses} shared-state accesses"
            )
        lines += [
            f"  replay signature: {self.signature[:16]}…",
        ]
        return "\n".join(lines)


def install_standard_faults(
    plane: FaultPlane, site: Site, *, period: float, rounds: int
) -> None:
    """Schedule the canonical chaos scenario over one site.

    All windows are expressed relative to *now* and scaled by the poll
    ``period`` so the same mix of overlapping faults hits whatever the
    cadence: two spiky hosts from the start, a mid-run slowdown, a
    flapping host, a flaky agent port, a corruption window, and a timed
    partition (auto-healed) between the gateway and one host.
    """
    hosts = site.host_names()

    def h(i: int) -> str:
        return hosts[i % len(hosts)]

    span = rounds * period
    plane.latency_spikes(h(0), prob=0.30, extra=1.5)
    plane.latency_spikes(h(1), prob=0.15, extra=2.5, start=0.1 * span)
    plane.slow_host(
        h(1), factor=3.0, service_time=0.05, start=0.25 * span, duration=0.25 * span
    )
    plane.flap_host(h(2), down_at=0.2 * span, down_for=1.5 * period, times=2)
    plane.flaky_port(h(0), prob=0.25, start=0.4 * span, duration=0.3 * span)
    plane.corrupt_payloads(h(1), prob=0.15, start=0.55 * span, duration=0.25 * span)
    plane.partition_between(
        [site.gateway.host], [h(3)], start=0.7 * span, duration=1.5 * period
    )


def _breaker_violations(board: dict[str, dict[str, Any]]) -> list[str]:
    """Structural invariants every breaker entry must satisfy."""
    valid = {s.value for s in BreakerState}
    out = []
    for key, e in board.items():
        if e["state"] not in valid:
            out.append(f"{key}: unknown state {e['state']!r}")
        if e["consecutive_failures"] > e["total_failures"]:
            out.append(f"{key}: consecutive_failures > total_failures")
        if e["state"] == BreakerState.OPEN.value and e["open_until"] <= 0:
            out.append(f"{key}: OPEN with no open_until instant")
        if e["trips"] > 0 and e["total_failures"] == 0:
            out.append(f"{key}: tripped without any recorded failure")
    return out


def _maybe_detect(detector: "Any | None"):
    """races.activate(detector), or a no-op context when detection is off."""
    if detector is None:
        return nullcontext()
    from repro.analysis import races

    return races.activate(detector)


def run_chaos(
    *,
    seed: int = 0,
    rounds: int = 30,
    hosts: int = 4,
    agents: Sequence[str] = ("snmp", "ganglia"),
    hedging: bool = True,
    fanout: bool = True,
    deadline: float = 10.0,
    period: float = 30.0,
    warmup_rounds: int = 10,
    sql: str = "SELECT * FROM Processor",
    race_detect: bool = False,
) -> ChaosReport:
    """Build a site, inject the standard fault scenario, measure.

    ``warmup_rounds`` clean polls run first so the hedger has a latency
    window to take its percentile from; faults start only after warm-up,
    so two runs differing only in knobs see the identical schedule.
    Returns a :class:`ChaosReport`; raises nothing on per-source
    failures (they are part of the measurement).

    ``race_detect=True`` runs the whole scenario under the virtual-lane
    race detector (:mod:`repro.analysis.races`): any unordered-branch
    shared-state access lands in ``report.race_findings`` as a GRM55x
    line, and the detector stays attached to the gateway so a later
    ``gw.analyze()`` reports the same findings.
    """
    policy = GatewayPolicy(
        fanout_enabled=fanout,
        hedge_enabled=hedging,
        retry_attempts=2,
        default_deadline=deadline,
    )
    network, (site,) = build_testbed(
        n_hosts=hosts, agents=tuple(agents), seed=seed, policy=policy
    )
    gw = site.gateway
    clock = network.clock
    clock.advance(60.0)
    urls = list(site.source_urls)

    detector = None
    if race_detect:
        from repro.analysis import races

        detector = races.RaceDetector.standard(clock)
        gw.race_detector = detector
    with _maybe_detect(detector):
        for _ in range(max(0, warmup_rounds)):
            gw.query(urls, sql, mode=QueryMode.REALTIME)
            clock.advance(period)

        plane = FaultPlane(network, seed=seed)
        install_standard_faults(plane, site, period=period, rounds=rounds)

        report = ChaosReport(
            seed=seed, rounds=rounds, hedging=hedging, fanout=fanout, deadline=deadline
        )
        digest = hashlib.sha256()
        started = clock.now()
        for i in range(rounds):
            result = gw.query(urls, sql, mode=QueryMode.REALTIME)
            report.latencies.append(result.elapsed)
            if all(s.ok for s in result.statuses):
                report.ok_rounds += 1
            digest.update(
                repr(
                    (
                        i,
                        result.columns,
                        result.rows,
                        [
                            (s.url, s.ok, s.rows, s.from_cache, s.degraded, s.error)
                            for s in result.statuses
                        ],
                    )
                ).encode()
            )
            clock.advance(period)
        # Drain anything still scheduled (fault heals, breaker re-probes) so
        # the invariant checks see the settled end state.
        clock.advance(10 * period)

    if detector is not None:
        report.race_findings = [f.format() for f in detector.report()]
        report.race_accesses = detector.accesses_noted

    report.signature = digest.hexdigest()
    report.elapsed_virtual = clock.now() - started
    report.requests = dict(gw.request_manager.stats)
    report.dispatch = gw.dispatcher.stats.as_dict()
    report.faults = plane.stats.as_dict()
    report.breakers = gw.health.summary()
    report.breaker_violations = _breaker_violations(gw.health.scoreboard())
    from repro.obs.invariants import check_tracer

    report.traces_checked = len(gw.tracer.traces())
    report.trace_violations = check_tracer(gw.tracer)
    report.pending_futures = network.pending_futures()
    return report
