"""GLUE renderings (paper §3.1.4).

"Currently a number of GLUE implementations are underway, including
relational, XML and LDAP versions."  The relational rendering is this
repository's native form (groups = tables, the SQL engine).  This module
adds the other two, for interoperability with era tooling:

* :func:`schema_to_xml` / :func:`rows_to_xml` — XML documents in the
  OGSA/R-GMA style (group element per row, attribute elements per field);
* :func:`rows_to_ldif` — LDAP LDIF entries in the MDS-2 style
  (``GlueProcessorUniqueID=...,Mds-Vo-name=site,o=grid`` DNs with
  ``Glue<Group><Field>`` attribute names);
* the matching parsers, so the renderings round-trip.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.glue.schema import GlueGroup, GlueSchema


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


# ----------------------------------------------------------------------
# XML
# ----------------------------------------------------------------------
def schema_to_xml(schema: GlueSchema) -> str:
    """Render the schema definition itself (groups, fields, types, units)."""
    out = ['<?xml version="1.0"?>']
    out.append(f'<GlueSchema version="{_esc(schema.version)}">')
    for group in schema:
        out.append(f'  <Group name="{_esc(group.name)}">')
        for f in group.fields:
            out.append(
                f'    <Field name="{_esc(f.name)}" type="{f.type}"'
                f' unit="{_esc(f.unit)}"/>'
            )
        out.append("  </Group>")
    out.append("</GlueSchema>")
    return "\n".join(out)


def rows_to_xml(group: GlueGroup, rows: Iterable[Mapping[str, Any]]) -> str:
    """Render GLUE rows as an XML document; NULL fields are omitted."""
    out = ['<?xml version="1.0"?>', f'<GlueData group="{_esc(group.name)}">']
    for row in rows:
        out.append(f"  <{group.name}>")
        for f in group.fields:
            value = row.get(f.name)
            if value is None:
                continue
            if isinstance(value, bool):
                text = "true" if value else "false"
            else:
                text = str(value)
            out.append(f"    <{f.name}>{_esc(text)}</{f.name}>")
        out.append(f"  </{group.name}>")
    out.append("</GlueData>")
    return "\n".join(out)


def xml_to_rows(group: GlueGroup, xml: str) -> list[dict[str, Any]]:
    """Parse :func:`rows_to_xml` output back into GLUE rows."""
    import re

    rows: list[dict[str, Any]] = []
    record_re = re.compile(
        rf"<{group.name}>(.*?)</{group.name}>", re.DOTALL
    )
    field_re = re.compile(r"<(\w+)>(.*?)</\1>", re.DOTALL)
    for m in record_re.finditer(xml):
        row: dict[str, Any] = {f.name: None for f in group.fields}
        for fm in field_re.finditer(m.group(1)):
            name, raw = fm.group(1), fm.group(2)
            raw = (
                raw.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
            )
            if not group.has_field(name):
                continue
            row[name] = _coerce(group, name, raw)
        rows.append(row)
    return rows


def _coerce(group: GlueGroup, name: str, raw: str) -> Any:
    ftype = group.field(name).type
    try:
        if ftype == "INTEGER":
            return int(float(raw))
        if ftype in ("REAL", "TIMESTAMP"):
            return float(raw)
        if ftype == "BOOLEAN":
            return raw.strip().lower() in ("true", "1", "yes")
    except ValueError:
        return None
    return raw


# ----------------------------------------------------------------------
# LDAP / LDIF
# ----------------------------------------------------------------------
def rows_to_ldif(
    group: GlueGroup,
    rows: Iterable[Mapping[str, Any]],
    *,
    vo: str = "local",
) -> str:
    """Render rows as MDS-2 style LDIF entries.

    DN shape: ``Glue<Group>UniqueID=<host>#<i>,Mds-Vo-name=<vo>,o=grid``;
    attribute names are ``Glue<Group><Field>``, NULLs omitted — matching
    how the era's LDAP GLUE rendering flattened the conceptual schema.
    """
    out = []
    for i, row in enumerate(rows):
        uid = f"{row.get('HostName', 'unknown')}#{i}"
        out.append(f"dn: Glue{group.name}UniqueID={uid},Mds-Vo-name={vo},o=grid")
        out.append(f"objectClass: Glue{group.name}")
        for f in group.fields:
            value = row.get(f.name)
            if value is None:
                continue
            if isinstance(value, bool):
                value = "TRUE" if value else "FALSE"
            out.append(f"Glue{group.name}{f.name}: {value}")
        out.append("")
    return "\n".join(out)


def ldif_to_rows(group: GlueGroup, ldif: str) -> list[dict[str, Any]]:
    """Parse :func:`rows_to_ldif` output back into GLUE rows."""
    rows: list[dict[str, Any]] = []
    current: dict[str, Any] | None = None
    prefix = f"Glue{group.name}"
    for line in ldif.splitlines():
        line = line.rstrip()
        if line.startswith("dn:"):
            if current is not None:
                rows.append(current)
            current = {f.name: None for f in group.fields}
            continue
        if not line or current is None:
            continue
        key, sep, value = line.partition(": ")
        if not sep or key == "objectClass":
            continue
        if not key.startswith(prefix):
            continue
        field_name = key[len(prefix):]
        if not group.has_field(field_name):
            continue
        if group.field(field_name).type == "BOOLEAN":
            current[field_name] = value.strip().upper() == "TRUE"
        else:
            current[field_name] = _coerce(group, field_name, value)
    if current is not None:
        rows.append(current)
    return rows
