"""GLUE schema definition.

A :class:`GlueSchema` is a registry of :class:`GlueGroup` definitions,
each a named, ordered set of typed :class:`GlueField` attributes with
canonical units.  The standard schema below follows the GLUE 1.x
conceptual model the paper cites (Compute Elements, Storage Elements,
Network Elements and the host-level groups underneath them), trimmed to
the monitoring attributes GridRM's drivers harvest.

Every GLUE group maps one-to-one onto a queryable SQL "table"; the
``SchemaManager`` serves these definitions to drivers at connection time
(paper Figure 5: "Schema is cached when the connection is created").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Field type keywords, aligned with the SQL engine's column types.
FIELD_TYPES = ("TEXT", "INTEGER", "REAL", "BOOLEAN", "TIMESTAMP")


@dataclass(frozen=True)
class GlueField:
    """One attribute of a GLUE group.

    Attributes:
        name: CamelCase attribute name (``ClockSpeedMHz``).
        type: one of :data:`FIELD_TYPES`.
        unit: canonical unit string ("MB", "MHz", "percent", ""), used by
            the mapping layer for automatic unit conversion.
        description: human-readable meaning, surfaced in the console.
    """

    name: str
    type: str = "TEXT"
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.type not in FIELD_TYPES:
            raise ValueError(f"bad field type {self.type!r} for {self.name!r}")


@dataclass(frozen=True)
class GlueGroup:
    """A GLUE group — the relational-table analogue clients SELECT from."""

    name: str
    fields: tuple[GlueField, ...]
    description: str = ""

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field in group {self.name!r}")

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> GlueField:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"no field {name!r} in group {self.name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def column_types(self) -> list[str]:
        return [f.type for f in self.fields]


class GlueSchema:
    """A versioned collection of groups."""

    def __init__(self, version: str, groups: Iterable[GlueGroup] = ()) -> None:
        self.version = version
        self._groups: dict[str, GlueGroup] = {}
        for g in groups:
            self.add_group(g)

    def add_group(self, group: GlueGroup) -> None:
        if group.name in self._groups:
            raise ValueError(f"group already defined: {group.name!r}")
        self._groups[group.name] = group

    def group(self, name: str) -> GlueGroup:
        g = self._groups.get(name)
        if g is None:
            # Case-insensitive lookup: clients write "processor" freely.
            lowered = name.lower()
            for key, value in self._groups.items():
                if key.lower() == lowered:
                    return value
            raise KeyError(f"no GLUE group named {name!r}")
        return g

    def has_group(self, name: str) -> bool:
        try:
            self.group(name)
            return True
        except KeyError:
            return False

    def group_names(self) -> list[str]:
        return sorted(self._groups)

    def __iter__(self) -> Iterator[GlueGroup]:
        return iter(self._groups.values())

    def __len__(self) -> int:
        return len(self._groups)


def _f(name: str, type_: str = "REAL", unit: str = "", desc: str = "") -> GlueField:
    return GlueField(name=name, type=type_, unit=unit, description=desc)


def standard_schema() -> GlueSchema:
    """Build a fresh copy of the standard GridRM GLUE schema."""
    host_key = (
        _f("HostName", "TEXT", "", "unique host name within the site"),
        _f("SiteName", "TEXT", "", "owning Grid site"),
        _f("Timestamp", "TIMESTAMP", "s", "sample time (virtual seconds)"),
    )
    groups = [
        GlueGroup(
            "Host",
            host_key
            + (
                _f("UniqueId", "TEXT", "", "site-qualified host identifier"),
                _f("Reachable", "BOOLEAN", "", "host answered its agent"),
                _f("AgentName", "TEXT", "", "agent that served this row"),
            ),
            "Identity and liveness of a monitored host",
        ),
        GlueGroup(
            "Processor",
            host_key
            + (
                _f("Vendor", "TEXT"),
                _f("Model", "TEXT"),
                _f("ClockSpeedMHz", "REAL", "MHz"),
                _f("CPUCount", "INTEGER", "count"),
                _f("LoadAverage1Min", "REAL", "load"),
                _f("LoadAverage5Min", "REAL", "load"),
                _f("LoadAverage15Min", "REAL", "load"),
                _f("CPUUtilization", "REAL", "percent", "busy fraction 0-100"),
                _f("CPUIdle", "REAL", "percent"),
                _f("CPUUser", "REAL", "percent"),
                _f("CPUSystem", "REAL", "percent"),
            ),
            "Per-host processor configuration and load",
        ),
        GlueGroup(
            "MainMemory",
            host_key
            + (
                _f("RAMSizeMB", "REAL", "MB"),
                _f("RAMAvailableMB", "REAL", "MB"),
                _f("VirtualSizeMB", "REAL", "MB"),
                _f("VirtualAvailableMB", "REAL", "MB"),
                _f("BuffersMB", "REAL", "MB"),
                _f("CachedMB", "REAL", "MB"),
            ),
            "Physical and virtual memory state",
        ),
        GlueGroup(
            "OperatingSystem",
            host_key
            + (
                _f("Name", "TEXT"),
                _f("Release", "TEXT"),
                _f("Version", "TEXT"),
                _f("UptimeSeconds", "REAL", "s"),
                _f("ProcessCount", "INTEGER", "count"),
                _f("UserCount", "INTEGER", "count"),
            ),
            "Operating system identity and uptime",
        ),
        GlueGroup(
            "Architecture",
            host_key
            + (
                _f("PlatformType", "TEXT"),
                _f("SMPSize", "INTEGER", "count", "processors per node"),
            ),
            "Hardware platform",
        ),
        GlueGroup(
            "FileSystem",
            host_key
            + (
                _f("Name", "TEXT"),
                _f("Root", "TEXT"),
                _f("SizeMB", "REAL", "MB"),
                _f("AvailableSpaceMB", "REAL", "MB"),
                _f("ReadOnly", "BOOLEAN"),
                _f("Type", "TEXT"),
            ),
            "Mounted file systems (one row per mount)",
        ),
        GlueGroup(
            "NetworkAdapter",
            host_key
            + (
                _f("Name", "TEXT"),
                _f("IPAddress", "TEXT"),
                _f("MTU", "INTEGER", "bytes"),
                _f("BandwidthMbps", "REAL", "Mbps"),
                _f("BytesReceived", "REAL", "bytes"),
                _f("BytesSent", "REAL", "bytes"),
                _f("PacketsReceived", "REAL", "count"),
                _f("PacketsSent", "REAL", "count"),
                _f("ErrorsIn", "REAL", "count"),
                _f("ErrorsOut", "REAL", "count"),
            ),
            "Network interfaces and traffic counters",
        ),
        GlueGroup(
            "Process",
            host_key
            + (
                _f("PID", "INTEGER", "count"),
                _f("Name", "TEXT"),
                _f("State", "TEXT"),
                _f("CPUPercent", "REAL", "percent"),
                _f("MemoryPercent", "REAL", "percent"),
                _f("Owner", "TEXT"),
            ),
            "Running processes (fine-grained sources only)",
        ),
        GlueGroup(
            "NetworkForecast",
            host_key
            + (
                _f("Resource", "TEXT", "", "forecast subject (cpu/latency/bandwidth)"),
                _f("MeasuredValue", "REAL"),
                _f("ForecastValue", "REAL"),
                _f("ForecastError", "REAL", "", "MAE of the winning predictor"),
                _f("Method", "TEXT", "", "winning predictor name"),
                _f("PeerHost", "TEXT", "", "far end for network forecasts"),
            ),
            "NWS-style measurements with forecasts",
        ),
        GlueGroup(
            "LogEvent",
            host_key
            + (
                _f("EventTime", "TIMESTAMP", "s"),
                _f("Program", "TEXT"),
                _f("EventName", "TEXT"),
                _f("Level", "TEXT"),
                _f("Message", "TEXT"),
            ),
            "Instrumentation events (NetLogger-style ULM records)",
        ),
        GlueGroup(
            "Job",
            host_key
            + (
                _f("JobId", "TEXT"),
                _f("Queue", "TEXT"),
                _f("Owner", "TEXT"),
                _f("State", "TEXT"),
                _f("CPUSeconds", "REAL", "s"),
                _f("WallSeconds", "REAL", "s"),
                _f("NodeCount", "INTEGER", "count"),
            ),
            "Batch jobs (cluster management sources, e.g. SCMS)",
        ),
        GlueGroup(
            "GatewayMetrics",
            host_key
            + (
                _f("Name", "TEXT", "", "dotted instrument name"),
                _f("Kind", "TEXT", "", "counter / gauge / histogram"),
                _f("Value", "REAL", "", "counter/gauge value; histogram mean"),
                _f("Count", "INTEGER", "count", "histogram sample count"),
                _f("P50", "REAL", "", "50th percentile (histograms)"),
                _f("P95", "REAL", "", "95th percentile (histograms)"),
                _f("P99", "REAL", "", "99th percentile (histograms)"),
            ),
            "The gateway's own metrics registry (self-monitoring driver)",
        ),
    ]
    return GlueSchema(version="GLUE-1.1-gridrm", groups=groups)


#: Shared immutable-by-convention standard schema instance.
STANDARD_SCHEMA = standard_schema()
