"""GLUE row validation.

Used by tests and by the gateway's historical store to assert that what a
driver returned actually conforms to the naming schema before it is
recorded or consolidated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.glue.schema import GlueGroup

#: GLUE type keyword -> predicate over Python values.  Shared with the
#: compile-time query validator (:mod:`repro.analysis.query_check`),
#: which collapses the numeric types into one comparability class.
TYPE_CHECKS: dict[str, Callable[[Any], bool]] = {
    "TEXT": lambda v: isinstance(v, str),
    "INTEGER": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "REAL": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "BOOLEAN": lambda v: isinstance(v, bool),
    "TIMESTAMP": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}

#: Backwards-compatible private alias.
_TYPE_CHECKS = TYPE_CHECKS


@dataclass(frozen=True)
class ValidationIssue:
    """One schema-conformance problem in a row."""

    field: str
    kind: str  # "missing" | "unknown" | "type"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.field}: {self.kind} ({self.detail})"


def validate_row(group: GlueGroup, row: Mapping[str, Any]) -> list[ValidationIssue]:
    """Check one row against a group definition.

    NULL (None) is always acceptable — it is the schema's explicit
    "untranslatable" marker — so only present, wrongly typed values and
    structural mismatches are reported.
    """
    issues: list[ValidationIssue] = []
    field_names = set(group.field_names())
    for name in row:
        if name not in field_names:
            issues.append(
                ValidationIssue(field=name, kind="unknown", detail="not in group")
            )
    for fdef in group.fields:
        if fdef.name not in row:
            issues.append(
                ValidationIssue(field=fdef.name, kind="missing", detail="absent")
            )
            continue
        value = row[fdef.name]
        if value is None:
            continue
        check = _TYPE_CHECKS[fdef.type]
        if not check(value):
            issues.append(
                ValidationIssue(
                    field=fdef.name,
                    kind="type",
                    detail=f"expected {fdef.type}, got {type(value).__name__}",
                )
            )
    return issues
