"""Native-to-GLUE mapping.

Each driver owns a :class:`SchemaMapping`: for every GLUE group it can
serve, a list of :class:`MappingRule` instances saying which native key
feeds which GLUE field and how to convert it (unit scaling, parsing,
custom transforms).  Fields with no rule — or whose rule fails — come out
NULL, which is the paper's prescribed behaviour for untranslatable data
(§3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.glue.schema import GlueGroup, GlueSchema


class UnitConversionError(ValueError):
    """No conversion path between the given units."""


#: (from_unit, to_unit) -> multiplicative factor.  Units not listed are
#: either identical or unconvertible.
_UNIT_FACTORS: dict[tuple[str, str], float] = {
    ("B", "MB"): 1.0 / (1024 * 1024),
    ("KB", "MB"): 1.0 / 1024,
    ("GB", "MB"): 1024.0,
    ("MB", "B"): 1024.0 * 1024,
    ("MB", "KB"): 1024.0,
    ("MB", "GB"): 1.0 / 1024,
    ("KB", "B"): 1024.0,
    ("B", "KB"): 1.0 / 1024,
    ("Hz", "MHz"): 1e-6,
    ("KHz", "MHz"): 1e-3,
    ("GHz", "MHz"): 1e3,
    ("MHz", "GHz"): 1e-3,
    ("MHz", "Hz"): 1e6,
    ("bps", "Mbps"): 1e-6,
    ("Kbps", "Mbps"): 1e-3,
    ("Gbps", "Mbps"): 1e3,
    ("Mbps", "bps"): 1e6,
    ("ms", "s"): 1e-3,
    ("us", "s"): 1e-6,
    ("s", "ms"): 1e3,
    ("min", "s"): 60.0,
    ("hour", "s"): 3600.0,
    ("fraction", "percent"): 100.0,
    ("percent", "fraction"): 0.01,
}


def convert_unit(value: float, from_unit: str, to_unit: str) -> float:
    """Convert ``value`` between units; identity when units match/blank."""
    if from_unit == to_unit or not from_unit or not to_unit:
        return value
    factor = _UNIT_FACTORS.get((from_unit, to_unit))
    if factor is None:
        raise UnitConversionError(f"no conversion {from_unit!r} -> {to_unit!r}")
    return value * factor


@dataclass
class MappingRule:
    """How one GLUE field is produced from a native record.

    Attributes:
        glue_field: target GLUE field name.
        native_key: key in the native record; None for transform-only rules.
        unit: unit of the native value; converted to the GLUE field's
            canonical unit automatically when both are known.
        transform: optional callable applied to the raw native value (or,
            when ``native_key`` is None, to the whole record).
        default: value used when the native key is absent (left None to
            signal "not translatable").
    """

    glue_field: str
    native_key: Optional[str] = None
    unit: str = ""
    transform: Optional[Callable[[Any], Any]] = None
    default: Any = None

    def apply(self, record: Mapping[str, Any], target: "GlueGroup") -> Any:
        """Produce the GLUE value, or None on any failure (paper §3.2.3)."""
        if self.native_key is not None:
            if self.native_key not in record:
                return self.default
            raw: Any = record[self.native_key]
        else:
            raw = record
        try:
            if self.transform is not None:
                raw = self.transform(raw)
            if raw is None:
                return self.default
            fdef = target.field(self.glue_field)
            if fdef.type in ("REAL", "INTEGER", "TIMESTAMP") and not isinstance(
                raw, bool
            ):
                numeric = float(raw)
                numeric = convert_unit(numeric, self.unit, fdef.unit)
                return int(numeric) if fdef.type == "INTEGER" else numeric
            if fdef.type == "BOOLEAN":
                if isinstance(raw, str):
                    return raw.strip().lower() in ("true", "t", "yes", "1", "on")
                return bool(raw)
            return str(raw) if fdef.type == "TEXT" else raw
        except (TypeError, ValueError, KeyError, UnitConversionError):
            # "drivers can return null values, indicating a translation was
            # either not possible or currently not implemented"
            return None

    def compile(self, target: "GlueGroup") -> Callable[[Mapping[str, Any]], Any]:
        """A closure equivalent to :meth:`apply` with ``target`` prebound.

        The field definition lookup (a linear scan in :meth:`apply`) and
        the type dispatch happen here, once, instead of once per record
        — the hot translation loop then runs pure closures.
        """
        native_key = self.native_key
        transform = self.transform
        default = self.default
        unit = self.unit
        try:
            fdef = target.field(self.glue_field)
        except KeyError:
            fdef = None
        ftype = fdef.type if fdef is not None else None
        funit = fdef.unit if fdef is not None else ""
        numeric_type = ftype in ("REAL", "INTEGER", "TIMESTAMP")

        def build(record: Mapping[str, Any]) -> Any:
            if native_key is not None:
                if native_key not in record:
                    return default
                raw: Any = record[native_key]
            else:
                raw = record
            try:
                if transform is not None:
                    raw = transform(raw)
                if raw is None:
                    return default
                if fdef is None:
                    # apply() hits KeyError from target.field here.
                    return None
                if numeric_type and not isinstance(raw, bool):
                    numeric = convert_unit(float(raw), unit, funit)
                    return int(numeric) if ftype == "INTEGER" else numeric
                if ftype == "BOOLEAN":
                    if isinstance(raw, str):
                        return raw.strip().lower() in ("true", "t", "yes", "1", "on")
                    return bool(raw)
                return str(raw) if ftype == "TEXT" else raw
            except (TypeError, ValueError, KeyError, UnitConversionError):
                return None

        return build


@dataclass
class GroupMapping:
    """All rules producing one GLUE group from one native record shape."""

    group: str
    rules: list[MappingRule] = field(default_factory=list)

    def rule_for(self, glue_field: str) -> Optional[MappingRule]:
        for r in self.rules:
            if r.glue_field == glue_field:
                return r
        return None

    def translate(
        self, record: Mapping[str, Any], schema: GlueSchema
    ) -> dict[str, Any]:
        """Translate one native record into a full GLUE row.

        Every field of the group is present in the output; unmapped or
        failed fields are None.
        """
        target = schema.group(self.group)
        row: dict[str, Any] = {}
        by_field = {r.glue_field: r for r in self.rules}
        for fdef in target.fields:
            rule = by_field.get(fdef.name)
            row[fdef.name] = rule.apply(record, target) if rule else None
        return row

    def row_builders(
        self, schema: GlueSchema
    ) -> list[Callable[[Mapping[str, Any]], Any]]:
        """One compiled value builder per group field, in field order.

        ``[[b(record) for b in builders] for record in records]`` is the
        positional-row equivalent of calling :meth:`translate` per
        record, minus the per-record dict and per-field rule lookups.
        Builders are cached; the cache is discarded when the target
        group object or the rule list changes.
        """
        target = schema.group(self.group)
        cached = getattr(self, "_builders_cache", None)
        if (
            cached is not None
            and cached[0] is target
            and cached[1] == tuple(self.rules)
        ):
            builders: list[Callable[[Mapping[str, Any]], Any]] = cached[2]
            return builders
        by_field = {r.glue_field: r for r in self.rules}
        builders = []
        for fdef in target.fields:
            rule = by_field.get(fdef.name)
            if rule is None:
                builders.append(lambda record: None)
            else:
                builders.append(rule.compile(target))
        self._builders_cache = (target, tuple(self.rules), builders)
        return builders

    def coverage(self, schema: GlueSchema) -> float:
        """Fraction of the group's fields that have a mapping rule."""
        target = schema.group(self.group)
        if not target.fields:
            return 1.0
        mapped = sum(1 for f in target.fields if self.rule_for(f.name))
        return mapped / len(target.fields)


class SchemaMapping:
    """A driver's complete GLUE implementation: group name -> rules.

    Drivers fetch this from the ``SchemaManager`` when a connection is
    created and consult it per-statement (paper Figure 5).
    """

    def __init__(self, driver_name: str, groups: Iterable[GroupMapping] = ()) -> None:
        self.driver_name = driver_name
        self._groups: dict[str, GroupMapping] = {}
        for g in groups:
            self.add(g)

    def add(self, mapping: GroupMapping) -> None:
        if mapping.group in self._groups:
            raise ValueError(
                f"duplicate mapping for group {mapping.group!r} in "
                f"{self.driver_name!r}"
            )
        self._groups[mapping.group] = mapping

    def supports(self, group: str) -> bool:
        return group in self._groups

    def group_mapping(self, group: str) -> GroupMapping:
        m = self._groups.get(group)
        if m is None:
            raise KeyError(
                f"driver {self.driver_name!r} has no mapping for group {group!r}"
            )
        return m

    def groups(self) -> list[str]:
        return sorted(self._groups)

    def translate(
        self, group: str, records: Iterable[Mapping[str, Any]], schema: GlueSchema
    ) -> list[dict[str, Any]]:
        """Translate a batch of native records into GLUE rows."""
        mapping = self.group_mapping(group)
        return [mapping.translate(r, schema) for r in records]

    def translate_rows(
        self, group: str, records: Iterable[Mapping[str, Any]], schema: GlueSchema
    ) -> list[list[Any]]:
        """Translate a batch into positional GLUE rows (group field
        order) — the zero-copy shape compiled plans bind against."""
        builders = self.group_mapping(group).row_builders(schema)
        return [[b(r) for b in builders] for r in records]
