"""GLUE naming schema substrate.

GridRM normalises all harvested data onto the GLUE schema (Grid Laboratory
Uniform Environment, paper §3.1.4/§3.2.3): GLUE "logically organises data
into groups" whose essence "can be directly compared to the tables of a
relational database", and clients SELECT from group names
(``SELECT * FROM Processor``).

This package defines the conceptual schema — groups, typed fields,
canonical units — plus the mapping machinery drivers use to translate
native agent records into GLUE rows, returning NULL where a translation
"was either not possible or currently not implemented" (§3.2.3).
"""

from repro.glue.schema import (
    GlueField,
    GlueGroup,
    GlueSchema,
    STANDARD_SCHEMA,
    standard_schema,
)
from repro.glue.mapping import (
    MappingRule,
    GroupMapping,
    SchemaMapping,
    UnitConversionError,
    convert_unit,
)
from repro.glue.validation import ValidationIssue, validate_row
from repro.glue.render import (
    schema_to_xml,
    rows_to_xml,
    xml_to_rows,
    rows_to_ldif,
    ldif_to_rows,
)

__all__ = [
    "GlueField",
    "GlueGroup",
    "GlueSchema",
    "STANDARD_SCHEMA",
    "standard_schema",
    "MappingRule",
    "GroupMapping",
    "SchemaMapping",
    "UnitConversionError",
    "convert_unit",
    "ValidationIssue",
    "validate_row",
    "schema_to_xml",
    "rows_to_xml",
    "xml_to_rows",
    "rows_to_ldif",
    "ldif_to_rows",
]
