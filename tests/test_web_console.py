"""Unit tests for the management console (Figures 6-9)."""

import pytest

from repro.core.request_manager import QueryMode
from repro.web.console import (
    Console,
    ICON_EVENT,
    ICON_FAILED,
    ICON_FRESH,
    ICON_NEVER,
    ICON_STALE,
)


@pytest.fixture
def console(site):
    return Console(site.gateway)


class TestTreeView:
    def test_lists_all_sources(self, site, console):
        tree = console.tree_view()
        for url in site.source_urls:
            assert url in tree

    def test_never_polled_icon(self, console):
        assert ICON_NEVER in console.tree_view()

    def test_fresh_after_poll(self, site, console):
        console.poll(site.url_for("snmp"))
        tree = console.tree_view()
        assert ICON_FRESH in tree

    def test_stale_after_ttl(self, site, console):
        console.poll(site.url_for("snmp"))
        site.clock.advance(site.gateway.cache.ttl + 5.0)
        assert ICON_STALE in console.tree_view()

    def test_failed_icon_and_error_line(self, site, console):
        dead = site.host_names()[0]
        site.network.set_host_up(dead, False)
        console.poll(site.url_for("snmp", host=dead))
        tree = console.tree_view()
        assert ICON_FAILED in tree
        assert "error:" in tree

    def test_event_icon(self, site, console):
        from repro.core.events import Event

        gw = site.gateway
        host = site.host_names()[0]
        gw.events.recent.append(
            Event(source_host=host, name="load.high", severity="warning", time=site.clock.now())
        )
        assert ICON_EVENT in console.tree_view()

    def test_cached_rows_shown_with_group_and_age(self, site, console):
        console.poll(site.url_for("ganglia"), "SELECT * FROM Processor")
        tree = console.tree_view()
        assert "cached: Processor rows=3" in tree

    def test_refresh_is_cache_only(self, site, console):
        """Figure 9: refresh must not poll agents."""
        console.poll_all()
        site.network.stats.reset()
        console.refresh()
        assert site.network.stats.requests == 0

    def test_empty_gateway_renders(self, site):
        from repro.core.gateway import Gateway

        empty = Gateway(site.network, "empty-gw", site="elsewhere")
        assert "no data sources" in Console(empty).tree_view()


class TestPoll:
    def test_poll_is_realtime(self, site, console):
        r1 = console.poll(site.url_for("snmp"))
        r2 = console.poll(site.url_for("snmp"))
        assert not r1.statuses[0].from_cache
        assert not r2.statuses[0].from_cache

    def test_poll_repopulates_cache_for_other_users(self, site, console):
        console.poll(site.url_for("snmp"))
        r = site.gateway.query(
            site.url_for("snmp"), "SELECT * FROM Host", mode=QueryMode.CACHED_OK
        )
        assert r.statuses[0].from_cache

    def test_poll_all_touches_every_source(self, site, console):
        results = console.poll_all()
        assert len(results) == len(site.source_urls)


class TestDriverPanel:
    def test_lists_registered_drivers(self, console):
        panel = console.driver_panel()
        assert "JDBC-SNMP" in panel and "JDBC-Ganglia" in panel

    def test_shows_preferences(self, site, console):
        site.gateway.set_driver_preference(site.url_for("snmp"), ["JDBC-SNMP"])
        assert "JDBC-SNMP" in console.driver_panel().split("preferences:")[-1]

    def test_shows_failure_policy(self, console):
        assert "dynamic" in console.driver_panel()


class TestAlertsPanel:
    def test_empty_panel(self, console):
        assert "(none installed)" in console.alerts_panel()

    def test_quiet_rule_listed(self, site, console):
        from repro.core.alerts import AlertRule

        site.gateway.alerts.add_rule(
            AlertRule(
                name="quiet",
                urls=[site.url_for("snmp")],
                sql="SELECT HostName FROM Processor WHERE LoadAverage1Min > 1e9",
                period=10.0,
            )
        )
        panel = console.alerts_panel()
        assert "quiet" in panel and "[quiet]" in panel

    def test_firing_rule_shows_hosts(self, site, console):
        from repro.core.alerts import AlertRule

        site.gateway.alerts.add_rule(
            AlertRule(
                name="hot",
                urls=[site.url_for("snmp")],
                sql="SELECT HostName FROM Processor WHERE CPUCount >= 1",
                period=10.0,
                use_cache=False,
                rearm_after=1e9,
            )
        )
        site.clock.advance(11.0)
        panel = console.alerts_panel()
        assert "FIRING on" in panel
        assert "Recent alert events:" in panel

    def test_servlet_alerts_route(self, site, console):
        from repro.web.servlet import GatewayServlet, http_get

        servlet = GatewayServlet(site.gateway, port=8090)
        code, body = http_get(
            site.network, site.host_names()[0], servlet.address, "/alerts"
        )
        assert code == 200 and "Alert rules:" in body


class TestPlot:
    def test_plot_needs_data(self, console):
        out = console.plot("Processor", "LoadAverage1Min")
        assert "not enough recorded data" in out

    def test_plot_renders_series(self, site, console):
        for _ in range(12):
            console.poll(site.url_for("snmp"), "SELECT * FROM Processor")
            site.clock.advance(10.0)
        out = console.plot("Processor", "LoadAverage1Min", host=site.host_names()[0])
        assert "*" in out and "Processor.LoadAverage1Min" in out

    def test_html_rendering(self, site, console):
        console.poll_all()
        html = console.html()
        assert html.startswith("<html>") and "GridRM" in html
