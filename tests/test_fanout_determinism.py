"""Fan-out determinism and degradation parity under concurrent dispatch.

The concurrent dispatch layer must not change *what* a query answers —
only how long it takes.  These tests pin that contract:

* same seed + same sources ⇒ identical consolidated rows and statuses,
  run after run;
* merge order follows the caller's URL order, never completion order;
* breaker short-circuits and stale-degradation behave identically with
  fan-out on and off;
* single-flight coalescing reduces agent traffic without changing
  results.
"""

from __future__ import annotations

import pytest

from repro.core.gateway import BatchQuery
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


def fresh_site(*, fanout=True, singleflight=True, seed=11, n_hosts=6, **policy_kwargs):
    clock = VirtualClock()
    network = Network(clock, seed=seed)
    policy = GatewayPolicy(
        fanout_enabled=fanout, singleflight_enabled=singleflight, **policy_kwargs
    )
    site = build_site(
        network,
        name="s",
        n_hosts=n_hosts,
        agents=("snmp", "ganglia"),
        seed=seed,
        policy=policy,
    )
    clock.advance(30.0)
    return site


def source_urls(site):
    return [str(s.url) for s in site.gateway.sources()]


def status_tuples(result):
    return [
        (s.url, s.ok, s.rows, s.from_cache, s.degraded, s.error)
        for s in result.statuses
    ]


def rows_sans_timestamp(result):
    """Rows with the sample-timestamp column masked.

    Poll *instants* legitimately differ between serial and concurrent
    dispatch (that is the whole point); the monitored values must not.
    """
    if "Timestamp" not in result.columns:
        return result.rows
    ts = result.columns.index("Timestamp")
    return [[v for i, v in enumerate(r) if i != ts] for r in result.rows]


class TestDeterminism:
    def test_same_seed_same_rows_and_statuses(self):
        def run():
            site = fresh_site()
            gw = site.gateway
            r = gw.query(
                source_urls(site), "SELECT * FROM Processor", mode=QueryMode.REALTIME
            )
            return r.columns, r.rows, status_tuples(r), r.elapsed

        assert run() == run()

    def test_merge_follows_url_order_not_completion_order(self):
        site = fresh_site()
        gw = site.gateway
        urls = source_urls(site)
        r = gw.query(urls, "SELECT * FROM Processor", mode=QueryMode.REALTIME)
        # Statuses come back in the caller's URL order even though the
        # branches' virtual round-trips complete in some other order.
        assert [s.url for s in r.statuses] == urls
        # Reversing the URL list reverses the consolidation order while
        # preserving each source's contribution.
        site2 = fresh_site()
        r2 = site2.gateway.query(
            list(reversed(source_urls(site2))),
            "SELECT * FROM Processor",
            mode=QueryMode.REALTIME,
        )
        assert [s.url for s in r2.statuses] == list(reversed(urls))
        # Same per-source contributions either way (sample instants may
        # differ — branches draw their link delays in call order).
        from collections import Counter

        assert Counter(map(tuple, rows_sans_timestamp(r))) == Counter(
            map(tuple, rows_sans_timestamp(r2))
        )

    def test_fanout_and_serial_agree_on_everything_but_time(self):
        r_fan = fresh_site(fanout=True).gateway.query(
            source_urls(fresh_site(fanout=True)),
            "SELECT * FROM Processor",
            mode=QueryMode.REALTIME,
        )
        site_ser = fresh_site(fanout=False)
        r_ser = site_ser.gateway.query(
            source_urls(site_ser), "SELECT * FROM Processor", mode=QueryMode.REALTIME
        )
        assert r_fan.columns == r_ser.columns
        assert rows_sans_timestamp(r_fan) == rows_sans_timestamp(r_ser)
        assert status_tuples(r_fan) == status_tuples(r_ser)
        # And concurrency actually bought something.
        assert r_fan.elapsed < r_ser.elapsed

    def test_join_decomposition_deterministic(self):
        def run(fanout):
            site = fresh_site(fanout=fanout)
            r = site.gateway.query(
                source_urls(site),
                "SELECT * FROM Processor, MainMemory",
                mode=QueryMode.REALTIME,
            )
            return r.columns, rows_sans_timestamp(r), status_tuples(r)

        cols_fan, rows_fan, st_fan = run(True)
        cols_ser, rows_ser, st_ser = run(False)
        # Shape and per-source statuses are mode-independent; the row
        # *values* may drift slightly between modes because concurrent
        # dispatch samples every group at the scatter instant while
        # serial dispatch samples later groups later (time-continuous
        # host metrics).  Determinism within a mode is exact.
        assert (cols_fan, st_fan) == (cols_ser, st_ser)
        assert len(rows_fan) == len(rows_ser)
        assert run(True) == run(True)
        assert run(False) == run(False)


class TestDegradationParity:
    @staticmethod
    def _breaker_rig(fanout):
        site = fresh_site(fanout=fanout, breaker_failure_threshold=2)
        gw = site.gateway
        urls = source_urls(site)
        victim_host = site.host_names()[0]
        # The ganglia agent answers cluster-wide queries even when one
        # member is down; the per-host SNMP agent is the reliable victim.
        victim_urls = [u for u in urls if u == f"jdbc:snmp://{victim_host}/system"]
        assert victim_urls
        site.fail_host(victim_host)
        return site, gw, urls, victim_urls

    def test_breaker_short_circuits_identically(self):
        outcomes = {}
        for fanout in (True, False):
            site, gw, urls, victim_urls = self._breaker_rig(fanout)
            # Trip the victim's breakers, then observe the short-circuit.
            for _ in range(3):
                gw.query(urls, "SELECT * FROM Processor", mode=QueryMode.REALTIME)
                site.clock.advance(1.0)
            r = gw.query(urls, "SELECT * FROM Processor", mode=QueryMode.REALTIME)
            outcomes[fanout] = {
                "states": {u: gw.health.state(u).value for u in victim_urls},
                "short_circuits": gw.request_manager.stats["breaker_short_circuits"]
                > 0,
                "statuses": [
                    (s.url, s.ok, s.degraded, s.from_cache) for s in r.statuses
                ],
            }
            assert all(
                st.degraded for st in r.statuses if st.url in victim_urls
            ), "victim sources must be served degraded once the breaker is open"
        assert outcomes[True] == outcomes[False]

    def test_stale_served_identically(self):
        outcomes = {}
        for fanout in (True, False):
            site, gw, urls, victim_urls = self._breaker_rig(fanout)
            # The pre-failure poll in the rig warms nothing; prime the
            # cache, then kill and trip.
            site.heal_host(site.host_names()[0])
            gw.query(urls, "SELECT * FROM Processor", mode=QueryMode.REALTIME)
            site.fail_host(site.host_names()[0])
            for _ in range(3):
                gw.query(urls, "SELECT * FROM Processor", mode=QueryMode.REALTIME)
                site.clock.advance(1.0)
            r = gw.query(urls, "SELECT * FROM Processor", mode=QueryMode.REALTIME)
            victim_statuses = [s for s in r.statuses if s.url in victim_urls]
            outcomes[fanout] = [
                (s.url, s.ok, s.degraded, s.from_cache, s.rows)
                for s in victim_statuses
            ]
            assert victim_statuses
            assert all(s.ok and s.degraded and s.from_cache for s in victim_statuses)
        assert outcomes[True] == outcomes[False]


class TestSingleFlight:
    def test_identical_batch_members_share_round_trips(self):
        def run(singleflight):
            site = fresh_site(singleflight=singleflight, query_cache_ttl=0.0)
            gw = site.gateway
            urls = source_urls(site)
            before = gw.network.stats.requests
            batch = [
                BatchQuery(
                    urls=urls,
                    sql="SELECT * FROM Processor, MainMemory",
                    mode=QueryMode.REALTIME,
                ),
                BatchQuery(
                    urls=urls, sql="SELECT * FROM Processor", mode=QueryMode.REALTIME
                ),
                BatchQuery(
                    urls=urls, sql="SELECT * FROM MainMemory", mode=QueryMode.REALTIME
                ),
            ]
            results = gw.query_batch(batch)
            assert not any(isinstance(r, Exception) for r in results)
            return (
                gw.network.stats.requests - before,
                gw.dispatcher.stats.singleflight_joins,
                [rows_sans_timestamp(r) for r in results],
            )

        requests_on, joins_on, rows_on = run(True)
        requests_off, joins_off, rows_off = run(False)
        assert joins_on > 0
        assert joins_off == 0
        assert requests_on < requests_off
        assert rows_on == rows_off

    def test_coalesced_status_flagged(self):
        site = fresh_site(query_cache_ttl=0.0)
        gw = site.gateway
        urls = source_urls(site)
        batch = [
            BatchQuery(urls=urls, sql="SELECT * FROM Processor", mode=QueryMode.REALTIME),
            BatchQuery(urls=urls, sql="SELECT * FROM Processor", mode=QueryMode.REALTIME),
        ]
        first, second = gw.query_batch(batch)
        assert not any(s.coalesced for s in first.statuses)
        assert all(s.coalesced for s in second.statuses)
        assert rows_sans_timestamp(first) == rows_sans_timestamp(second)


class TestBatchSurfaces:
    def test_query_batch_errors_in_place(self):
        site = fresh_site()
        gw = site.gateway
        urls = source_urls(site)
        batch = [
            BatchQuery(urls=urls, sql="SELECT * FROM Processor"),
            BatchQuery(urls=urls, sql="SELECT * FROM NoSuchGroup"),
            BatchQuery(urls=urls, sql="SELECT * FROM MainMemory"),
        ]
        results = gw.query_batch(batch)
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], Exception)
        assert not isinstance(results[2], Exception)

    def test_acil_query_many(self):
        from repro.core.acil import ClientRequest

        site = fresh_site()
        gw = site.gateway
        urls = source_urls(site)
        replies = gw.acil.query_many(
            [
                ClientRequest(urls=urls, sql="SELECT * FROM Processor"),
                ClientRequest(urls=urls, sql="SELECT * FROM NoSuchGroup"),
            ]
        )
        assert replies[0].ok and replies[0].rows
        assert not replies[1].ok
        assert "NoSuchGroup" in replies[1].error

    def test_console_poll_all_uses_one_fanout(self):
        from repro.web.console import Console

        site = fresh_site()
        console = Console(site.gateway)
        t0 = site.clock.now()
        results = console.poll_all()
        elapsed = site.clock.now() - t0
        assert len(results) == len(source_urls(site))
        assert site.gateway.dispatcher.stats.fanouts >= 1
        # The whole site poll costs about one round-trip, not N.
        serial_site = fresh_site(fanout=False)
        serial_console = Console(serial_site.gateway)
        t0 = serial_site.clock.now()
        serial_console.poll_all()
        serial_elapsed = serial_site.clock.now() - t0
        assert elapsed < serial_elapsed

    def test_dispatch_panel_renders(self):
        from repro.web.console import Console

        site = fresh_site()
        gw = site.gateway
        gw.query(source_urls(site), "SELECT * FROM Processor", mode=QueryMode.REALTIME)
        panel = Console(gw).dispatch_panel()
        assert "fan-out enabled" in panel
        assert "coalesced joins" in panel


class TestPolicyKnobs:
    def test_negative_cap_rejected(self):
        from repro.core.errors import PolicyError

        with pytest.raises(PolicyError):
            GatewayPolicy(max_concurrent_per_source=-1)

    def test_negative_cache_bound_rejected(self):
        from repro.core.errors import PolicyError

        with pytest.raises(PolicyError):
            GatewayPolicy(query_cache_max_entries=-1)

    def test_gateway_stats_expose_dispatch_and_evictions(self):
        site = fresh_site()
        gw = site.gateway
        gw.query(source_urls(site), "SELECT * FROM Processor", mode=QueryMode.REALTIME)
        stats = gw.stats()
        assert stats["dispatch"]["fanouts"] >= 1
        assert "evictions" in stats["cache"]
        assert stats["requests"]["join_queries"] == 0
