"""Differential tests: compiled plans ≡ the interpreted executor.

The compiled path (:mod:`repro.sql.plan`) must be byte-identical to
:func:`repro.sql.executor.execute_select` — same columns, same rows, same
row order, and the same exception type/message whenever the interpreter
raises.  A seeded generator sweeps projections, aliases, LIKE, NULLs,
aggregates, GROUP BY/HAVING, ORDER BY, DISTINCT and LIMIT/OFFSET over a
relation with NULLs, numeric strings and mixed types; both bind flavours
(positional slots and mapping rows) are checked against the oracle.
"""

import random

import pytest

from repro.sql.executor import execute_select, natural_join
from repro.sql.parser import parse_select
from repro.sql.plan import CompiledPlan, compile_plan, join_rows

COLUMNS = ["HostName", "SiteName", "Load", "MemMB", "Label"]

ROWS = [
    {"HostName": "h1", "SiteName": "s1", "Load": 0.5, "MemMB": 512, "Label": "alpha"},
    {"HostName": "h2", "SiteName": "s1", "Load": None, "MemMB": 1024, "Label": "Beta"},
    {"HostName": "h3", "SiteName": "s2", "Load": "2.5", "MemMB": None, "Label": None},
    {"HostName": "h4", "SiteName": "s2", "Load": 7, "MemMB": 2048, "Label": "alpha"},
    {"HostName": "h5", "SiteName": "s3", "Load": 0.5, "MemMB": 512, "Label": "gamma%"},
    {"HostName": "h6", "SiteName": "s3", "Load": -1.5, "MemMB": 256, "Label": ""},
]


def slot_rows():
    return [[r[c] for c in COLUMNS] for r in ROWS]


def outcome(fn):
    """Result triple or exception fingerprint — compared across paths."""
    try:
        result = fn()
        return ("ok", result.columns, result.rows)
    except Exception as exc:  # noqa: BLE001 - fingerprinting all failures
        return ("err", type(exc).__name__, str(exc))


def assert_equivalent(sql, columns=COLUMNS, dict_rows=ROWS):
    select = parse_select(sql)
    ref = outcome(lambda: execute_select(select, columns, dict_rows))
    plan = compile_plan(select)
    positional = [[r.get(c) for c in columns] for r in dict_rows]
    got_slot = outcome(lambda: plan.bind(tuple(columns)).execute(positional))
    got_map = outcome(lambda: plan.bind_mapping(tuple(columns)).execute(dict_rows))
    assert got_slot == ref, f"slot flavour diverged on {sql!r}:\n{got_slot}\n{ref}"
    assert got_map == ref, f"mapping flavour diverged on {sql!r}:\n{got_map}\n{ref}"
    return ref


HAND_PICKED = [
    "SELECT * FROM Processor",
    "SELECT HostName, Load FROM Processor",
    "SELECT hostname, LOAD FROM Processor",
    "SELECT HostName FROM Processor WHERE Load > 1",
    "SELECT HostName FROM Processor WHERE Load > '1'",
    "SELECT * FROM Processor WHERE Load IS NULL",
    "SELECT * FROM Processor WHERE Load IS NOT NULL AND MemMB >= 512",
    "SELECT * FROM Processor WHERE Label LIKE 'a%'",
    "SELECT * FROM Processor WHERE Label LIKE '%a%'",
    "SELECT * FROM Processor WHERE Label LIKE 'gamma\\%'",
    "SELECT * FROM Processor WHERE Label LIKE Label",
    "SELECT * FROM Processor WHERE HostName LIKE '_2'",
    "SELECT HostName, Load * 2 AS Dbl FROM Processor ORDER BY Dbl DESC",
    "SELECT HostName, Load * 2 AS Load FROM Processor ORDER BY Load",
    "SELECT HostName AS a, SiteName AS a FROM Processor ORDER BY a",
    "SELECT * FROM Processor ORDER BY Load, HostName DESC",
    "SELECT * FROM Processor ORDER BY Missing",
    "SELECT COUNT(*) FROM Processor",
    "SELECT COUNT(Load), SUM(Load), AVG(Load), MIN(Load), MAX(MemMB) FROM Processor",
    "SELECT COUNT(DISTINCT Label) FROM Processor",
    "SELECT SiteName, COUNT(*) FROM Processor GROUP BY SiteName",
    "SELECT SiteName, AVG(MemMB) FROM Processor GROUP BY SiteName ORDER BY SiteName",
    "SELECT SiteName, COUNT(*) AS n FROM Processor GROUP BY SiteName"
    " HAVING n > 1 ORDER BY n DESC, SiteName",
    "SELECT SiteName, MAX(MemMB) FROM Processor WHERE Load IS NOT NULL"
    " GROUP BY SiteName",
    "SELECT SUM(MemMB) + 1 FROM Processor",
    "SELECT COUNT(*) * 2 FROM Processor WHERE Load > 100",
    "SELECT -Load FROM Processor",
    "SELECT NOT (Load > 1) FROM Processor",
    "SELECT DISTINCT SiteName FROM Processor",
    "SELECT DISTINCT Load, Label FROM Processor ORDER BY Load LIMIT 3",
    "SELECT * FROM Processor LIMIT 2 OFFSET 3",
    "SELECT * FROM Processor WHERE Load BETWEEN 0 AND 5",
    "SELECT * FROM Processor WHERE Load NOT BETWEEN 0 AND 5",
    "SELECT * FROM Processor WHERE SiteName IN ('s1', 's3')",
    "SELECT * FROM Processor WHERE SiteName NOT IN ('s1', Label)",
    "SELECT * FROM Processor WHERE Load + MemMB > 500",
    "SELECT * FROM Processor WHERE Load / 0 = 1",
    "SELECT * FROM Processor WHERE Load % 2 = 1",
    "SELECT Missing FROM Processor",
    "SELECT * FROM Processor WHERE Missing = 1",
    "SELECT *, COUNT(*) FROM Processor",
    "SELECT * FROM Processor GROUP BY SiteName",
    "SELECT HostName FROM Processor WHERE Load > Label",
]


class TestHandPicked:
    @pytest.mark.parametrize("sql", HAND_PICKED)
    def test_equivalent(self, sql):
        assert_equivalent(sql)

    def test_empty_relation(self):
        for sql in (
            "SELECT * FROM Processor",
            "SELECT COUNT(*) FROM Processor",
            "SELECT SUM(Load) FROM Processor",
            "SELECT HostName FROM Processor ORDER BY Load",
            "SELECT SiteName, COUNT(*) FROM Processor GROUP BY SiteName",
        ):
            assert_equivalent(sql, COLUMNS, [])

    def test_aggregate_references_column_on_empty_group(self):
        # Implicit single empty group: the interpreter resolves plain
        # columns against an empty sample row and raises.
        ref = assert_equivalent(
            "SELECT HostName, COUNT(*) FROM Processor", COLUMNS, []
        )
        assert ref[0] == "err"

    def test_duplicate_source_labels_resolve_like_dicts(self):
        # dict(zip(...)) keeps the FIRST key position with the LAST value;
        # the slot binder must match both halves of that.
        columns = ["a", "B", "a"]
        dict_rows = [dict(zip(columns, row)) for row in [[1, 2, 3], [4, 5, 6]]]
        for sql in (
            "SELECT a FROM t",
            "SELECT A FROM t",
            "SELECT b FROM t ORDER BY a DESC",
            "SELECT * FROM t",
        ):
            select = parse_select(sql)
            ref = outcome(lambda: execute_select(select, columns, dict_rows))
            plan = compile_plan(select)
            positional = [[1, 2, 3], [4, 5, 6]]
            got = outcome(lambda: plan.bind(tuple(columns)).execute(positional))
            assert got == ref, sql


def random_select(rng):
    """One random SELECT over the test relation (always parseable)."""
    numeric = ["Load", "MemMB"]
    textual = ["HostName", "SiteName", "Label"]

    def predicate():
        roll = rng.randrange(8)
        col = rng.choice(COLUMNS)
        if roll == 0:
            return f"{col} IS {'NOT ' if rng.random() < 0.5 else ''}NULL"
        if roll == 1:
            return f"{rng.choice(textual)} LIKE '{rng.choice(['a%', '%a%', 'h_', '%', 'Beta'])}'"
        if roll == 2:
            return f"{rng.choice(numeric)} BETWEEN {rng.randrange(-2, 3)} AND {rng.randrange(3, 3000)}"
        if roll == 3:
            return f"SiteName IN ('s1', 's{rng.randrange(2, 5)}')"
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        if roll == 4:
            rhs = rng.choice(["0.5", "2", "512", "'1'"])
            return f"{rng.choice(numeric)} {op} {rhs}"
        if roll == 5:
            return f"{rng.choice(textual)} {op} '{rng.choice(['h1', 'alpha', 's2', ''])}'"
        if roll == 6:
            return f"{rng.choice(numeric)} {rng.choice(['+', '-', '*', '/', '%'])} {rng.randrange(0, 4)} {op} {rng.randrange(0, 1024)}"
        return f"{rng.choice(COLUMNS)} {op} {rng.choice(COLUMNS)}"

    def where():
        parts = [predicate() for _ in range(rng.randrange(1, 4))]
        glue = [rng.choice([" AND ", " OR "]) for _ in parts[1:]]
        out = parts[0]
        for g, p in zip(glue, parts[1:]):
            p = f"NOT ({p})" if rng.random() < 0.2 else p
            out += g + p
        return out

    grouped = rng.random() < 0.4
    sql_parts = ["SELECT"]
    if rng.random() < 0.2:
        sql_parts.append("DISTINCT")
    if grouped:
        aggs = ["COUNT(*)", "SUM(Load)", "AVG(MemMB)", "MIN(Label)",
                "MAX(Load)", "COUNT(DISTINCT Label)"]
        items = ["SiteName"] + rng.sample(aggs, rng.randrange(1, 3))
        if rng.random() < 0.5:
            items[1] += " AS agg"
        sql_parts.append(", ".join(items))
        sql_parts.append("FROM Processor")
        if rng.random() < 0.6:
            sql_parts.append("WHERE " + where())
        sql_parts.append("GROUP BY SiteName")
        if rng.random() < 0.4:
            sql_parts.append("HAVING COUNT(*) >= " + str(rng.randrange(0, 3)))
        if rng.random() < 0.5:
            sql_parts.append("ORDER BY SiteName" + rng.choice(["", " DESC"]))
    else:
        if rng.random() < 0.3:
            sql_parts.append("*")
        else:
            items = rng.sample(COLUMNS, rng.randrange(1, 4))
            if rng.random() < 0.4:
                items.append(f"{rng.choice(numeric)} * 2 AS Scaled")
            sql_parts.append(", ".join(items))
        sql_parts.append("FROM Processor")
        if rng.random() < 0.7:
            sql_parts.append("WHERE " + where())
        if rng.random() < 0.5:
            keys = rng.sample(COLUMNS + ["Scaled"], rng.randrange(1, 3))
            sql_parts.append(
                "ORDER BY "
                + ", ".join(k + rng.choice(["", " DESC"]) for k in keys)
            )
    if rng.random() < 0.3:
        sql_parts.append(f"LIMIT {rng.randrange(0, 6)}")
        if rng.random() < 0.5:
            sql_parts.append(f"OFFSET {rng.randrange(0, 4)}")
    return " ".join(sql_parts)


class TestGeneratedDifferential:
    def test_seeded_sweep(self):
        """400 generated SELECTs, byte-identical across all three paths."""
        rng = random.Random(20260809)
        for i in range(400):
            sql = random_select(rng)
            try:
                assert_equivalent(sql)
            except AssertionError:
                raise AssertionError(f"iteration {i}: {sql}") from None

    def test_generator_exercises_interesting_shapes(self):
        rng = random.Random(20260809)
        batch = [random_select(rng) for _ in range(400)]
        assert any("LIKE" in s for s in batch)
        assert any("GROUP BY" in s for s in batch)
        assert any("ORDER BY" in s for s in batch)
        assert any(" AS " in s for s in batch)
        assert any("DISTINCT" in s for s in batch)
        assert any("LIMIT" in s for s in batch)


class TestBindingCache:
    def test_bindings_cached_per_layout(self):
        plan = compile_plan(parse_select("SELECT HostName FROM Processor"))
        assert plan.bind(tuple(COLUMNS)) is plan.bind(tuple(COLUMNS))
        assert plan.bind_mapping(tuple(COLUMNS)) is plan.bind_mapping(tuple(COLUMNS))
        assert plan.bind(tuple(COLUMNS)) is not plan.bind(("HostName",))

    def test_compile_plan_returns_compiled_plan(self):
        plan = compile_plan(parse_select("SELECT * FROM Processor"))
        assert isinstance(plan, CompiledPlan)
        assert plan.select.table == "Processor"


class TestJoinRows:
    def relations(self):
        a_cols = ["HostName", "SiteName", "Load"]
        b_cols = ["HostName", "SiteName", "MemMB", "Vendor"]
        a_rows = [
            {"HostName": "h1", "SiteName": "s1", "Load": 1.0},
            {"HostName": "h2", "SiteName": "s1", "Load": 2.0},
            {"HostName": "h3", "SiteName": "s2", "Load": None},
        ]
        b_rows = [
            {"HostName": "h1", "SiteName": "s1", "MemMB": 512, "Vendor": "x"},
            {"HostName": "h2", "SiteName": "s1", "MemMB": 1024, "Vendor": "y"},
            {"HostName": "h2", "SiteName": "s1", "MemMB": 2048, "Vendor": "z"},
        ]
        return (a_cols, a_rows), (b_cols, b_rows)

    def positional(self, relation):
        cols, dict_rows = relation
        return cols, [[r.get(c) for c in cols] for r in dict_rows]

    def test_matches_natural_join(self):
        rel_a, rel_b = self.relations()
        for key_columns in (None, ("HostName", "SiteName"), ("SiteName",)):
            cols, dict_rows = natural_join([rel_a, rel_b], key_columns=key_columns)
            pcols, prow = join_rows(
                [self.positional(rel_a), self.positional(rel_b)],
                key_columns=key_columns,
            )
            assert pcols == cols
            assert prow == [[d.get(c) for c in cols] for d in dict_rows]

    def test_empty_and_errors_match(self):
        assert join_rows([]) == ([], [])
        rel_a, _ = self.relations()
        disjoint = (["Other"], [{"Other": 1}])
        import pytest as _pytest

        with _pytest.raises(Exception) as interp:
            natural_join([rel_a, disjoint])
        with _pytest.raises(Exception) as compiled:
            join_rows([self.positional(rel_a), self.positional(disjoint)])
        assert str(interp.value) == str(compiled.value)
        assert type(interp.value) is type(compiled.value)


class TestZeroCopy:
    def test_star_projection_adopts_rows(self):
        plan = compile_plan(parse_select("SELECT * FROM Processor"))
        rows = slot_rows()
        result = plan.bind(tuple(COLUMNS)).execute(rows)
        # Caller-relinquished rows are adopted, not copied.
        assert all(out is src for out, src in zip(result.rows, rows))

    def test_mapping_star_builds_fresh_rows(self):
        plan = compile_plan(parse_select("SELECT * FROM Processor"))
        result = plan.bind_mapping(tuple(COLUMNS)).execute(ROWS)
        result.rows[0][0] = "mutated"
        assert ROWS[0]["HostName"] == "h1"
