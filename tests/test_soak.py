"""Soak test: a realistic multi-subsystem deployment run for hours of
virtual time, asserting global invariants at the end.

This is the closest the suite gets to the paper's planned "deployment
across global test sites for early evaluation" (§5.1): two sites, every
agent kind, alert rules, an archiver following both gateways, a console
user browsing, background trap traffic — all at once.
"""

import pytest

from repro.core.alerts import AlertRule
from repro.core.request_manager import QueryMode
from repro.gma.archiver import EventArchiver
from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer
from repro.gma.subscription import EventPublisher
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site
from repro.web.console import Console
from repro.web.reports import capacity_report, utilisation_report


@pytest.fixture(scope="module")
def soaked():
    clock = VirtualClock()
    network = Network(clock, seed=101)
    sites = [
        build_site(
            network,
            name=f"soak-{c}",
            n_hosts=4,
            agents=("snmp", "ganglia", "nws", "netlogger", "scms", "sql"),
            seed=i,
            snmp_trap_threshold=1.5,
        )
        for i, c in enumerate("ab")
    ]
    directory = GMADirectory(network)
    layers = [GlobalLayer(s.gateway, directory) for s in sites]
    publishers = [EventPublisher(s.gateway) for s in sites]
    archiver = EventArchiver(network, "soak-archive")
    for p in publishers:
        archiver.follow(p)
    consoles = [Console(s.gateway) for s in sites]
    for site in sites:
        site.gateway.alerts.add_rule(
            AlertRule(
                name="hot",
                urls=[site.url_for("ganglia")],
                sql="SELECT HostName, CPUUtilization FROM Processor "
                    "WHERE CPUUtilization > 70",
                period=60.0,
                rearm_after=600.0,
            )
        )

    # Drive two virtual hours in 5-minute strides with client activity.
    for stride in range(24):
        clock.advance(300.0)
        for console, site in zip(consoles, sites):
            console.poll_all("SELECT * FROM Processor")
            site.gateway.query(
                [u for u in site.source_urls if u.startswith("jdbc:snmp")],
                "SELECT * FROM MainMemory",
            )
        # Cross-site query each stride.
        layers[0].query_remote(
            "soak-b", "SELECT HostName, LoadAverage1Min FROM Processor"
        )
    return network, sites, layers, archiver


class TestSoakInvariants:
    def test_no_source_permanently_failed(self, soaked):
        network, sites, layers, archiver = soaked
        for site in sites:
            for source in site.gateway.sources():
                assert source.last_polled is not None, str(source.url)

    def test_history_bounded_and_populated(self, soaked):
        network, sites, *_ = soaked
        for site in sites:
            gw = site.gateway
            assert gw.history.row_count("Processor") > 0
            assert gw.history.row_count() <= (
                gw.policy.history_max_rows_per_group
                * len(gw.history.groups_recorded())
            )

    def test_event_pipeline_consistent(self, soaked):
        network, sites, *_ = soaked
        for site in sites:
            stats = site.gateway.events.stats
            accounted = (
                stats["translated"] + stats["undecodable"] + stats["dropped"]
            )
            assert accounted <= stats["received"]
            assert site.gateway.events.backlog() + accounted >= stats["received"]

    def test_archiver_collected_both_sites(self, soaked):
        network, sites, layers, archiver = soaked
        hosts = {r[0] for r in archiver.query("SELECT source_host FROM events").rows}
        assert any(h.startswith("soak-a") for h in hosts)
        assert any(h.startswith("soak-b") for h in hosts)
        assert archiver.stats["renewals"] > 0

    def test_caches_effective(self, soaked):
        network, sites, *_ = soaked
        for site in sites:
            assert site.gateway.cache.hit_ratio >= 0.0
            stats = site.gateway.connection_manager.stats
            assert stats["reused"] > stats["created"]

    def test_remote_queries_served(self, soaked):
        network, sites, layers, _ = soaked
        assert layers[0].stats["remote_queries"] == 24
        # Warm repeats were served out of the inter-gateway cache.
        assert layers[0].stats["remote_cache_hits"] >= 0

    def test_reports_render(self, soaked):
        network, sites, *_ = soaked
        for site in sites:
            util = utilisation_report(site.gateway)
            assert len(util) == 4
            cap = capacity_report(site.gateway)
            assert cap.hosts == 4 and cap.total_cpus > 0

    def test_console_and_tree_still_render(self, soaked):
        network, sites, *_ = soaked
        for site in sites:
            tree = Console(site.gateway).tree_view()
            assert tree.count("+-") == len(site.source_urls)

    def test_host_metrics_stayed_sane_throughout(self, soaked):
        """Spot-check recorded history for invariant violations."""
        network, sites, *_ = soaked
        for site in sites:
            rows = site.gateway.history.db.table("Processor").rows
            for row in rows:
                util = row.get("CPUUtilization")
                if util is not None:
                    assert 0.0 <= util <= 100.0
                load = row.get("LoadAverage1Min")
                if load is not None:
                    assert load >= 0.0
