"""Tests for multi-group queries (paper §3.2.3: "Clients select one or
more GLUE group names to query")."""

import pytest

from repro.core.errors import GridRmError
from repro.core.request_manager import QueryMode
from repro.dbapi.exceptions import SQLException
from repro.sql.executor import SqlExecutionError, natural_join
from repro.sql.parser import parse_select
from repro.sql.render import render_select


class TestParsing:
    def test_single_table_not_join(self):
        stmt = parse_select("SELECT * FROM Processor")
        assert not stmt.is_join
        assert stmt.tables == ("Processor",)

    def test_comma_list(self):
        stmt = parse_select("SELECT * FROM Processor, MainMemory, Host")
        assert stmt.is_join
        assert stmt.tables == ("Processor", "MainMemory", "Host")

    def test_render_round_trip(self):
        stmt = parse_select("SELECT HostName FROM Processor, MainMemory WHERE CPUCount > 1")
        again = parse_select(render_select(stmt))
        assert again.tables == stmt.tables


class TestNaturalJoin:
    LEFT = (["k", "a"], [{"k": 1, "a": "x"}, {"k": 2, "a": "y"}])
    RIGHT = (["k", "b"], [{"k": 1, "b": 10.0}, {"k": 3, "b": 30.0}])

    def test_inner_join_on_shared_column(self):
        columns, rows = natural_join([self.LEFT, self.RIGHT])
        assert columns == ["k", "a", "b"]
        assert rows == [{"k": 1, "a": "x", "b": 10.0}]

    def test_explicit_keys(self):
        left = (["k", "t"], [{"k": 1, "t": 5.0}])
        right = (["k", "t", "b"], [{"k": 1, "t": 9.0, "b": 2}])
        # Joining on all shared columns (k, t) matches nothing...
        assert natural_join([left, right])[1] == []
        # ...but on the identity key alone it matches; left's t wins.
        columns, rows = natural_join([left, right], key_columns=["k"])
        assert rows == [{"k": 1, "t": 5.0, "b": 2}]

    def test_multiplicity(self):
        right = (["k", "b"], [{"k": 1, "b": 1}, {"k": 1, "b": 2}])
        _, rows = natural_join([self.LEFT, right])
        assert len(rows) == 2

    def test_no_shared_columns_rejected(self):
        with pytest.raises(SqlExecutionError):
            natural_join([(["a"], []), (["b"], [])])

    def test_empty_input(self):
        assert natural_join([]) == ([], [])

    def test_three_way(self):
        third = (["k", "c"], [{"k": 1, "c": True}])
        columns, rows = natural_join([self.LEFT, self.RIGHT, third])
        assert columns == ["k", "a", "b", "c"]
        assert rows == [{"k": 1, "a": "x", "b": 10.0, "c": True}]


class TestDatabaseJoin:
    def test_join_in_database(self):
        from repro.sql.database import Database

        db = Database()
        db.execute("CREATE TABLE p (host TEXT, cpus INTEGER)")
        db.execute("CREATE TABLE m (host TEXT, ram REAL)")
        db.execute("INSERT INTO p (host, cpus) VALUES ('a', 2), ('b', 4)")
        db.execute("INSERT INTO m (host, ram) VALUES ('a', 512.0)")
        result = db.query("SELECT host, cpus, ram FROM p, m")
        assert result.rows == [["a", 2, 512.0]]


class TestGatewayJoin:
    def test_join_across_groups_single_source(self, site):
        result = site.gateway.query(
            site.url_for("ganglia"),
            "SELECT HostName, CPUCount, RAMSizeMB FROM Processor, MainMemory "
            "ORDER BY HostName",
        )
        assert len(result.rows) == 3
        for row in result.dicts():
            assert row["CPUCount"] is not None
            assert row["RAMSizeMB"] is not None

    def test_join_across_groups_multi_source(self, site):
        urls = [u for u in site.source_urls if u.startswith("jdbc:snmp")]
        result = site.gateway.query(
            urls,
            "SELECT HostName, LoadAverage1Min, RAMAvailableMB "
            "FROM Processor, MainMemory",
        )
        assert len(result.rows) == 3
        assert result.ok_sources == 6  # 3 sources x 2 group sub-queries

    def test_where_spans_groups(self, site):
        result = site.gateway.query(
            site.url_for("ganglia"),
            "SELECT HostName FROM Processor, MainMemory "
            "WHERE RAMSizeMB > 0 AND CPUCount >= 1",
        )
        assert len(result.rows) == 3

    def test_aggregate_over_join(self, site):
        result = site.gateway.query(
            site.url_for("ganglia"),
            "SELECT COUNT(*), MAX(RAMSizeMB) FROM Processor, MainMemory",
        )
        assert result.rows[0][0] == 3

    def test_driver_rejects_join_directly(self, site):
        driver = site.gateway.driver_manager.driver_by_name("JDBC-SNMP")
        conn = driver.connect(site.url_for("snmp"))
        with pytest.raises(SQLException):
            conn.create_statement().execute_query(
                "SELECT * FROM Processor, MainMemory"
            )

    def test_join_with_unserved_group_degrades(self, site):
        """A group no source serves contributes nothing to the join."""
        result = site.gateway.query(
            site.url_for("snmp"),
            "SELECT HostName FROM Processor, Job",
        )
        assert result.rows == []
        assert result.failed_sources >= 1

    def test_history_join(self, site):
        gw = site.gateway
        url = site.url_for("snmp")
        gw.query(url, "SELECT * FROM Processor")
        gw.query(url, "SELECT * FROM MainMemory")
        result = gw.query(
            url,
            "SELECT HostName, LoadAverage1Min, RAMSizeMB FROM Processor, MainMemory",
            mode=QueryMode.HISTORY,
        )
        assert len(result.rows) == 1

    def test_fgsl_checks_every_group(self, site):
        from repro.core.security import AccessRule, Principal, SecurityError

        gw = site.gateway
        gw.fgsl.enabled = True
        gw.cgsl.enabled = True
        gw.fgsl.add_rule(
            AccessRule(allow=False, who="role:student", group_pattern="MainMemory")
        )
        eve = Principal.with_roles("eve", "student")
        with pytest.raises(SecurityError):
            gw.query(
                site.url_for("snmp"),
                "SELECT HostName FROM Processor, MainMemory",
                principal=eve,
            )
