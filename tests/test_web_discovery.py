"""Unit tests for network-scan data-source discovery (paper §4)."""

import pytest

from repro.core.gateway import Gateway
from repro.web.discovery import discover_sources
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def rig():
    clock = VirtualClock()
    network = Network(clock, seed=51)
    site = build_site(network, name="disco", n_hosts=3, agents=("snmp", "ganglia"), seed=3)
    clock.advance(10.0)
    return network, site


class TestDiscovery:
    def test_blank_gateway_discovers_site_agents(self, rig):
        network, site = rig
        blank = Gateway(network, "blank-gw", site="disco")
        hits = discover_sources(blank, add=False)
        protocols = {h.protocol for h in hits}
        assert protocols == {"snmp", "ganglia"}
        snmp_hosts = {h.host for h in hits if h.protocol == "snmp"}
        assert snmp_hosts == set(site.host_names())

    def test_add_registers_sources(self, rig):
        network, site = rig
        blank = Gateway(network, "blank-gw", site="disco")
        hits = discover_sources(blank, add=True)
        assert len(blank.sources()) == len(hits)

    def test_explicit_host_range(self, rig):
        network, site = rig
        blank = Gateway(network, "blank-gw", site="disco")
        one = site.host_names()[0]
        hits = discover_sources(blank, hosts=[one], add=False)
        assert all(h.host == one for h in hits)

    def test_down_host_skipped_without_error(self, rig):
        network, site = rig
        blank = Gateway(network, "blank-gw", site="disco")
        network.set_host_up(site.host_names()[1], False)
        hits = discover_sources(blank, add=False)
        assert site.host_names()[1] not in {h.host for h in hits}

    def test_gateway_itself_not_scanned(self, rig):
        network, site = rig
        blank = Gateway(network, "blank-gw", site="disco")
        hits = discover_sources(blank, add=False)
        assert "blank-gw" not in {h.host for h in hits}

    def test_discovered_urls_are_queryable(self, rig):
        network, site = rig
        blank = Gateway(network, "blank-gw", site="disco")
        hits = discover_sources(blank, add=True)
        snmp_hit = next(h for h in hits if h.protocol == "snmp")
        result = blank.query(snmp_hit.url, "SELECT HostName FROM Host")
        assert result.ok_sources == 1
