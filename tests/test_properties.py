"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.agents import snmp as wire
from repro.agents.host_model import HostSpec, SimulatedHost
from repro.agents.nws import ForecasterBank
from repro.dbapi.url import JdbcUrl
from repro.glue.mapping import convert_unit, _UNIT_FACTORS
from repro.simnet.clock import VirtualClock
from repro.sql.executor import execute_select
from repro.sql.parser import parse_select
from repro.sql.render import render_select

# ----------------------------------------------------------------------
# SNMP codec
# ----------------------------------------------------------------------
oids = st.tuples(
    st.integers(0, 2),
    st.integers(0, 39),
).flatmap(
    lambda head: st.lists(st.integers(0, 2**28), min_size=0, max_size=12).map(
        lambda tail: head + tuple(tail)
    )
)

snmp_values = st.one_of(
    st.none(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.text(max_size=64),
)


@given(value=st.integers(min_value=-(2**63) + 1, max_value=2**63 - 1))
def test_snmp_integer_round_trip(value):
    data = wire.encode_integer(value)
    tag, payload, end = wire._read_tlv(data, 0)
    assert wire.decode_value(tag, payload) == value
    assert end == len(data)


@given(oid=oids)
def test_snmp_oid_round_trip(oid):
    data = wire.encode_oid(oid)
    tag, payload, _ = wire._read_tlv(data, 0)
    assert wire.decode_value(tag, payload) == oid


@given(
    community=st.text(max_size=32),
    request_id=st.integers(0, 2**31 - 1),
    pdu=st.sampled_from([wire.TAG_GET, wire.TAG_GETNEXT, wire.TAG_RESPONSE, wire.TAG_SET, wire.TAG_TRAP]),
    varbinds=st.lists(st.tuples(oids, snmp_values), max_size=6),
)
def test_snmp_message_round_trip(community, request_id, pdu, varbinds):
    msg = wire.SnmpMessage(
        version=0,
        community=community,
        pdu_type=pdu,
        request_id=request_id,
        error_status=0,
        error_index=0,
        varbinds=tuple(wire.VarBind(o, v) for o, v in varbinds),
    )
    assert wire.SnmpMessage.decode(msg.encode()) == msg


@given(data=st.binary(max_size=128))
def test_snmp_decoder_never_crashes_on_garbage(data):
    try:
        wire.SnmpMessage.decode(data)
    except wire.SnmpCodecError:
        pass  # rejecting is fine; crashing is not


# ----------------------------------------------------------------------
# SQL engine
# ----------------------------------------------------------------------
rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "a": st.one_of(st.none(), st.integers(-100, 100)),
            "b": st.text(alphabet="xyz", max_size=3),
            "c": st.floats(allow_nan=False, allow_infinity=False, width=32),
        }
    ),
    max_size=20,
)


@given(rows=rows_strategy, threshold=st.integers(-100, 100))
def test_sql_where_partition(rows, threshold):
    """WHERE p and WHERE NOT p partition the non-NULL rows."""
    cols = ["a", "b", "c"]
    pos = execute_select(parse_select(f"SELECT * FROM t WHERE a > {threshold}"), cols, rows)
    neg = execute_select(
        parse_select(f"SELECT * FROM t WHERE NOT (a > {threshold})"), cols, rows
    )
    nulls = sum(1 for r in rows if r["a"] is None)
    assert len(pos) + len(neg) + nulls == len(rows)


@given(rows=rows_strategy)
def test_sql_count_star_matches_len(rows):
    result = execute_select(parse_select("SELECT COUNT(*) FROM t"), ["a", "b", "c"], rows)
    assert result.rows == [[len(rows)]]


@given(rows=rows_strategy, limit=st.integers(0, 30))
def test_sql_limit_bounds_output(rows, limit):
    result = execute_select(
        parse_select(f"SELECT * FROM t LIMIT {limit}"), ["a", "b", "c"], rows
    )
    assert len(result) == min(limit, len(rows))


@given(rows=rows_strategy)
def test_sql_order_by_sorted(rows):
    result = execute_select(
        parse_select("SELECT a FROM t WHERE a IS NOT NULL ORDER BY a"),
        ["a", "b", "c"],
        rows,
    )
    values = [r[0] for r in result.rows]
    assert values == sorted(values)


@given(rows=rows_strategy)
def test_sql_distinct_no_duplicates(rows):
    result = execute_select(
        parse_select("SELECT DISTINCT b FROM t"), ["a", "b", "c"], rows
    )
    values = [r[0] for r in result.rows]
    assert len(values) == len(set(values))
    assert set(values) == {r["b"] for r in rows}


@given(
    rows=rows_strategy,
    where=st.sampled_from(
        [
            "",
            "WHERE a > 0",
            "WHERE a IS NULL",
            "WHERE b LIKE 'x%'",
            "WHERE a BETWEEN -10 AND 10",
            "WHERE a IN (1, 2, 3) OR b = 'y'",
        ]
    ),
)
def test_sql_render_parse_fixpoint(rows, where):
    """render(parse(q)) executes identically to q."""
    sql = f"SELECT a, b FROM t {where}"
    stmt = parse_select(sql)
    stmt2 = parse_select(render_select(stmt))
    cols = ["a", "b", "c"]
    assert execute_select(stmt, cols, rows).rows == execute_select(stmt2, cols, rows).rows


@given(rows=rows_strategy)
def test_sql_group_by_partitions_rows(rows):
    """GROUP BY counts sum to the input size (groups partition rows)."""
    result = execute_select(
        parse_select("SELECT b, COUNT(*) AS n FROM t GROUP BY b"),
        ["a", "b", "c"],
        rows,
    )
    assert sum(r[1] for r in result.rows) == len(rows)
    assert len(result.rows) == len({r["b"] for r in rows})


# ----------------------------------------------------------------------
# Grammar-level parse/render fixpoint
# ----------------------------------------------------------------------
from repro.sql import ast_nodes as A

_literals = st.one_of(
    st.integers(0, 10_000).map(A.Literal),
    st.floats(0.0, 1e6, allow_nan=False).map(A.Literal),
    st.text(alphabet="abc x'%_", max_size=6).map(A.Literal),
    st.sampled_from([A.Literal(None), A.Literal(True), A.Literal(False)]),
)
from repro.sql.lexer import KEYWORDS as _KW

_names = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,10}", fullmatch=True).filter(
    lambda n: n.upper() not in _KW
)
_columns = _names.map(lambda n: A.Column(name=n))
_atoms = st.one_of(_literals, _columns)


def _exprs(depth: int):
    if depth <= 0:
        return _atoms
    sub = _exprs(depth - 1)
    return st.one_of(
        _atoms,
        st.tuples(st.sampled_from(["=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "AND", "OR", "LIKE"]), sub, sub).map(
            lambda t: A.BinOp(op=t[0], left=t[1], right=t[2])
        ),
        sub.map(lambda e: A.UnaryOp(op="NOT", operand=e)),
        st.tuples(sub, st.lists(_atoms, min_size=1, max_size=3), st.booleans()).map(
            lambda t: A.InList(expr=t[0], items=tuple(t[1]), negated=t[2])
        ),
        st.tuples(sub, _atoms, _atoms, st.booleans()).map(
            lambda t: A.Between(expr=t[0], low=t[1], high=t[2], negated=t[3])
        ),
        st.tuples(sub, st.booleans()).map(
            lambda t: A.IsNull(expr=t[0], negated=t[1])
        ),
    )


_selects = st.builds(
    A.Select,
    items=st.lists(
        st.builds(
            A.SelectItem,
            expr=_exprs(2),
            alias=st.one_of(st.none(), st.just("a1")),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
    table=_names,
    where=st.one_of(st.none(), _exprs(2)),
    order_by=st.lists(
        st.builds(A.OrderItem, expr=_columns, descending=st.booleans()),
        max_size=2,
    ).map(tuple),
    limit=st.one_of(st.none(), st.integers(0, 100)),
    distinct=st.booleans(),
)


@settings(max_examples=150)
@given(stmt=_selects)
def test_parse_render_ast_fixpoint(stmt):
    """parse(render(ast)) == ast for canonically constructed SELECT ASTs."""
    from repro.sql.parser import parse_select
    from repro.sql.render import render_select

    text = render_select(stmt)
    reparsed = parse_select(text)
    assert reparsed == stmt, text


# ----------------------------------------------------------------------
# GLUE renderings
# ----------------------------------------------------------------------
_proc_group = __import__(
    "repro.glue.schema", fromlist=["STANDARD_SCHEMA"]
).STANDARD_SCHEMA.group("Processor")

glue_rows = st.lists(
    st.fixed_dictionaries(
        {
            "HostName": st.from_regex(r"[a-z][a-z0-9-]{0,12}", fullmatch=True),
            "SiteName": st.one_of(st.none(), st.just("site-x")),
            "Timestamp": st.floats(0, 1e6, allow_nan=False),
            "CPUCount": st.one_of(st.none(), st.integers(1, 1024)),
            "LoadAverage1Min": st.one_of(
                st.none(), st.floats(0, 1e3, allow_nan=False, width=32)
            ),
            "Vendor": st.one_of(st.none(), st.text(alphabet="ab<&>'\" ", max_size=8)),
        }
    ).map(
        lambda partial: {
            **{f.name: None for f in _proc_group.fields},
            **partial,
        }
    ),
    max_size=6,
)


@given(rows=glue_rows)
def test_glue_xml_round_trip(rows):
    from repro.glue.render import rows_to_xml, xml_to_rows

    back = xml_to_rows(_proc_group, rows_to_xml(_proc_group, rows))
    assert len(back) == len(rows)
    for original, parsed in zip(rows, back):
        assert parsed["HostName"] == original["HostName"]
        assert parsed["CPUCount"] == original["CPUCount"]
        if original["LoadAverage1Min"] is not None:
            assert parsed["LoadAverage1Min"] == pytest.approx(
                original["LoadAverage1Min"], rel=1e-6
            )


@given(rows=glue_rows)
def test_glue_ldif_round_trip_structure(rows):
    from repro.glue.render import ldif_to_rows, rows_to_ldif

    # LDIF is line-oriented: values with newlines are out of scope, and
    # text round-trips only for single-line values — which GLUE's are.
    assume(all("\n" not in (r["Vendor"] or "") for r in rows))
    back = ldif_to_rows(_proc_group, rows_to_ldif(_proc_group, rows))
    assert len(back) == len(rows)
    for original, parsed in zip(rows, back):
        assert parsed["CPUCount"] == original["CPUCount"]


# ----------------------------------------------------------------------
# Cache key normalisation
# ----------------------------------------------------------------------
@given(sql=st.text(alphabet=" \t\nSELECTfromwhere*xy=1;", max_size=60))
def test_normalise_sql_idempotent(sql):
    from repro.core.cache import normalise_sql

    once = normalise_sql(sql)
    assert normalise_sql(once) == once


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
@given(
    value=st.floats(min_value=1e-6, max_value=1e12, allow_nan=False),
    pair=st.sampled_from(sorted({(a, b) for (a, b) in _UNIT_FACTORS if (b, a) in _UNIT_FACTORS})),
)
def test_unit_conversion_round_trip(value, pair):
    a, b = pair
    assert convert_unit(convert_unit(value, a, b), b, a) == pytest.approx(value, rel=1e-9)


# ----------------------------------------------------------------------
# JDBC URLs
# ----------------------------------------------------------------------
hostnames = st.from_regex(r"[a-z][a-z0-9-]{0,20}(\.[a-z]{2,5})?", fullmatch=True)
protocols = st.one_of(st.just(""), st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True))


@given(
    protocol=protocols,
    host=hostnames,
    port=st.one_of(st.none(), st.integers(1, 65535)),
    path=st.from_regex(r"[a-zA-Z0-9/_-]{0,16}", fullmatch=True),
)
def test_jdbc_url_round_trip(protocol, host, port, path):
    url = JdbcUrl(protocol=protocol, host=host, port=port, path=path.lstrip("/"))
    assert JdbcUrl.parse(str(url)) == url


# ----------------------------------------------------------------------
# Forecaster bank
# ----------------------------------------------------------------------
@given(series=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=3, max_size=120))
def test_bank_selected_mae_is_minimum(series):
    bank = ForecasterBank()
    for v in series:
        bank.observe(v)
    fc = bank.forecast()
    maes = [bank.mae(i) for i in range(len(bank.forecasters))]
    real = [m for m in maes if m is not None]
    if real and fc.mae is not None:
        assert fc.mae == pytest.approx(min(real))


@given(series=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=60))
def test_bank_forecast_within_observed_range(series):
    """Every predictor interpolates history, so the forecast cannot leave
    the observed envelope."""
    bank = ForecasterBank()
    for v in series:
        bank.observe(v)
    fc = bank.forecast()
    if fc.value is not None:
        assert min(series) - 1e-9 <= fc.value <= max(series) + 1e-9


# ----------------------------------------------------------------------
# Host model
# ----------------------------------------------------------------------
@settings(max_examples=25)
@given(
    name=st.from_regex(r"[a-z]{1,8}", fullmatch=True),
    seed=st.integers(0, 2**31),
    t=st.floats(0.0, 1e6, allow_nan=False),
)
def test_host_model_invariants_hold_everywhere(name, seed, t):
    host = SimulatedHost(HostSpec.generate(name, "s", seed), VirtualClock())
    snap = host.snapshot(t)
    assert 0.0 <= snap["cpu"]["utilization"] <= 100.0
    assert snap["cpu"]["load_1"] >= 0.0
    assert 0.0 <= snap["memory"]["ram_free_mb"] <= snap["memory"]["ram_total_mb"]
    for fs in snap["filesystems"]:
        assert 0.0 <= fs["avail_mb"] <= fs["size_mb"]


@settings(max_examples=25)
@given(seed=st.integers(0, 2**31), t1=st.floats(0, 1e5), t2=st.floats(0, 1e5))
def test_host_network_counters_monotone(seed, t1, t2):
    assume(t1 <= t2)
    host = SimulatedHost(HostSpec.generate("m", "s", seed), VirtualClock())
    n1, n2 = host.snapshot(t1)["network"], host.snapshot(t2)["network"]
    assert n1["bytes_rx"] <= n2["bytes_rx"]
    assert n1["bytes_tx"] <= n2["bytes_tx"]


# ----------------------------------------------------------------------
# Virtual clock
# ----------------------------------------------------------------------
@given(deltas=st.lists(st.floats(0.0, 1e4, allow_nan=False), max_size=30))
def test_clock_monotone_under_any_advances(deltas):
    clock = VirtualClock()
    last = clock.now()
    for d in deltas:
        clock.advance(d)
        assert clock.now() >= last
        last = clock.now()


@given(
    delays=st.lists(st.floats(0.01, 100.0, allow_nan=False), min_size=1, max_size=20)
)
def test_scheduled_callbacks_fire_in_order(delays):
    clock = VirtualClock()
    fired = []
    for d in delays:
        clock.call_later(d, lambda d=d: fired.append(d))
    clock.advance(101.0)
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ----------------------------------------------------------------------
# Metrics registry (obs)
# ----------------------------------------------------------------------
from repro.obs.metrics import Counter, Histogram  # noqa: E402

hist_samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


def _hist(samples):
    h = Histogram("h")
    for v in samples:
        h.record(v)
    return h


@given(samples=hist_samples)
def test_histogram_quantiles_bounded_and_ordered(samples):
    """min <= p50 <= p95 <= p99 <= max, and quantile(100) is exact."""
    h = _hist(samples)
    assert min(samples) <= h.p50 <= h.p95 <= h.p99 <= max(samples)
    assert h.quantile(100) == max(samples)
    assert h.count == len(samples)
    assert math.isclose(h.mean, sum(samples) / len(samples), rel_tol=1e-9)


@given(samples=hist_samples)
def test_histogram_quantile_relative_error_bound(samples):
    """A reported quantile sits within one bucket (growth factor) of a
    true sample value, so the overestimate is bounded by the geometry."""
    h = _hist(samples)
    true_sorted = sorted(samples)
    for q in (50, 95, 99):
        rank = max(1, math.ceil(len(samples) * q / 100))
        true = true_sorted[rank - 1]
        estimate = h.quantile(q)
        if true > 0:
            assert estimate <= true * (2.0 ** 0.25) + 1e-9
        assert estimate >= 0.0


@given(a=hist_samples, b=hist_samples, c=hist_samples)
def test_histogram_merge_associative(a, b, c):
    """(a | b) | c == a | (b | c) on every statistic — merging is exact
    bucket-wise addition."""
    left = _hist(a).merge(_hist(b)).merge(_hist(c))
    right = _hist(a).merge(_hist(b).merge(_hist(c)))
    assert left.count == right.count
    assert math.isclose(left.total, right.total, rel_tol=1e-9)
    assert left.min == right.min
    assert left.max == right.max
    for q in (1, 25, 50, 75, 90, 95, 99, 100):
        assert left.quantile(q) == right.quantile(q)


@given(a=hist_samples, b=hist_samples)
def test_histogram_merge_matches_union(a, b):
    """Merging equals recording the concatenated sample stream."""
    merged = _hist(a).merge(_hist(b))
    union = _hist(a + b)
    assert merged.count == union.count
    assert math.isclose(merged.total, union.total, rel_tol=1e-9)
    for q in (50, 95, 99):
        assert merged.quantile(q) == union.quantile(q)


@given(deltas=st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=50))
def test_counter_monotone_under_any_adds(deltas):
    c = Counter("c")
    last = c.value
    for d in deltas:
        c.add(d)
        assert c.value >= last
        last = c.value
    assert math.isclose(c.value, sum(deltas) or 0.0, rel_tol=1e-9, abs_tol=1e-12)


@given(delta=st.floats(max_value=-1e-9, min_value=-1e6, allow_nan=False))
def test_counter_refuses_negative_deltas(delta):
    c = Counter("c")
    c.inc()
    with pytest.raises(ValueError):
        c.add(delta)
    assert c.value == 1


# ----------------------------------------------------------------------
# Durable history: the acked-prefix equality under arbitrary workloads
# ----------------------------------------------------------------------
_ops = st.lists(
    st.one_of(
        # (record, load value, recorded_at)
        st.tuples(
            st.just("record"),
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(0.0, 1000.0, allow_nan=False),
        ),
        st.tuples(st.just("sync"), st.just(0.0), st.just(0.0)),
        st.tuples(st.just("checkpoint"), st.just(0.0), st.just(0.0)),
        st.tuples(st.just("trim"), st.just(0.0), st.floats(0.0, 1000.0, allow_nan=False)),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops, sync_interval=st.integers(1, 7), torn_seed=st.integers(0, 2**16))
def test_durable_history_recovers_acked_prefix(ops, sync_interval, torn_seed):
    """record/sync/checkpoint/trim in any order, then crash: the
    recovered engine serves exactly the acknowledged prefix."""
    import random as _random

    from repro.storage.engine import HistoryEngine
    from repro.storage.simdisk import SimDisk

    disk = SimDisk()
    engine = HistoryEngine(disk, sync_interval=sync_interval, max_rows_per_group=25)
    at = 0.0
    for op, load, stamp in ops:
        if op == "record":
            at = max(at, stamp)  # RecordedAt is monotone, as in the store
            engine.append_row("G", {"HostName": "n0", "Load": load, "RecordedAt": at})
        elif op == "sync":
            engine.sync()
        elif op == "checkpoint":
            engine.checkpoint()
        elif op == "trim":
            engine.append_trim(min(stamp, at))
    expected = [dict(r) for r in engine.acked_rows("G")]

    disk.crash(_random.Random(torn_seed))
    recovered = HistoryEngine(disk, sync_interval=sync_interval, max_rows_per_group=25)
    assert recovered.serving_rows("G") == expected
    # Recovery is idempotent: a second boot serves the same rows.
    again = HistoryEngine(disk, sync_interval=sync_interval, max_rows_per_group=25)
    assert again.serving_rows("G") == expected
