"""Unit tests for the GridRMDriverManager: selection, caching, failover."""

import pytest

from repro.agents.ganglia import GangliaAgent
from repro.agents.snmp import SnmpAgent
from repro.core.driver_manager import (
    GridRmDriverManager,
    driver_spec,
    load_driver,
)
from repro.core.errors import DataSourceError, NoSuitableDriverError
from repro.core.policy import FailureAction, GatewayPolicy
from repro.dbapi.registry import DriverRegistry
from repro.dbapi.url import JdbcUrl
from repro.drivers.ganglia_driver import GangliaDriver
from repro.drivers.snmp_driver import SnmpDriver


@pytest.fixture
def agents(network, hosts):
    return {
        "snmp": [SnmpAgent(h, network) for h in hosts],
        "ganglia": GangliaAgent("cl", hosts, network),
    }


def make_manager(network, policy=None, drivers=None):
    registry = DriverRegistry()
    manager = GridRmDriverManager(registry, policy or GatewayPolicy())
    for d in drivers if drivers is not None else [
        SnmpDriver(network, gateway_host="gateway"),
        GangliaDriver(network, gateway_host="gateway"),
    ]:
        manager.register(d)
    return manager


class TestRegistration:
    def test_register_persists_spec(self, network):
        manager = make_manager(network)
        specs = set(manager.persistent_store)
        assert any("SnmpDriver" in s for s in specs)

    def test_unregister_clears_persistence_and_cache(self, network, agents):
        manager = make_manager(network)
        conn = manager.open_connection("jdbc:snmp://n0/x")
        conn.close()
        snmp = manager.driver_by_name("JDBC-SNMP")
        assert manager.unregister(snmp)
        assert not any("SnmpDriver" in s for s in manager.persistent_store)
        assert manager.cached_driver(JdbcUrl.parse("jdbc:snmp://n0/x")) is None

    def test_driver_spec_and_load_round_trip(self, network):
        driver = SnmpDriver(network, gateway_host="gateway")
        spec = driver_spec(driver)
        loaded = load_driver(spec, network, gateway_host="gateway")
        assert type(loaded) is SnmpDriver

    def test_load_driver_bad_spec(self, network):
        with pytest.raises(NoSuitableDriverError):
            load_driver("nope", network, gateway_host="g")
        with pytest.raises(NoSuitableDriverError):
            load_driver("os:path", network, gateway_host="g")
        with pytest.raises(NoSuitableDriverError):
            load_driver("repro.drivers:missing", network, gateway_host="g")

    def test_restore_persisted(self, network):
        manager = make_manager(network)
        store = manager.persistent_store
        # A "restarted" manager with the same persistent store.
        fresh = GridRmDriverManager(DriverRegistry(), GatewayPolicy(), persistent_store=store)
        restored = fresh.restore_persisted(network, gateway_host="gateway")
        assert {type(d).__name__ for d in restored} == {"SnmpDriver", "GangliaDriver"}
        assert restored.skipped == []

    def test_restore_persisted_skips_malformed_specs(self, network):
        """One rotten store entry must not abort gateway start-up."""
        manager = make_manager(network)
        store = dict(manager.persistent_store)
        store["no.such.module:Driver"] = "JDBC-Ghost"
        store["garbage"] = "JDBC-Garbage"
        fresh = GridRmDriverManager(
            DriverRegistry(), GatewayPolicy(), persistent_store=store
        )
        report = fresh.restore_persisted(network, gateway_host="gateway")
        assert {type(d).__name__ for d in report.restored} == {
            "SnmpDriver",
            "GangliaDriver",
        }
        assert sorted(spec for spec, _ in report.skipped) == [
            "garbage",
            "no.such.module:Driver",
        ]
        for _, error in report.skipped:
            assert "NoSuitableDriverError" in error

    def test_restore_persisted_skip_names(self, network):
        manager = make_manager(network)
        fresh = GridRmDriverManager(
            DriverRegistry(),
            GatewayPolicy(),
            persistent_store=dict(manager.persistent_store),
        )
        report = fresh.restore_persisted(
            network, gateway_host="gateway", skip_names=["JDBC-SNMP"]
        )
        assert {type(d).__name__ for d in report.restored} == {"GangliaDriver"}
        assert report.skipped == []

    def test_gateway_startup_survives_poisoned_store(self, network):
        from repro.core.gateway import Gateway

        store = {
            "no.such.module:Driver": "JDBC-Ghost",
            "os:path": "JDBC-NotADriver",
        }
        gw = Gateway(network, "gw-poisoned", persistent_store=store)
        assert sorted(spec for spec, _ in gw.restore_skipped) == [
            "no.such.module:Driver",
            "os:path",
        ]
        # The default driver set registered fine despite the bad specs.
        assert "JDBC-SNMP" in gw.driver_manager.driver_names()


class TestSelection:
    def test_pinned_protocol_selects_matching_driver(self, network, agents):
        manager = make_manager(network)
        conn = manager.open_connection("jdbc:snmp://n1/x")
        assert conn.driver.name() == "JDBC-SNMP"

    def test_wildcard_dynamic_selection(self, network, agents):
        manager = make_manager(network)
        conn = manager.open_connection("jdbc://n0/x")
        assert conn.driver.name() == "JDBC-SNMP"  # first registered that probes ok
        assert manager.stats["dynamic_scans"] >= 1

    def test_last_driver_cached(self, network, agents):
        manager = make_manager(network)
        manager.open_connection("jdbc://n0/x").close()
        scans = manager.stats["dynamic_scans"]
        manager.open_connection("jdbc://n0/x").close()
        assert manager.stats["dynamic_scans"] == scans
        assert manager.stats["cache_hits"] == 1

    def test_cache_disabled_by_policy(self, network, agents):
        manager = make_manager(network, GatewayPolicy(driver_cache_enabled=False))
        manager.open_connection("jdbc://n0/x").close()
        manager.open_connection("jdbc://n0/x").close()
        assert manager.stats["cache_hits"] == 0
        assert manager.stats["dynamic_scans"] == 2

    def test_static_preference_order(self, network, agents, hosts):
        manager = make_manager(network)
        gmond_host = hosts[0].spec.name
        url = f"jdbc://{gmond_host}/x"
        manager.set_preference(url, ["JDBC-Ganglia", "JDBC-SNMP"])
        conn = manager.open_connection(url)
        assert conn.driver.name() == "JDBC-Ganglia"

    def test_clear_preference(self, network, agents, hosts):
        manager = make_manager(network)
        url = f"jdbc://{hosts[0].spec.name}/x"
        manager.set_preference(url, ["JDBC-Ganglia"])
        assert manager.clear_preference(url)
        conn = manager.open_connection(url)
        assert conn.driver.name() == "JDBC-SNMP"

    def test_no_driver_for_url(self, network, agents):
        manager = make_manager(network)
        with pytest.raises(NoSuitableDriverError):
            manager.open_connection("jdbc:zzz://n0/x")


class TestFailurePolicies:
    def test_report_raises_on_first_failure(self, network, agents):
        manager = make_manager(
            network, GatewayPolicy(failure_action=FailureAction.REPORT)
        )
        network.set_host_up("n0", False)
        with pytest.raises(DataSourceError):
            manager.open_connection("jdbc:snmp://n0/x")
        assert manager.stats["connect_failures"] == 1

    def test_retry_uses_budget(self, network, agents):
        manager = make_manager(
            network,
            GatewayPolicy(failure_action=FailureAction.RETRY, failure_retries=2),
        )
        network.set_host_up("n0", False)
        with pytest.raises(DataSourceError):
            manager.open_connection("jdbc:snmp://n0/x")
        assert manager.stats["connect_failures"] == 3  # 1 + 2 retries

    def test_dynamic_rescans_after_cached_driver_dies(self, network, agents, hosts):
        """The paper's scenario: cached driver invalid -> dynamic reselect."""
        gmond_host = hosts[0].spec.name
        manager = make_manager(
            network, GatewayPolicy(failure_action=FailureAction.DYNAMIC)
        )
        url = f"jdbc://{gmond_host}/x"
        first = manager.open_connection(url)
        assert first.driver.name() == "JDBC-SNMP"
        first.close()
        # Kill the SNMP agent but keep Ganglia alive on the same host.
        network.close(agents["snmp"][0].address)
        conn = manager.open_connection(url)
        assert conn.driver.name() == "JDBC-Ganglia"
        assert manager.stats["failovers"] >= 1

    def test_try_next_walks_preferences(self, network, agents, hosts):
        gmond_host = hosts[0].spec.name
        manager = make_manager(
            network, GatewayPolicy(failure_action=FailureAction.TRY_NEXT)
        )
        url = f"jdbc://{gmond_host}/x"
        manager.set_preference(url, ["JDBC-SNMP", "JDBC-Ganglia"])
        network.close(agents["snmp"][0].address)
        conn = manager.open_connection(url)
        assert conn.driver.name() == "JDBC-Ganglia"

    def test_all_failed_raises_with_policy_name(self, network, agents):
        manager = make_manager(network)
        network.set_host_up("n2", False)
        with pytest.raises(DataSourceError) as err:
            manager.open_connection("jdbc:snmp://n2/x")
        assert "dynamic" in str(err.value)


class TestBreakerShortCircuit:
    URL = "jdbc:snmp://n0/x"

    def make_health_manager(self, network, **policy_kwargs):
        from repro.core.health import HealthTracker

        policy = GatewayPolicy(
            failure_action=FailureAction.RETRY,
            failure_retries=2,
            breaker_failure_threshold=2,
            breaker_base_backoff=30.0,
            breaker_max_backoff=60.0,
            **policy_kwargs,
        )
        health = HealthTracker(network.clock, policy)
        manager = make_manager(network, policy)
        manager.health = health
        return manager, health

    def test_open_breaker_skips_retry_budget(self, network, agents):
        """An OPEN breaker short-circuits before RETRY spends a single
        connect attempt — the whole point of remembering failures."""
        from repro.core.errors import SourceQuarantinedError
        from repro.core.health import BreakerState

        manager, health = self.make_health_manager(network)
        network.set_host_up("n0", False)
        for _ in range(2):
            with pytest.raises(DataSourceError):
                manager.open_connection(self.URL)
        assert health.state(self.URL) is BreakerState.OPEN
        failures = manager.stats["connect_failures"]
        assert failures == 6  # 2 queries x (1 + 2 retries)

        with pytest.raises(SourceQuarantinedError):
            manager.open_connection(self.URL)
        assert manager.stats["connect_failures"] == failures  # no budget spent
        assert manager.stats["breaker_fast_fails"] == 1

    def test_half_open_probe_success_restores_cached_driver_path(
        self, network, agents
    ):
        from repro.core.health import BreakerState

        manager, health = self.make_health_manager(network)
        url = JdbcUrl.parse(self.URL)
        manager.open_connection(url).close()  # populate the driver cache
        network.set_host_up("n0", False)
        for _ in range(2):
            with pytest.raises(DataSourceError):
                manager.open_connection(url)
        assert health.state(self.URL) is BreakerState.OPEN

        network.set_host_up("n0", True)
        network.clock.advance(60.0)  # past the max (jitter-capped) backoff
        conn = manager.open_connection(url)  # the HALF_OPEN probe
        assert not conn.is_closed()
        assert health.state(self.URL) is BreakerState.CLOSED
        assert manager.cached_driver(url) is conn.driver
        # Subsequent opens ride the last-driver cache again, no rescans.
        scans = manager.stats["dynamic_scans"]
        manager.open_connection(url).close()
        assert manager.stats["dynamic_scans"] == scans
        assert manager.stats["cache_hits"] >= 1
