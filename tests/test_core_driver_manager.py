"""Unit tests for the GridRMDriverManager: selection, caching, failover."""

import pytest

from repro.agents.ganglia import GangliaAgent
from repro.agents.snmp import SnmpAgent
from repro.core.driver_manager import (
    GridRmDriverManager,
    driver_spec,
    load_driver,
)
from repro.core.errors import DataSourceError, NoSuitableDriverError
from repro.core.policy import FailureAction, GatewayPolicy
from repro.dbapi.registry import DriverRegistry
from repro.dbapi.url import JdbcUrl
from repro.drivers.ganglia_driver import GangliaDriver
from repro.drivers.snmp_driver import SnmpDriver


@pytest.fixture
def agents(network, hosts):
    return {
        "snmp": [SnmpAgent(h, network) for h in hosts],
        "ganglia": GangliaAgent("cl", hosts, network),
    }


def make_manager(network, policy=None, drivers=None):
    registry = DriverRegistry()
    manager = GridRmDriverManager(registry, policy or GatewayPolicy())
    for d in drivers if drivers is not None else [
        SnmpDriver(network, gateway_host="gateway"),
        GangliaDriver(network, gateway_host="gateway"),
    ]:
        manager.register(d)
    return manager


class TestRegistration:
    def test_register_persists_spec(self, network):
        manager = make_manager(network)
        specs = set(manager.persistent_store)
        assert any("SnmpDriver" in s for s in specs)

    def test_unregister_clears_persistence_and_cache(self, network, agents):
        manager = make_manager(network)
        conn = manager.open_connection("jdbc:snmp://n0/x")
        conn.close()
        snmp = manager.driver_by_name("JDBC-SNMP")
        assert manager.unregister(snmp)
        assert not any("SnmpDriver" in s for s in manager.persistent_store)
        assert manager.cached_driver(JdbcUrl.parse("jdbc:snmp://n0/x")) is None

    def test_driver_spec_and_load_round_trip(self, network):
        driver = SnmpDriver(network, gateway_host="gateway")
        spec = driver_spec(driver)
        loaded = load_driver(spec, network, gateway_host="gateway")
        assert type(loaded) is SnmpDriver

    def test_load_driver_bad_spec(self, network):
        with pytest.raises(NoSuitableDriverError):
            load_driver("nope", network, gateway_host="g")
        with pytest.raises(NoSuitableDriverError):
            load_driver("os:path", network, gateway_host="g")
        with pytest.raises(NoSuitableDriverError):
            load_driver("repro.drivers:missing", network, gateway_host="g")

    def test_restore_persisted(self, network):
        manager = make_manager(network)
        store = manager.persistent_store
        # A "restarted" manager with the same persistent store.
        fresh = GridRmDriverManager(DriverRegistry(), GatewayPolicy(), persistent_store=store)
        restored = fresh.restore_persisted(network, gateway_host="gateway")
        assert {type(d).__name__ for d in restored} == {"SnmpDriver", "GangliaDriver"}


class TestSelection:
    def test_pinned_protocol_selects_matching_driver(self, network, agents):
        manager = make_manager(network)
        conn = manager.open_connection("jdbc:snmp://n1/x")
        assert conn.driver.name() == "JDBC-SNMP"

    def test_wildcard_dynamic_selection(self, network, agents):
        manager = make_manager(network)
        conn = manager.open_connection("jdbc://n0/x")
        assert conn.driver.name() == "JDBC-SNMP"  # first registered that probes ok
        assert manager.stats["dynamic_scans"] >= 1

    def test_last_driver_cached(self, network, agents):
        manager = make_manager(network)
        manager.open_connection("jdbc://n0/x").close()
        scans = manager.stats["dynamic_scans"]
        manager.open_connection("jdbc://n0/x").close()
        assert manager.stats["dynamic_scans"] == scans
        assert manager.stats["cache_hits"] == 1

    def test_cache_disabled_by_policy(self, network, agents):
        manager = make_manager(network, GatewayPolicy(driver_cache_enabled=False))
        manager.open_connection("jdbc://n0/x").close()
        manager.open_connection("jdbc://n0/x").close()
        assert manager.stats["cache_hits"] == 0
        assert manager.stats["dynamic_scans"] == 2

    def test_static_preference_order(self, network, agents, hosts):
        manager = make_manager(network)
        gmond_host = hosts[0].spec.name
        url = f"jdbc://{gmond_host}/x"
        manager.set_preference(url, ["JDBC-Ganglia", "JDBC-SNMP"])
        conn = manager.open_connection(url)
        assert conn.driver.name() == "JDBC-Ganglia"

    def test_clear_preference(self, network, agents, hosts):
        manager = make_manager(network)
        url = f"jdbc://{hosts[0].spec.name}/x"
        manager.set_preference(url, ["JDBC-Ganglia"])
        assert manager.clear_preference(url)
        conn = manager.open_connection(url)
        assert conn.driver.name() == "JDBC-SNMP"

    def test_no_driver_for_url(self, network, agents):
        manager = make_manager(network)
        with pytest.raises(NoSuitableDriverError):
            manager.open_connection("jdbc:zzz://n0/x")


class TestFailurePolicies:
    def test_report_raises_on_first_failure(self, network, agents):
        manager = make_manager(
            network, GatewayPolicy(failure_action=FailureAction.REPORT)
        )
        network.set_host_up("n0", False)
        with pytest.raises(DataSourceError):
            manager.open_connection("jdbc:snmp://n0/x")
        assert manager.stats["connect_failures"] == 1

    def test_retry_uses_budget(self, network, agents):
        manager = make_manager(
            network,
            GatewayPolicy(failure_action=FailureAction.RETRY, failure_retries=2),
        )
        network.set_host_up("n0", False)
        with pytest.raises(DataSourceError):
            manager.open_connection("jdbc:snmp://n0/x")
        assert manager.stats["connect_failures"] == 3  # 1 + 2 retries

    def test_dynamic_rescans_after_cached_driver_dies(self, network, agents, hosts):
        """The paper's scenario: cached driver invalid -> dynamic reselect."""
        gmond_host = hosts[0].spec.name
        manager = make_manager(
            network, GatewayPolicy(failure_action=FailureAction.DYNAMIC)
        )
        url = f"jdbc://{gmond_host}/x"
        first = manager.open_connection(url)
        assert first.driver.name() == "JDBC-SNMP"
        first.close()
        # Kill the SNMP agent but keep Ganglia alive on the same host.
        network.close(agents["snmp"][0].address)
        conn = manager.open_connection(url)
        assert conn.driver.name() == "JDBC-Ganglia"
        assert manager.stats["failovers"] >= 1

    def test_try_next_walks_preferences(self, network, agents, hosts):
        gmond_host = hosts[0].spec.name
        manager = make_manager(
            network, GatewayPolicy(failure_action=FailureAction.TRY_NEXT)
        )
        url = f"jdbc://{gmond_host}/x"
        manager.set_preference(url, ["JDBC-SNMP", "JDBC-Ganglia"])
        network.close(agents["snmp"][0].address)
        conn = manager.open_connection(url)
        assert conn.driver.name() == "JDBC-Ganglia"

    def test_all_failed_raises_with_policy_name(self, network, agents):
        manager = make_manager(network)
        network.set_host_up("n2", False)
        with pytest.raises(DataSourceError) as err:
            manager.open_connection("jdbc:snmp://n2/x")
        assert "dynamic" in str(err.value)
