"""Unit tests for segments, checkpoints, recovery and the engine
(repro.storage.segments / checkpoint / recovery / engine)."""

import random

import pytest

from repro.simnet.clock import VirtualClock
from repro.storage.checkpoint import CURRENT_PATH, current_manifest
from repro.storage.engine import HistoryEngine
from repro.storage.recovery import (
    RULE_SEGMENT_QUARANTINED,
    RULE_WAL_TAIL_TRUNCATED,
    recover_state,
)
from repro.storage.segments import load_segment, seal_segment, segment_path
from repro.storage.simdisk import SimDisk


def row(i, at=None, **extra):
    r = {"HostName": f"h{i % 3}", "RecordedAt": at, "Load": float(i)}
    r.update(extra)
    return r


class TestSegments:
    def test_seal_and_load_round_trip(self):
        disk = SimDisk()
        rows = [row(i, at=10.0 + i) for i in range(5)]
        seg = seal_segment(disk, "Processor", 1, rows)
        assert seg.path == segment_path("Processor", 1)
        assert seg.min_at == 10.0
        assert seg.max_at == 14.0
        loaded = load_segment(disk, seg.path)
        assert loaded.rows == rows
        assert loaded.group == "Processor"
        assert loaded.seq == 1

    def test_seal_is_durable_without_explicit_fsync(self):
        disk = SimDisk()
        seal_segment(disk, "G", 1, [row(0)])
        disk.crash(None)
        assert load_segment(disk, segment_path("G", 1)).row_count == 1

    def test_none_recorded_at_excluded_from_bounds(self):
        disk = SimDisk()
        seg = seal_segment(disk, "G", 1, [row(0, at=None), row(1, at=5.0)])
        assert seg.min_at == 5.0
        assert seg.max_at == 5.0
        seg2 = seal_segment(disk, "G", 2, [row(0, at=None)])
        assert seg2.min_at is None
        assert seg2.max_at is None


class TestEngineBasics:
    def test_fresh_disk_boots_clean(self):
        engine = HistoryEngine(SimDisk(), sync_interval=2)
        assert engine.recovery_report.clean
        assert engine.groups() == []

    def test_append_checkpoint_recover_round_trip(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=2)
        rows = [row(i, at=float(i)) for i in range(6)]
        for r in rows:
            engine.append_row("Processor", r)
        engine.checkpoint()
        successor = HistoryEngine(disk, sync_interval=2)
        assert successor.recovery_report.clean
        assert successor.serving_rows("Processor") == rows

    def test_crash_keeps_exactly_the_acked_prefix(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=4)
        for i in range(10):  # synced through lsn 8, rows 8..9 unacked
            engine.append_row("G", row(i, at=float(i)))
        expected = [dict(r) for r in engine.acked_rows("G")]
        assert len(expected) == 8
        disk.crash(None)
        successor = HistoryEngine(disk, sync_interval=4)
        assert successor.serving_rows("G") == expected

    def test_torn_tail_truncated_with_finding(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=2)
        for i in range(5):
            engine.append_row("G", row(i, at=float(i)))
        acked = [dict(r) for r in engine.acked_rows("G")]
        disk.crash(random.Random(3))  # may tear the in-flight record
        successor = HistoryEngine(disk, sync_interval=2)
        assert successor.serving_rows("G") == acked
        if successor.recovery_report.wal_tail != "clean":
            assert any(
                f.rule_id == RULE_WAL_TAIL_TRUNCATED
                for f in successor.recovery_report.findings
            )

    def test_bit_flip_quarantines_segment_and_keeps_serving(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=1)
        engine.append_row("G", row(0, at=1.0))
        engine.checkpoint()
        engine.append_row("G", row(1, at=2.0))
        engine.checkpoint()
        victim = engine.segments["G"][0].path
        disk.flip_bit(victim, rng=random.Random(0))
        successor = HistoryEngine(disk, sync_interval=1)
        report = successor.recovery_report
        assert report.segments_quarantined == 1
        assert any(
            f.rule_id == RULE_SEGMENT_QUARANTINED for f in report.findings
        )
        # Degraded serving: the undamaged segment's row survives.
        assert [r["Load"] for r in successor.serving_rows("G")] == [1.0]
        # The damaged file moved into quarantine/, out of seg/.
        assert not disk.exists(victim)
        assert any(p.startswith("quarantine/") for p in disk.list())

    def test_recovery_is_deterministic(self):
        def build():
            disk = SimDisk()
            engine = HistoryEngine(disk, sync_interval=3)
            for i in range(7):
                engine.append_row("G", row(i, at=float(i)))
            engine.checkpoint()
            for i in range(7, 11):
                engine.append_row("G", row(i, at=float(i)))
            disk.crash(random.Random(42))
            return HistoryEngine(disk, sync_interval=3).serving_rows("G")

        assert build() == build()


class TestManifestProtocol:
    def test_current_points_at_latest_manifest(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=1)
        engine.append_row("G", row(0))
        engine.checkpoint()
        assert current_manifest(disk) is not None
        assert disk.exists(CURRENT_PATH)

    def test_stale_manifests_collected(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=1)
        for i in range(3):
            engine.append_row("G", row(i))
            engine.checkpoint()
        manifests = [p for p in disk.list() if p.startswith("MANIFEST-")]
        assert len(manifests) == 1

    def test_unreadable_current_falls_back_to_manifest_scan(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=1)
        engine.append_row("G", row(0, at=1.0))
        engine.checkpoint()
        disk.flip_bit(CURRENT_PATH, rng=random.Random(1))
        state = recover_state(disk)
        assert state.segments  # found via the manifest scan
        assert state.report.manifests_skipped >= 0  # never raises

    def test_wal_truncated_after_checkpoint(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=1)
        for i in range(5):
            engine.append_row("G", row(i))
        engine.checkpoint()
        wals = disk.list("wal/")
        assert wals == [engine.wal.path]
        assert disk.size(engine.wal.path) == 0


class TestRetention:
    def test_ring_drops_whole_head_segments(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=1, max_rows_per_group=4)
        for batch in range(3):  # three sealed segments of 2 rows each
            for i in range(2):
                engine.append_row("G", row(batch * 2 + i, at=float(batch * 2 + i)))
            engine.checkpoint()
        # 6 rows, ring 4: the head segment (rows 0-1) is droppable.
        assert sum(s.row_count for s in engine.segments["G"]) == 4
        assert [r["Load"] for r in engine.serving_rows("G")] == [2.0, 3.0, 4.0, 5.0]

    def test_ring_never_drops_below_capacity(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=1, max_rows_per_group=4)
        for i in range(3):
            engine.append_row("G", row(i, at=float(i)))
        engine.checkpoint()
        engine.checkpoint()
        assert len(engine.serving_rows("G")) == 3  # under capacity: kept

    def test_trim_cutoff_survives_crash(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=100)
        for i in range(4):
            engine.append_row("G", row(i, at=float(i)))
        engine.sync()
        engine.append_trim(2.0)
        disk.crash(None)
        successor = HistoryEngine(disk, sync_interval=100)
        assert [r["Load"] for r in successor.serving_rows("G")] == [2.0, 3.0]

    def test_trim_persisted_in_manifest_not_resurrected(self):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=1)
        for i in range(4):
            engine.append_row("G", row(i, at=float(i)))
        engine.append_trim(2.0)
        engine.checkpoint()  # trim record truncated with the WAL here
        disk.crash(None)
        successor = HistoryEngine(disk, sync_interval=1)
        assert successor.trim_cutoff == 2.0
        assert [r["Load"] for r in successor.serving_rows("G")] == [2.0, 3.0]

    def test_age_retention_drops_old_segments_and_flags_serving(self):
        clock = VirtualClock()
        disk = SimDisk(clock=clock)
        engine = HistoryEngine(
            disk, clock=clock, sync_interval=1, retention_age=100.0
        )
        engine.append_row("G", row(0, at=clock.now()))
        engine.checkpoint()
        clock.advance(500.0)
        engine.append_row("G", row(1, at=clock.now()))
        result = engine.checkpoint()
        assert result.segments_dropped == 1
        assert "G" in result.serving_dirty
        assert [r["Load"] for r in engine.serving_rows("G")] == [1.0]

    def test_none_recorded_at_segment_exempt_from_age_drop(self):
        clock = VirtualClock()
        disk = SimDisk(clock=clock)
        engine = HistoryEngine(
            disk, clock=clock, sync_interval=1, retention_age=100.0
        )
        engine.append_row("G", row(0, at=None))
        engine.append_row("G", row(1, at=clock.now()))
        engine.checkpoint()
        clock.advance(500.0)
        result = engine.checkpoint()
        assert result.segments_dropped == 0
        assert len(engine.serving_rows("G")) == 2


class TestAckedRows:
    def test_unsynced_suffix_not_acked(self):
        engine = HistoryEngine(SimDisk(), sync_interval=10)
        for i in range(3):
            engine.append_row("G", row(i))
        assert engine.acked_rows("G") == []
        assert len(engine.serving_rows("G")) == 3
        engine.sync()
        assert len(engine.acked_rows("G")) == 3

    def test_exclude_segments_subtracts_their_rows(self):
        engine = HistoryEngine(SimDisk(), sync_interval=1)
        engine.append_row("G", row(0))
        engine.checkpoint()
        engine.append_row("G", row(1))
        path = engine.segments["G"][0].path
        acked = engine.acked_rows("G", exclude_segments=frozenset([path]))
        assert [r["Load"] for r in acked] == [1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            HistoryEngine(SimDisk(), max_rows_per_group=0)
        with pytest.raises(ValueError):
            HistoryEngine(SimDisk(), retention_age=-1.0)
