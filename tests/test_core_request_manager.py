"""Unit tests for the RequestManager: modes, consolidation, failures."""

import pytest

from repro.core.errors import GridRmError
from repro.core.request_manager import QueryMode
from repro.testbed import build_site
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network


@pytest.fixture
def rig():
    clock = VirtualClock()
    network = Network(clock, seed=11)
    site = build_site(network, name="rq", n_hosts=3, agents=("snmp", "ganglia"), seed=11)
    clock.advance(30.0)
    return network, site, site.gateway.request_manager


class TestRealtime:
    def test_single_source(self, rig):
        network, site, rm = rig
        r = rm.execute(site.url_for("snmp"), "SELECT HostName FROM Host")
        assert r.ok_sources == 1 and len(r.rows) == 1

    def test_multi_source_consolidation(self, rig):
        network, site, rm = rig
        urls = [u for u in site.source_urls if u.startswith("jdbc:snmp")]
        r = rm.execute(urls, "SELECT HostName, LoadAverage1Min FROM Processor")
        assert r.ok_sources == 3
        assert len(r.rows) == 3
        assert {row["HostName"] for row in r.dicts()} == set(site.host_names())

    def test_bad_sql_raises_before_any_fetch(self, rig):
        network, site, rm = rig
        before = rm.stats["realtime_fetches"]
        with pytest.raises(GridRmError):
            rm.execute(site.url_for("snmp"), "SELEKT nonsense")
        assert rm.stats["realtime_fetches"] == before

    def test_empty_url_list_rejected(self, rig):
        _, _, rm = rig
        with pytest.raises(GridRmError):
            rm.execute([], "SELECT * FROM Host")

    def test_failed_source_reported_not_raised(self, rig):
        network, site, rm = rig
        dead = site.host_names()[0]
        network.set_host_up(dead, False)
        urls = [u for u in site.source_urls if u.startswith("jdbc:snmp")]
        r = rm.execute(urls, "SELECT HostName FROM Host")
        assert r.ok_sources == 2 and r.failed_sources == 1
        failed = [s for s in r.statuses if not s.ok][0]
        assert dead in failed.url and failed.error

    def test_elapsed_uses_virtual_time(self, rig):
        network, site, rm = rig
        r = rm.execute(site.url_for("snmp"), "SELECT * FROM Host")
        assert r.elapsed > 0.0

    def test_result_set_adapter(self, rig):
        _, site, rm = rig
        rs = rm.execute(site.url_for("snmp"), "SELECT HostName FROM Host").result_set()
        assert rs.next() and rs.get("HostName")


class TestCachedOk:
    def test_second_query_served_from_cache(self, rig):
        network, site, rm = rig
        url = site.url_for("snmp")
        rm.execute(url, "SELECT * FROM Host", mode=QueryMode.CACHED_OK)
        before = rm.stats["realtime_fetches"]
        r = rm.execute(url, "SELECT * FROM Host", mode=QueryMode.CACHED_OK)
        assert rm.stats["realtime_fetches"] == before
        assert r.statuses[0].from_cache

    def test_realtime_mode_bypasses_cache(self, rig):
        network, site, rm = rig
        url = site.url_for("snmp")
        rm.execute(url, "SELECT * FROM Host")
        r = rm.execute(url, "SELECT * FROM Host", mode=QueryMode.REALTIME)
        assert not r.statuses[0].from_cache

    def test_cache_expiry_falls_through(self, rig):
        network, site, rm = rig
        url = site.url_for("snmp")
        rm.execute(url, "SELECT * FROM Host", mode=QueryMode.CACHED_OK)
        network.clock.advance(60.0)  # > default ttl 30
        r = rm.execute(url, "SELECT * FROM Host", mode=QueryMode.CACHED_OK)
        assert not r.statuses[0].from_cache

    def test_max_age_insists_on_freshness(self, rig):
        network, site, rm = rig
        url = site.url_for("snmp")
        rm.execute(url, "SELECT * FROM Host", mode=QueryMode.CACHED_OK)
        network.clock.advance(10.0)
        r = rm.execute(url, "SELECT * FROM Host", mode=QueryMode.CACHED_OK, max_age=5.0)
        assert not r.statuses[0].from_cache


class TestHistory:
    def test_star_queries_recorded(self, rig):
        network, site, rm = rig
        url = site.url_for("snmp")
        rm.execute(url, "SELECT * FROM Processor")
        h = rm.execute(url, "SELECT HostName FROM Processor", mode=QueryMode.HISTORY)
        assert h.ok_sources == 1 and len(h.rows) == 1

    def test_narrow_projections_not_recorded(self, rig):
        network, site, rm = rig
        url = site.url_for("snmp")
        rm.execute(url, "SELECT HostName FROM Processor")
        h = rm.execute(url, "SELECT HostName FROM Processor", mode=QueryMode.HISTORY)
        assert len(h.rows) == 0

    def test_history_accumulates_samples(self, rig):
        network, site, rm = rig
        url = site.url_for("snmp")
        for _ in range(3):
            rm.execute(url, "SELECT * FROM Processor")
            network.clock.advance(5.0)
        h = rm.execute(url, "SELECT COUNT(*) FROM Processor", mode=QueryMode.HISTORY)
        assert h.rows[0][0] == 3

    def test_history_isolated_per_source(self, rig):
        network, site, rm = rig
        urls = [u for u in site.source_urls if u.startswith("jdbc:snmp")][:2]
        rm.execute(urls[0], "SELECT * FROM Processor")
        h = rm.execute(urls[1], "SELECT COUNT(*) FROM Processor", mode=QueryMode.HISTORY)
        assert h.rows[0][0] == 0

    def test_history_disabled_by_policy(self):
        from repro.core.policy import GatewayPolicy

        clock = VirtualClock()
        network = Network(clock, seed=2)
        site = build_site(
            network,
            name="nohist",
            n_hosts=1,
            agents=("snmp",),
            policy=GatewayPolicy(history_enabled=False),
        )
        clock.advance(10.0)
        rm = site.gateway.request_manager
        rm.execute(site.url_for("snmp"), "SELECT * FROM Processor")
        h = rm.execute(
            site.url_for("snmp"), "SELECT * FROM Processor", mode=QueryMode.HISTORY
        )
        assert len(h.rows) == 0

    def test_mixed_columns_align_by_name(self, rig):
        """History results carry provenance columns; consolidation with a
        real-time result aligns shared columns by name."""
        network, site, rm = rig
        url = site.url_for("snmp")
        rm.execute(url, "SELECT * FROM Processor")
        r = rm.execute(url, "SELECT * FROM Processor", mode=QueryMode.HISTORY)
        assert "SourceUrl" in r.columns
