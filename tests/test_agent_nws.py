"""Unit tests for the NWS agent and the forecaster bank."""

import pytest

from repro.agents.nws import (
    ExpSmooth,
    Forecast,
    ForecasterBank,
    LastValue,
    NwsAgent,
    RunningMean,
    SlidingMean,
    SlidingMedian,
    default_bank,
)


class TestForecasters:
    def test_last_value(self):
        f = LastValue()
        assert f.predict() is None
        f.observe(3.0)
        assert f.predict() == 3.0
        f.observe(5.0)
        assert f.predict() == 5.0

    def test_running_mean(self):
        f = RunningMean()
        for v in (1.0, 2.0, 3.0):
            f.observe(v)
        assert f.predict() == pytest.approx(2.0)

    def test_sliding_mean_window(self):
        f = SlidingMean(2)
        for v in (10.0, 1.0, 3.0):
            f.observe(v)
        assert f.predict() == pytest.approx(2.0)  # only last two

    def test_sliding_median_robust_to_outlier(self):
        f = SlidingMedian(5)
        for v in (1.0, 1.0, 100.0, 1.0, 1.0):
            f.observe(v)
        assert f.predict() == 1.0

    def test_exp_smooth_converges(self):
        f = ExpSmooth(0.5)
        for _ in range(20):
            f.observe(4.0)
        assert f.predict() == pytest.approx(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SlidingMean(0)
        with pytest.raises(ValueError):
            SlidingMedian(0)
        with pytest.raises(ValueError):
            ExpSmooth(0.0)
        with pytest.raises(ValueError):
            ExpSmooth(1.5)


class TestBank:
    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            ForecasterBank([])

    def test_forecast_before_data(self):
        bank = ForecasterBank()
        fc = bank.forecast()
        assert isinstance(fc, Forecast)
        assert fc.value is None and fc.mae is None

    def test_constant_series_perfect_forecast(self):
        bank = ForecasterBank()
        for _ in range(10):
            bank.observe(5.0)
        fc = bank.forecast()
        assert fc.value == pytest.approx(5.0)
        assert fc.mae == pytest.approx(0.0)

    def test_picks_minimum_mae_predictor(self):
        """On an alternating series the median/mean beat last-value."""
        bank = ForecasterBank([LastValue(), SlidingMedian(21)])
        for i in range(100):
            bank.observe(1.0 if i % 2 == 0 else 3.0)
        assert bank.mae(1) < bank.mae(0)
        assert bank.forecast().method == "sliding_median_21"

    def test_adaptive_never_worse_than_all_fixed(self):
        """The selected predictor's MAE equals the minimum over the bank —
        the NWS claim (experiment E12 benches this on realistic series)."""
        bank = ForecasterBank()
        import random

        rng = random.Random(0)
        level = 1.0
        for _ in range(300):
            level = max(0.0, level + rng.uniform(-0.2, 0.2))
            bank.observe(level + rng.uniform(-0.05, 0.05))
        maes = [bank.mae(i) for i in range(len(bank.forecasters))]
        fc = bank.forecast()
        assert fc.mae == pytest.approx(min(m for m in maes if m is not None))

    def test_default_bank_composition(self):
        names = {f.name for f in default_bank()}
        assert "last_value" in names and "running_mean" in names
        assert any(n.startswith("sliding_median") for n in names)


@pytest.fixture
def agent(network, hosts):
    return NwsAgent(hosts[0], network, peers=[hosts[1].spec.name])


class TestAgentProtocol:
    def test_resources_lists_cpu_and_peers(self, network, agent, hosts):
        resp = network.request("gateway", agent.address, "RESOURCES")
        lines = resp.splitlines()
        assert "availableCpu" in lines
        assert f"latencyMs:{hosts[1].spec.name}" in lines

    def test_forecast_line_fields(self, network, agent):
        network.clock.advance(60.0)
        line = network.request("gateway", agent.address, "FORECAST availableCpu")
        fields = dict(p.split("=", 1) for p in line.split())
        assert set(fields) >= {"RESOURCE", "TIME", "MEASURED", "FORECAST", "MAE", "METHOD"}
        assert 0.0 <= float(fields["MEASURED"]) <= 1.0

    def test_forecast_peer_resource(self, network, agent, hosts):
        network.clock.advance(60.0)
        line = network.request(
            "gateway", agent.address, f"FORECAST latencyMs {hosts[1].spec.name}"
        )
        assert line.startswith("RESOURCE=latencyMs:")

    def test_series_returns_n_points(self, network, agent):
        network.clock.advance(100.0)
        resp = network.request("gateway", agent.address, "SERIES availableCpu 5")
        lines = resp.splitlines()
        assert len(lines) == 5
        t, v = lines[-1].split()
        assert float(t) <= 100.0 and 0.0 <= float(v) <= 1.0

    def test_unknown_resource_errors(self, network, agent):
        assert network.request("gateway", agent.address, "FORECAST bogus").startswith("ERROR")

    def test_unknown_command_errors(self, network, agent):
        assert network.request("gateway", agent.address, "FROBNICATE").startswith("ERROR")

    def test_measurements_accumulate_over_time(self, network, agent):
        network.clock.advance(100.0)
        n1 = len(network.request("gateway", agent.address, "SERIES availableCpu 1000").splitlines())
        network.clock.advance(100.0)
        n2 = len(network.request("gateway", agent.address, "SERIES availableCpu 1000").splitlines())
        assert n2 > n1

    def test_current_cpu_bounded(self, network, agent):
        network.clock.advance(60.0)
        line = network.request("gateway", agent.address, "FORECAST currentCpu")
        fields = dict(p.split("=", 1) for p in line.split())
        assert 0.0 < float(fields["MEASURED"]) <= 1.0
