"""The throw-by-default contract of the abstract driver bases (§3.2.1)."""

import pytest

from repro.dbapi.exceptions import (
    SQLException,
    SQLFeatureNotSupportedException,
)
from repro.dbapi.interfaces import (
    Connection,
    DatabaseMetaData,
    Driver,
    ResultSet,
    ResultSetMetaData,
    Statement,
)


@pytest.mark.parametrize(
    "obj,call",
    [
        (ResultSet(), lambda o: o.next()),
        (ResultSet(), lambda o: o.get("x")),
        (ResultSet(), lambda o: o.get_string("x")),
        (ResultSet(), lambda o: o.get_int("x")),
        (ResultSet(), lambda o: o.get_float("x")),
        (ResultSet(), lambda o: o.get_bool("x")),
        (ResultSet(), lambda o: o.was_null()),
        (ResultSet(), lambda o: o.metadata()),
        (ResultSet(), lambda o: o.close()),
        (ResultSet(), lambda o: iter(o)),
        (ResultSetMetaData(), lambda o: o.column_count()),
        (ResultSetMetaData(), lambda o: o.column_name(1)),
        (ResultSetMetaData(), lambda o: o.column_type(1)),
        (ResultSetMetaData(), lambda o: o.column_index("x")),
        (Statement(), lambda o: o.execute_query("SELECT 1 FROM t")),
        (Statement(), lambda o: o.execute_update("DELETE FROM t")),
        (Statement(), lambda o: o.set_query_timeout(1.0)),
        (Statement(), lambda o: o.close()),
        (Connection(), lambda o: o.create_statement()),
        (Connection(), lambda o: o.close()),
        (Connection(), lambda o: o.is_closed()),
        (Connection(), lambda o: o.is_valid()),
        (Connection(), lambda o: o.get_metadata()),
        (DatabaseMetaData(), lambda o: o.driver_name()),
        (DatabaseMetaData(), lambda o: o.driver_version()),
        (DatabaseMetaData(), lambda o: o.url()),
        (DatabaseMetaData(), lambda o: o.get_tables()),
        (Driver(), lambda o: o.accepts_url(None)),
        (Driver(), lambda o: o.connect(None)),
        (Driver(), lambda o: o.name()),
    ],
)
def test_every_unimplemented_method_raises_sql_exception(obj, call):
    """Unimplemented methods must raise an SQLException 'as one would
    expect from a fully implemented driver that had experienced errors'."""
    with pytest.raises(SQLFeatureNotSupportedException):
        call(obj)


def test_feature_exception_is_sql_exception():
    assert issubclass(SQLFeatureNotSupportedException, SQLException)


def test_driver_version_has_default():
    assert Driver().version() == "1.0"


def test_partial_override_keeps_other_methods_throwing():
    """The incremental-development pattern: override one method, the rest
    still throw."""

    class Partial(ResultSet):
        def next(self):
            return False

    rs = Partial()
    assert rs.next() is False
    with pytest.raises(SQLFeatureNotSupportedException):
        rs.get("x")
