"""Unit tests for the in-memory relational database."""

import pytest

from repro.sql.database import Database
from repro.sql.errors import SqlExecutionError


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE m (host TEXT, load REAL, cpus INTEGER, up BOOLEAN)")
    d.execute(
        "INSERT INTO m (host, load, cpus, up) VALUES "
        "('a', 0.5, 4, TRUE), ('b', 1.5, 8, FALSE)"
    )
    return d


class TestDdl:
    def test_create_and_query_empty(self):
        d = Database()
        d.execute("CREATE TABLE t (a INTEGER)")
        assert d.query("SELECT * FROM t").rows == []

    def test_create_duplicate_rejected(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("CREATE TABLE m (x TEXT)")

    def test_create_if_not_exists_tolerates_duplicate(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS m (x TEXT)")

    def test_duplicate_column_rejected(self):
        d = Database()
        with pytest.raises(SqlExecutionError):
            d.execute("CREATE TABLE t (a INTEGER, a TEXT)")

    def test_drop(self, db):
        db.execute("DROP TABLE m")
        with pytest.raises(SqlExecutionError):
            db.query("SELECT * FROM m")

    def test_drop_missing_rejected(self):
        with pytest.raises(SqlExecutionError):
            Database().execute("DROP TABLE nope")

    def test_drop_if_exists_tolerant(self):
        assert Database().execute("DROP TABLE IF EXISTS nope") == 0

    def test_programmatic_create(self):
        d = Database()
        t = d.create_table("t", ["a", ("b", "REAL")])
        assert t.column_names == ["a", "b"]
        assert t.columns[1].type == "REAL"


class TestDml:
    def test_insert_returns_count(self, db):
        n = db.execute("INSERT INTO m (host, load, cpus, up) VALUES ('c', 2.0, 1, TRUE)")
        assert n == 1
        assert len(db.table("m")) == 3

    def test_insert_coerces_types(self, db):
        db.execute("INSERT INTO m (host, load, cpus, up) VALUES ('c', '2.5', 1, TRUE)")
        row = db.query("SELECT load FROM m WHERE host = 'c'").rows[0]
        assert row == [2.5]

    def test_insert_unknown_column_rejected(self, db):
        with pytest.raises(SqlExecutionError):
            db.insert_rows("m", [{"nope": 1}])

    def test_insert_missing_columns_null_filled(self, db):
        db.insert_rows("m", [{"host": "z"}])
        row = db.query("SELECT load, cpus FROM m WHERE host = 'z'").rows[0]
        assert row == [None, None]

    def test_insert_uncoercible_rejected(self, db):
        with pytest.raises(SqlExecutionError):
            db.insert_rows("m", [{"host": "x", "cpus": "many"}])

    def test_update_returns_affected(self, db):
        assert db.execute("UPDATE m SET load = 9 WHERE host = 'a'") == 1
        assert db.query("SELECT load FROM m WHERE host='a'").rows == [[9.0]]

    def test_update_expression_uses_row(self, db):
        db.execute("UPDATE m SET load = load + 1")
        assert db.query("SELECT load FROM m ORDER BY host").rows == [[1.5], [2.5]]

    def test_update_unknown_column_rejected(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("UPDATE m SET nope = 1")

    def test_delete_with_where(self, db):
        assert db.execute("DELETE FROM m WHERE up = FALSE") == 1
        assert len(db.table("m")) == 1

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM m") == 2
        assert db.query("SELECT COUNT(*) FROM m").rows == [[0]]

    def test_query_rejects_dml(self, db):
        with pytest.raises(SqlExecutionError):
            db.query("DELETE FROM m")

    def test_boolean_round_trip(self, db):
        assert db.query("SELECT up FROM m WHERE host = 'a'").rows == [[True]]
