"""Unit tests for the EventManager (paper §3.1.5, Figure 4)."""

import pytest

from repro.agents import snmp as wire
from repro.agents.snmp import SnmpAgent
from repro.core.events import Event, EventManager, SnmpTrapEventDriver
from repro.core.history import HistoryStore
from repro.core.policy import GatewayPolicy
from repro.glue.schema import standard_schema
from repro.simnet.network import Address


@pytest.fixture
def em(network):
    manager = EventManager(
        network,
        "gateway",
        GatewayPolicy(event_fast_buffer_size=8, event_disk_buffer_size=16),
        history=HistoryStore(standard_schema()),
        drain_batch=4,
        drain_period=1.0,
    )
    manager.install_driver(SnmpTrapEventDriver())
    return manager


@pytest.fixture
def trap_agent(network, host, em):
    agent = SnmpAgent(host, network)
    agent.add_trap_sink(Address("gateway", wire.TRAP_PORT))
    return agent


def deliver(network, n=1):
    """Advance enough for traps to arrive and the pump to run."""
    network.clock.advance(float(max(2, n)))


class TestIngestAndTranslate:
    def test_trap_becomes_event(self, network, em, trap_agent):
        got = []
        em.register_listener(got.append)
        trap_agent.send_trap(wire.TRAP_LOAD_HIGH, (wire.VarBind(wire.LA_LOAD_1, 250),))
        deliver(network)
        assert len(got) == 1
        event = got[0]
        assert event.name == "load.high"
        assert event.severity == "warning"
        assert event.source_host == "n0"
        assert event.fields[wire.oid_str(wire.LA_LOAD_1)] == 250

    def test_unknown_trap_oid_named_generically(self, network, em, trap_agent):
        got = []
        em.register_listener(got.append)
        trap_agent.send_trap((1, 3, 6, 1, 4, 1, 9, 9))
        deliver(network)
        assert got[0].name.startswith("trap.")
        assert got[0].severity == "info"

    def test_garbage_datagram_counted_undecodable(self, network, em):
        network.add_host("noisy", site="default")
        network.send("noisy", Address("gateway", wire.TRAP_PORT), b"\xde\xad")
        deliver(network)
        assert em.stats["undecodable"] == 1

    def test_event_recorded_to_history(self, network, em, trap_agent):
        trap_agent.send_trap(wire.TRAP_LOAD_HIGH)
        deliver(network)
        result = em.history.query("SELECT EventName, Level FROM LogEvent")
        assert result.rows == [["load.high", "warning"]]

    def test_duplicate_port_driver_rejected(self, em):
        with pytest.raises(ValueError):
            em.install_driver(SnmpTrapEventDriver())


class TestListeners:
    def test_filter_by_source(self, network, em, trap_agent, hosts):
        other = SnmpAgent(hosts[1], network, port=1161)
        other.add_trap_sink(Address("gateway", wire.TRAP_PORT))
        only_n0, every = [], []
        em.register_listener(only_n0.append, source_host="n0")
        em.register_listener(every.append)
        trap_agent.send_trap(wire.TRAP_LOAD_HIGH)
        other.send_trap(wire.TRAP_LOAD_HIGH)
        deliver(network)
        assert len(only_n0) == 1 and len(every) == 2

    def test_filter_by_name_prefix(self, network, em, trap_agent):
        load_events = []
        em.register_listener(load_events.append, name_prefix="load.")
        trap_agent.send_trap(wire.TRAP_LOAD_HIGH)
        trap_agent.send_trap((1, 3, 6, 1, 4, 1, 5))
        deliver(network)
        assert len(load_events) == 1

    def test_unregister(self, network, em, trap_agent):
        got = []
        reg = em.register_listener(got.append)
        assert em.unregister_listener(reg)
        assert not em.unregister_listener(reg)
        trap_agent.send_trap(wire.TRAP_LOAD_HIGH)
        deliver(network)
        assert got == []


class TestBuffering:
    def test_burst_within_buffers_not_lost(self, network, em, trap_agent):
        got = []
        em.register_listener(got.append)
        for _ in range(20):  # fast 8 + disk 16 can hold it
            trap_agent.send_trap(wire.TRAP_LOAD_HIGH)
        network.clock.advance(10.0)  # several pump ticks at batch=4
        assert len(got) == 20
        assert em.stats["spilled"] > 0
        assert em.stats["dropped"] == 0

    def test_overflow_beyond_both_buffers_drops(self, network, em, trap_agent):
        for _ in range(40):  # > 8 + 16 before any pump tick
            trap_agent.send_trap(wire.TRAP_LOAD_HIGH)
        network.clock.advance(0.5)  # deliver datagrams, no pump yet
        assert em.stats["dropped"] > 0

    def test_pump_respects_batch_limit(self, network, em, trap_agent):
        for _ in range(6):
            trap_agent.send_trap(wire.TRAP_LOAD_HIGH)
        network.clock.advance(0.9)  # delivered, not yet pumped
        assert em.pump() == 4  # batch
        assert em.pump() == 2
        assert em.pump() == 0

    def test_backlog_reports_buffered(self, network, em, trap_agent):
        for _ in range(3):
            trap_agent.send_trap(wire.TRAP_LOAD_HIGH)
        network.clock.advance(0.5)
        assert em.backlog() == 3


class TestOutbound:
    def test_transmit_translates_to_native(self, network, em):
        """Events can be pushed back out as native SNMP traps."""
        network.add_host("sink", site="default")
        got = []
        network.listen(
            Address("sink", 162),
            lambda p, s: None,
            datagram_handler=lambda p, s: got.append(wire.SnmpMessage.decode(p)),
        )
        event = Event(
            source_host="gateway",
            name="load.high",
            severity="warning",
            time=network.clock.now(),
            fields={wire.oid_str(wire.LA_LOAD_1): 300},
        )
        em.transmit(event, Address("sink", 162), kind="snmp-trap")
        network.clock.advance(1.0)
        assert len(got) == 1
        assert got[0].pdu_type == wire.TAG_TRAP
        assert em.stats["transmitted"] == 1

    def test_transmit_unknown_kind_rejected(self, em, network):
        event = Event("g", "x", "info", 0.0)
        with pytest.raises(ValueError):
            em.transmit(event, Address("sink", 1), kind="smoke-signals")

def test_second_gateway_event_propagation(network):
    """A second gateway's EventManager receives what the first emits —
    the paper's inter-gateway event propagation."""
    network.add_host("gw2", site="default")
    em1 = EventManager(network, "gateway", GatewayPolicy(), drain_period=1.0)
    em1.install_driver(SnmpTrapEventDriver())
    em2 = EventManager(network, "gw2", GatewayPolicy(), drain_period=1.0)
    em2.install_driver(SnmpTrapEventDriver())
    got = []
    em2.register_listener(got.append)
    event = Event(
        source_host="gateway",
        name="load.high",
        severity="warning",
        time=network.clock.now(),
        fields={},
    )
    em1.transmit(event, Address("gw2", wire.TRAP_PORT), kind="snmp-trap")
    network.clock.advance(3.0)
    assert len(got) == 1
    assert got[0].name == "load.high"
