"""Unit tests for the virtual clock."""

import pytest

from repro.simnet.clock import VirtualClock


class TestBasics:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=100.0).now() == 100.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(1.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_backwards_rejected(self):
        clock = VirtualClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_zero_is_noop(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now() == 0.0


class TestScheduling:
    def test_call_later_fires_on_advance(self):
        clock = VirtualClock()
        fired = []
        clock.call_later(5.0, lambda: fired.append(clock.now()))
        clock.advance(4.9)
        assert fired == []
        clock.advance(0.2)
        assert fired == [5.0]

    def test_callback_sees_due_time_not_target(self):
        clock = VirtualClock()
        seen = []
        clock.call_later(1.0, lambda: seen.append(clock.now()))
        clock.advance(10.0)
        assert seen == [1.0]
        assert clock.now() == 10.0

    def test_call_at_past_rejected(self):
        clock = VirtualClock(start=5.0)
        with pytest.raises(ValueError):
            clock.call_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().call_later(-1.0, lambda: None)

    def test_same_instant_fires_in_registration_order(self):
        clock = VirtualClock()
        order = []
        clock.call_later(1.0, lambda: order.append("a"))
        clock.call_later(1.0, lambda: order.append("b"))
        clock.advance(1.0)
        assert order == ["a", "b"]

    def test_cancel_prevents_firing(self):
        clock = VirtualClock()
        fired = []
        handle = clock.call_later(1.0, lambda: fired.append(1))
        handle.cancel()
        clock.advance(2.0)
        assert fired == []

    def test_callbacks_fire_in_time_order(self):
        clock = VirtualClock()
        order = []
        clock.call_later(3.0, lambda: order.append(3))
        clock.call_later(1.0, lambda: order.append(1))
        clock.call_later(2.0, lambda: order.append(2))
        clock.advance(5.0)
        assert order == [1, 2, 3]

    def test_callback_may_schedule_callback(self):
        clock = VirtualClock()
        fired = []
        clock.call_later(1.0, lambda: clock.call_later(1.0, lambda: fired.append(clock.now())))
        clock.advance(3.0)
        assert fired == [2.0]


class TestPeriodic:
    def test_call_every_fires_repeatedly(self):
        clock = VirtualClock()
        times = []
        clock.call_every(10.0, lambda: times.append(clock.now()))
        clock.advance(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_first_in_controls_initial_delay(self):
        clock = VirtualClock()
        times = []
        clock.call_every(10.0, lambda: times.append(clock.now()), first_in=0.0)
        clock.advance(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_cancel_stops_periodic(self):
        clock = VirtualClock()
        times = []
        handle = clock.call_every(1.0, lambda: times.append(clock.now()))
        clock.advance(2.5)
        handle.cancel()
        clock.advance(5.0)
        assert times == [1.0, 2.0]

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().call_every(0.0, lambda: None)

    def test_pending_counts_live_calls(self):
        clock = VirtualClock()
        h1 = clock.call_later(1.0, lambda: None)
        clock.call_later(2.0, lambda: None)
        assert clock.pending() == 2
        h1.cancel()
        assert clock.pending() == 1


class TestConcurrentScope:
    def test_join_advances_to_max_not_sum(self):
        clock = VirtualClock()
        with clock.concurrent() as scope:
            with scope.branch():
                clock.advance(3.0)
            with scope.branch():
                clock.advance(5.0)
            with scope.branch():
                clock.advance(1.0)
        assert clock.now() == 5.0
        assert scope.elapsed == 5.0

    def test_branches_all_start_at_scope_open(self):
        clock = VirtualClock()
        clock.advance(10.0)
        starts = []
        with clock.concurrent() as scope:
            with scope.branch():
                starts.append(clock.now())
                clock.advance(2.0)
            with scope.branch():
                starts.append(clock.now())
        assert starts == [10.0, 10.0]
        assert clock.now() == 12.0

    def test_empty_scope_is_a_no_op(self):
        clock = VirtualClock()
        clock.advance(1.0)
        with clock.concurrent():
            pass
        assert clock.now() == 1.0

    def test_callbacks_deferred_to_join_and_fire_once(self):
        clock = VirtualClock()
        fired = []
        clock.call_later(1.0, lambda: fired.append(clock.now()))
        with clock.concurrent() as scope:
            with scope.branch():
                clock.advance(4.0)     # sweeps past the due time
                assert fired == []     # ...but deferred
            with scope.branch():
                clock.advance(2.0)     # would sweep past it again
        # Exactly once, during the join sweep, at its due time.
        assert fired == [1.0]

    def test_nested_scopes_defer_to_outermost_join(self):
        clock = VirtualClock()
        with clock.concurrent() as outer:
            with outer.branch():
                with clock.concurrent() as inner:
                    with inner.branch():
                        clock.advance(2.0)
                    with inner.branch():
                        clock.advance(6.0)
                # inner join happened on a private timeline
                clock.advance(1.0)
            with outer.branch():
                clock.advance(3.0)
        assert clock.now() == 7.0      # max(2,6) + 1 vs 3

    def test_branch_after_join_rejected(self):
        clock = VirtualClock()
        scope = clock.concurrent()
        scope.join()
        with pytest.raises(RuntimeError):
            with scope.branch():
                pass

    def test_join_is_idempotent(self):
        clock = VirtualClock()
        with clock.concurrent() as scope:
            with scope.branch():
                clock.advance(2.0)
        scope.join()
        assert clock.now() == 2.0

    def test_in_concurrent_branch_flag(self):
        clock = VirtualClock()
        assert not clock.in_concurrent_branch
        with clock.concurrent() as scope:
            with scope.branch():
                assert clock.in_concurrent_branch
            assert not clock.in_concurrent_branch

    def test_reentrant_callback_advancing_clock(self):
        # A scheduled callback that itself advances the clock (nested
        # blocking RPC work) must not move time backwards afterwards.
        clock = VirtualClock()
        seen = []
        def nested():
            clock.advance(5.0)
            seen.append(clock.now())
        clock.call_later(1.0, nested)
        clock.advance(2.0)
        assert seen == [6.0]
        assert clock.now() == 6.0

    def test_next_due_skips_cancelled(self):
        clock = VirtualClock()
        h = clock.call_later(1.0, lambda: None)
        clock.call_later(2.0, lambda: None)
        assert clock.next_due() == 1.0
        h.cancel()
        assert clock.next_due() == 2.0
