"""Unit + end-to-end tests for the PlanCache."""

import pytest

from repro.core.plans import PlanCache
from repro.core.request_manager import QueryMode
from repro.glue.schema import standard_schema
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.sql.errors import SqlError
from repro.testbed import build_site

SQL = "SELECT HostName FROM Host"


@pytest.fixture
def schema():
    return standard_schema()


class TestHitMiss:
    def test_miss_then_hit_same_entry(self, schema):
        cache = PlanCache(schema)
        first = cache.get(SQL)
        second = cache.get(SQL)
        assert second is first
        assert cache.misses == 1 and cache.hits == 1

    def test_key_is_normalised_sql(self, schema):
        cache = PlanCache(schema)
        a = cache.get("SELECT  HostName\nFROM   Host")
        b = cache.get("select hostname from host")
        assert b is a
        assert cache.misses == 1 and cache.hits == 1

    def test_literal_case_keeps_entries_apart(self, schema):
        cache = PlanCache(schema)
        a = cache.get("SELECT * FROM Host WHERE HostName = 'A'")
        b = cache.get("SELECT * FROM Host WHERE HostName = 'a'")
        assert b is not a
        assert cache.misses == 2

    def test_extra_fields_split_entries(self, schema):
        cache = PlanCache(schema)
        realtime = cache.get(SQL)
        history = cache.get(SQL, extra_fields=("SourceUrl", "RecordedAt"))
        assert history is not realtime
        assert cache.misses == 2

    def test_valid_query_gets_compiled_plan(self, schema):
        entry = PlanCache(schema).get(SQL)
        assert entry.findings == []
        assert entry.plan is not None
        assert entry.select.table == "Host"

    def test_findings_cached_without_plan(self, schema):
        cache = PlanCache(schema)
        entry = cache.get("SELECT Nope FROM Host")
        assert entry.findings
        assert entry.plan is None
        assert cache.get("SELECT Nope FROM Host") is entry
        assert cache.hits == 1

    def test_parse_error_propagates_and_is_not_cached(self, schema):
        cache = PlanCache(schema)
        with pytest.raises(SqlError):
            cache.get("SELECT FROM WHERE")
        with pytest.raises(SqlError):
            cache.get("SELECT FROM WHERE")
        assert len(cache) == 0
        assert cache.misses == 2

    def test_counters_surface_in_registry(self, schema):
        registry = MetricsRegistry()
        cache = PlanCache(schema, registry=registry)
        cache.get(SQL)
        cache.get(SQL)
        snapshot = registry.snapshot()
        assert snapshot["plans.misses"] == 1
        assert snapshot["plans.hits"] == 1


class TestInvalidation:
    def test_version_bump_drops_entries(self, schema):
        version = [1]
        cache = PlanCache(schema, version_fn=lambda: version[0])
        first = cache.get(SQL)
        version[0] += 1
        second = cache.get(SQL)
        assert second is not first
        assert cache.invalidations == 1
        assert cache.misses == 2

    def test_unchanged_version_keeps_entries(self, schema):
        version = [1]
        cache = PlanCache(schema, version_fn=lambda: version[0])
        first = cache.get(SQL)
        assert cache.get(SQL) is first
        assert cache.invalidations == 0

    def test_explicit_invalidate(self, schema):
        cache = PlanCache(schema)
        cache.get(SQL)
        cache.get("SELECT * FROM Host")
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_invalidate_empty_is_free(self, schema):
        cache = PlanCache(schema)
        assert cache.invalidate() == 0
        assert cache.invalidations == 0


class TestLru:
    def test_eviction_past_capacity(self, schema):
        cache = PlanCache(schema, max_entries=2)
        cache.get("SELECT HostName FROM Host")
        cache.get("SELECT SiteName FROM Host")
        cache.get("SELECT * FROM Host")
        assert len(cache) == 2
        assert cache.evictions == 1
        cache.get("SELECT HostName FROM Host")  # evicted: a fresh miss
        assert cache.misses == 4

    def test_hit_refreshes_recency(self, schema):
        cache = PlanCache(schema, max_entries=2)
        first = cache.get("SELECT HostName FROM Host")
        cache.get("SELECT SiteName FROM Host")
        cache.get("SELECT HostName FROM Host")  # refresh
        cache.get("SELECT * FROM Host")          # evicts SiteName instead
        assert cache.get("SELECT HostName FROM Host") is first
        assert cache.hits == 2

    def test_zero_capacity_means_unbounded(self, schema):
        cache = PlanCache(schema, max_entries=0)
        for i in range(200):
            cache.get(f"SELECT HostName FROM Host LIMIT {i}")
        assert len(cache) == 200
        assert cache.evictions == 0

    def test_negative_capacity_rejected(self, schema):
        with pytest.raises(ValueError):
            PlanCache(schema, max_entries=-1)


class TestTraceSpans:
    def test_cold_get_shows_compile_with_parse_and_validate(self, schema):
        tracer = Tracer(VirtualClock())
        cache = PlanCache(schema, tracer=tracer)
        with tracer.start_trace("q"):
            cache.get(SQL)
        names = [s.name for s in tracer.last().spans]
        assert "plan.compile" in names
        assert "parse" in names and "validate" in names
        assert "plan.cache_hit" not in names

    def test_warm_get_shows_cache_hit_only(self, schema):
        tracer = Tracer(VirtualClock())
        cache = PlanCache(schema, tracer=tracer)
        with tracer.start_trace("cold"):
            cache.get(SQL)
        with tracer.start_trace("warm"):
            cache.get(SQL)
        names = [s.name for s in tracer.last().spans]
        assert "plan.cache_hit" in names
        assert "parse" not in names and "validate" not in names


class TestGatewayEndToEnd:
    @pytest.fixture
    def rig(self):
        clock = VirtualClock()
        network = Network(clock, seed=11)
        site = build_site(network, name="pc", n_hosts=2, agents=("snmp",), seed=11)
        clock.advance(5.0)
        return site, site.gateway

    def test_warm_query_skips_parse_and_validate(self, rig):
        site, gw = rig
        url = site.url_for("snmp")
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        cold = [s.name for s in gw.tracer.last().spans]
        assert "plan.compile" in cold and "parse" in cold
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        warm = [s.name for s in gw.tracer.last().spans]
        assert "plan.cache_hit" in warm
        assert "parse" not in warm and "validate" not in warm
        assert gw.plans.hits >= 1

    def test_schema_change_invalidates_plans(self, rig):
        site, gw = rig
        url = site.url_for("snmp")
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        misses = gw.plans.misses
        gw.schema_manager.version += 1  # what set_mapping() does
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert gw.plans.invalidations >= 1
        assert gw.plans.misses == misses + 1

    def test_results_identical_cold_and_warm(self, rig):
        site, gw = rig
        url = site.url_for("snmp")
        sql = "SELECT HostName, LoadAverage1Min FROM Processor WHERE CPUCount >= 0 ORDER BY HostName"
        cold = gw.query(url, sql, mode=QueryMode.REALTIME)
        warm = gw.query(url, sql, mode=QueryMode.REALTIME)
        assert warm.columns == cold.columns
        assert warm.rows == cold.rows
