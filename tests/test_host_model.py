"""Unit tests for the synthetic host model."""

import pytest

from repro.agents.host_model import HostSpec, SimulatedHost
from repro.simnet.clock import VirtualClock


@pytest.fixture
def host():
    return SimulatedHost(HostSpec.generate("n0", "site-a", 42), VirtualClock())


class TestSpecGeneration:
    def test_deterministic(self):
        a = HostSpec.generate("n0", "s", 1)
        b = HostSpec.generate("n0", "s", 1)
        assert a == b

    def test_name_changes_spec(self):
        a = HostSpec.generate("n0", "s", 1)
        b = HostSpec.generate("n1", "s", 1)
        assert a.seed != b.seed

    def test_seed_changes_spec(self):
        a = HostSpec.generate("n0", "s", 1)
        b = HostSpec.generate("n0", "s", 2)
        assert a.seed != b.seed

    def test_plausible_hardware(self, host):
        s = host.spec
        assert s.cpu_count in (1, 2, 4, 8)
        assert s.ram_mb >= 256
        assert s.filesystems
        assert s.ip_address.startswith("192.168.")


class TestSnapshotInvariants:
    TIMES = [0.0, 37.5, 600.0, 3600.0, 90000.0]

    @pytest.mark.parametrize("t", TIMES)
    def test_utilization_bounded(self, host, t):
        cpu = host.snapshot(t)["cpu"]
        assert 0.0 <= cpu["utilization"] <= 100.0
        assert 0.0 <= cpu["idle"] <= 100.0
        assert cpu["user"] + cpu["system"] == pytest.approx(cpu["utilization"])

    @pytest.mark.parametrize("t", TIMES)
    def test_loads_non_negative(self, host, t):
        cpu = host.snapshot(t)["cpu"]
        assert cpu["load_1"] >= 0 and cpu["load_5"] >= 0 and cpu["load_15"] >= 0

    @pytest.mark.parametrize("t", TIMES)
    def test_memory_bounded(self, host, t):
        mem = host.snapshot(t)["memory"]
        assert 0 <= mem["ram_free_mb"] <= mem["ram_total_mb"]
        assert 0 <= mem["swap_free_mb"] <= mem["swap_total_mb"]

    @pytest.mark.parametrize("t", TIMES)
    def test_filesystem_bounded(self, host, t):
        for fs in host.snapshot(t)["filesystems"]:
            assert 0 <= fs["avail_mb"] <= fs["size_mb"]

    def test_network_counters_monotone(self, host):
        prev_rx = prev_tx = -1
        for t in self.TIMES:
            net = host.snapshot(t)["network"]
            assert net["bytes_rx"] >= prev_rx
            assert net["bytes_tx"] >= prev_tx
            prev_rx, prev_tx = net["bytes_rx"], net["bytes_tx"]

    def test_uptime_advances_with_clock(self, host):
        u0 = host.snapshot(0.0)["os"]["uptime_s"]
        u1 = host.snapshot(100.0)["os"]["uptime_s"]
        assert u1 - u0 == pytest.approx(100.0)

    def test_snapshot_pure_function_of_time(self, host):
        assert host.snapshot(123.4) == host.snapshot(123.4)

    def test_snapshot_defaults_to_clock_now(self, host):
        host.clock.advance(55.0)
        assert host.snapshot()["time"] == 55.0

    def test_process_count_positive(self, host):
        for t in self.TIMES:
            assert host.snapshot(t)["os"]["process_count"] >= 1

    def test_processes_have_expected_shape(self, host):
        procs = host.snapshot(60.0)["processes"]
        assert procs
        for p in procs:
            assert set(p) == {"pid", "name", "state", "cpu_percent", "mem_percent", "owner"}


class TestLoadDynamics:
    def test_load_varies_over_time(self, host):
        loads = {round(host.load_at(t), 6) for t in range(0, 3600, 120)}
        assert len(loads) > 5  # not constant

    def test_episodes_create_bursts(self):
        """Across many windows, at least one episode burst must appear."""
        host = SimulatedHost(HostSpec.generate("burst", "s", 3), VirtualClock())
        base = host.spec.base_load
        peak = max(host.load_at(t) for t in range(0, 36000, 60))
        assert peak > base  # bursts push above the baseline

    def test_load_average_smoother_than_instantaneous(self, host):
        import statistics

        inst = [host.load_at(float(t)) for t in range(0, 3600, 60)]
        avg15 = [host._load_avg(float(t), 900.0) for t in range(0, 3600, 60)]
        assert statistics.pstdev(avg15) <= statistics.pstdev(inst) + 1e-9
