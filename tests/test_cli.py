"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestQuery:
    def test_basic_query(self, capsys):
        code, out, err = run(
            capsys,
            "query",
            "SELECT HostName FROM Host",
            "--hosts", "2",
            "--warmup", "10",
        )
        assert code == 0
        lines = out.splitlines()
        assert lines[0] == "HostName"
        assert "1 ok" in err

    def test_query_other_kind(self, capsys):
        code, out, _ = run(
            capsys,
            "query",
            "SELECT HostName, LoadAverage1Min FROM Processor",
            "--kind", "ganglia",
            "--hosts", "3",
            "--warmup", "10",
        )
        assert code == 0
        assert len(out.splitlines()) == 4  # header + 3 hosts

    def test_query_explicit_url(self, capsys):
        code, out, _ = run(
            capsys,
            "query",
            "SELECT HostName FROM Host",
            "--url", "jdbc:snmp://site-a-n00/x",
            "--hosts", "1",
            "--warmup", "5",
        )
        assert code == 0
        assert "site-a-n00" in out

    def test_failed_query_exit_code(self, capsys):
        code, _, err = run(
            capsys,
            "query",
            "SELECT HostName FROM Host",
            "--url", "jdbc:snmp://no-such-host/x",
            "--hosts", "1",
            "--warmup", "5",
        )
        assert code == 1
        assert "failed" in err

    def test_unknown_agent_kind_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["query", "SELECT 1 FROM Host", "--agents", "carrierpigeon"])


class TestOtherCommands:
    def test_demo(self, capsys):
        code, out, _ = run(capsys, "demo", "--hosts", "2", "--warmup", "10")
        assert code == 0
        assert "GridRM Gateway" in out and "JDBC-SNMP" in out

    def test_tree(self, capsys):
        code, out, _ = run(capsys, "tree", "--hosts", "2", "--warmup", "10")
        assert code == 0
        assert "[ok]" in out

    def test_discover(self, capsys):
        code, out, err = run(capsys, "discover", "--hosts", "2", "--warmup", "5")
        assert code == 0
        assert "jdbc:snmp://" in out
        assert "found" in err

    def test_schema_text(self, capsys):
        code, out, _ = run(capsys, "schema")
        assert code == 0
        assert "Processor" in out and "LoadAverage1Min" in out

    def test_schema_xml(self, capsys):
        code, out, _ = run(capsys, "schema", "--xml")
        assert code == 0
        assert out.startswith("<?xml") and "<GlueSchema" in out

    def test_report(self, capsys):
        code, out, _ = run(capsys, "report", "--hosts", "2", "--warmup", "10")
        assert code == 0
        assert "Site capacity:" in out and "hosts=2" in out
        assert "Host utilisation:" in out

    def test_experiments(self, capsys):
        code, out, _ = run(capsys, "experiments")
        assert code == 0
        assert "benchmarks/" in out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
