"""Unit tests for the streaming plane (:mod:`repro.gma.streams`).

Covers the hub's producer flavours and replay semantics, bounded-buffer
backpressure fates, the admission interplay (brownout suppression, typed
shed on registration), deadline enforcement on the registration hop,
lease sweep / tombstone grace / clock-inflation resurrection, consumer
lease recovery, the republisher's windowed derivation, trace spans and
the console/servlet surfaces.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.errors import OverloadError
from repro.core.history import HistoryStore
from repro.core.plans import PlanCache
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.core.shed import PressureState
from repro.glue.schema import GlueField, GlueGroup, GlueSchema
from repro.gma.archiver import EventArchiver
from repro.gma.streams import (
    FLAVOURS,
    Republisher,
    StreamConsumer,
    StreamHub,
    decode_batch,
)
from repro.obs.trace import Tracer
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_testbed

PROBE = GlueGroup(
    name="Probe",
    fields=(
        GlueField("HostName", "TEXT"),
        GlueField("Load", "REAL"),
        GlueField("Slot", "INTEGER"),
    ),
    description="synthetic streaming group",
)


def _fabric(policy=None, *, history=False, overload=None, tracer=None):
    clock = VirtualClock()
    network = Network(clock, seed=0)
    network.add_host("hub-host", site="t")
    schema = GlueSchema("t-1", groups=(PROBE,))
    policy = policy or GatewayPolicy()
    store = HistoryStore(schema) if history else None
    hub = StreamHub(
        network,
        "hub-host",
        plans=PlanCache(schema),
        schema=schema,
        policy=policy,
        history=store,
        overload=overload,
        tracer=tracer,
    )
    consumer = StreamConsumer(network, "client")
    return clock, network, hub, consumer, store


def _publish(hub, clock, rows, *, source="probe://h0"):
    hub.publish("Probe", ["HostName", "Load", "Slot"], rows, source_url=source)
    clock.advance(1.0)


def _silence_renewals(consumer):
    """Cancel the consumer's auto-renew timer; the test drives leases."""
    if consumer._renew_timer is not None:
        consumer._renew_timer.cancel()
        consumer._renew_timer = None
        consumer._renew_period = 0.0


class _FakeOverload:
    """Just enough of an AdmissionController for the hub's interplay."""

    def __init__(self, state: PressureState) -> None:
        self.enabled = True
        self.state = state
        self.monitor = SimpleNamespace(retry_after=lambda: 3.0)


# ----------------------------------------------------------------------
# Producer flavours
# ----------------------------------------------------------------------
def test_stream_flavour_pushes_only_matching_tuples():
    clock, network, hub, consumer, _ = _fabric()
    cq = consumer.register(
        hub.address,
        "SELECT HostName, Load FROM Probe WHERE Load > 0.5",
        flavour="stream",
    )
    _publish(hub, clock, [["n0", 0.9, 1], ["n1", 0.1, 2], ["n2", 0.7, 3]])
    assert consumer.rows(cq) == [["n0", 0.9], ["n2", 0.7]]
    # A publish with no matching rows must push nothing at all.
    before = len(consumer.delivered.get(cq, []))
    _publish(hub, clock, [["n3", 0.2, 4]])
    assert len(consumer.delivered.get(cq, [])) == before
    # stream flavour replays nothing on attach.
    assert consumer.delivered[cq][0]["replay"] is False


def test_latest_flavour_replays_current_rows_on_attach():
    clock, network, hub, consumer, _ = _fabric()
    _publish(hub, clock, [["n0", 0.9, 1]], source="probe://h0")
    _publish(hub, clock, [["n1", 0.4, 2]], source="probe://h1")
    # The second publish from h0 supersedes the first: latest means
    # *current* rows per source, not the full history.
    _publish(hub, clock, [["n0", 0.6, 5]], source="probe://h0")
    cq = consumer.register(
        hub.address, "SELECT HostName, Load FROM Probe", flavour="latest"
    )
    clock.advance(1.0)
    batches = consumer.delivered[cq]
    assert all(b["replay"] for b in batches)
    by_source = {b["source_url"]: b["rows"] for b in batches}
    assert by_source == {
        "probe://h0": [["n0", 0.6]],
        "probe://h1": [["n1", 0.4]],
    }
    assert hub.stats["replayed"] == 2


def test_history_flavour_replays_since_watermark():
    clock, network, hub, consumer, store = _fabric(history=True)
    for t, load in ((10.0, 0.1), (20.0, 0.2), (30.0, 0.3)):
        store.record(
            "Probe",
            [{"HostName": "n0", "Load": load, "Slot": 1}],
            source_url="probe://h0",
            recorded_at=t,
        )
    cq = consumer.register(
        hub.address,
        "SELECT HostName, Load FROM Probe",
        flavour="history",
        watermark=15.0,
    )
    clock.advance(1.0)
    (batch,) = consumer.delivered[cq]
    assert batch["replay"] is True
    assert batch["source_url"] == "history://Probe"
    assert batch["rows"] == [["n0", 0.2], ["n0", 0.3]]


def test_history_replay_caps_at_replay_limit():
    policy = GatewayPolicy(stream_replay_limit=2)
    clock, network, hub, consumer, store = _fabric(policy, history=True)
    for i in range(5):
        store.record(
            "Probe",
            [{"HostName": f"n{i}", "Load": float(i), "Slot": i}],
            source_url="probe://h0",
            recorded_at=float(i),
        )
    cq = consumer.register(
        hub.address, "SELECT HostName FROM Probe", flavour="history"
    )
    clock.advance(1.0)
    (batch,) = consumer.delivered[cq]
    # Newest rows win the cap: catch-up, not a full table scan.
    assert batch["rows"] == [["n3"], ["n4"]]


def test_narrow_publish_never_fails_the_publisher():
    """A publish carrying a subset of the group's columns must skip the
    subscriptions it cannot satisfy — never raise into the publisher."""
    clock, network, hub, consumer, _ = _fabric()
    wide = consumer.register(hub.address, "SELECT HostName, Load FROM Probe")
    narrow = consumer.register(hub.address, "SELECT HostName FROM Probe")
    # A real-time query that only acquired HostName publishes just that.
    hub.publish("Probe", ["HostName"], [["n0"], ["n1"]], source_url="probe://h0")
    clock.advance(1.0)
    assert consumer.rows(narrow) == [["n0"], ["n1"]]
    assert consumer.delivered.get(wide, []) == []
    assert hub.stats["unsatisfied"] == 1
    # The narrow snapshot also cannot feed a later ``latest`` attach.
    late = consumer.register(
        hub.address, "SELECT HostName, Load FROM Probe", flavour="latest"
    )
    clock.advance(1.0)
    assert consumer.delivered.get(late, []) == []
    assert hub.stats["unsatisfied"] == 2
    # A full-width publish satisfies everyone again.
    _publish(hub, clock, [["n2", 0.4, 1]])
    assert consumer.rows(wide) == [["n2", 0.4]]
    assert consumer.rows(late) == [["n2", 0.4]]


# ----------------------------------------------------------------------
# Flow control
# ----------------------------------------------------------------------
def test_paused_subscription_buffers_then_drop_oldest():
    clock, network, hub, consumer, _ = _fabric()
    cq = consumer.register(
        hub.address,
        "SELECT HostName, Slot FROM Probe",
        max_buffer=2,
        overflow="drop_oldest",
    )
    assert consumer.pause(hub.address, cq)
    for slot in range(4):
        _publish(hub, clock, [[f"n{slot}", 0.5, slot]])
    assert consumer.rows(cq) == []  # nothing crossed the wire yet
    stats = hub.buffer_stats()[cq]
    assert stats["paused"] and stats["buffered"] == 2
    assert stats["dropped"] == 2 and hub.stats["dropped"] == 2
    flushed = consumer.resume(hub.address, cq)
    clock.advance(1.0)
    assert flushed == 2
    # drop_oldest kept the newest window, flushed in publish order.
    assert consumer.rows(cq) == [["n2", 2], ["n3", 3]]
    assert not hub.buffer_stats()[cq]["paused"]


def test_pause_overflow_policy_drops_the_newcomer():
    clock, network, hub, consumer, _ = _fabric()
    cq = consumer.register(
        hub.address,
        "SELECT Slot FROM Probe",
        max_buffer=2,
        overflow="pause",
    )
    consumer.pause(hub.address, cq)
    for slot in range(4):
        _publish(hub, clock, [[f"n{slot}", 0.5, slot]])
    consumer.resume(hub.address, cq)
    clock.advance(1.0)
    # The orderly prefix survives; the late batches were dropped.
    assert consumer.rows(cq) == [[0], [1]]
    assert hub.stats["dropped"] == 2


def test_bad_overflow_policy_rejected():
    clock, network, hub, consumer, _ = _fabric()
    from repro.simnet.errors import NetworkError

    with pytest.raises(NetworkError, match="unknown overflow"):
        consumer.register(
            hub.address, "SELECT Slot FROM Probe", overflow="drop_newest"
        )


# ----------------------------------------------------------------------
# Admission interplay
# ----------------------------------------------------------------------
def test_brownout_suppresses_batch_pushes_only():
    overload = _FakeOverload(PressureState.BROWNOUT)
    clock, network, hub, consumer, _ = _fabric(overload=overload)
    batch_cq = consumer.register(
        hub.address, "SELECT Slot FROM Probe", query_class="batch"
    )
    inter_cq = consumer.register(
        hub.address, "SELECT HostName FROM Probe", query_class="interactive"
    )
    _publish(hub, clock, [["n0", 0.5, 1]])
    assert consumer.rows(batch_cq) == []
    assert consumer.rows(inter_cq) == [["n0"]]
    assert hub.stats["suppressed"] == 1
    assert hub.buffer_stats()[batch_cq]["suppressed"] == 1
    # Pressure relaxes: batch pushes resume, nothing was buffered.
    overload.state = PressureState.NORMAL
    _publish(hub, clock, [["n1", 0.5, 2]])
    assert consumer.rows(batch_cq) == [[2]]


def test_shed_state_refuses_batch_registration_with_typed_shed():
    overload = _FakeOverload(PressureState.SHED)
    clock, network, hub, consumer, _ = _fabric(overload=overload)
    with pytest.raises(OverloadError) as exc:
        consumer.register(
            hub.address, "SELECT Slot FROM Probe", query_class="batch"
        )
    assert exc.value.retry_after == 3.0
    assert exc.value.query_class == "batch"
    assert consumer.stats["shed"] == 1
    assert hub.stats["shed"] == 1
    # Interactive / critical registrations still land while shedding.
    assert consumer.register(
        hub.address, "SELECT Slot FROM Probe", query_class="interactive"
    )
    assert consumer.register(
        hub.address, "SELECT Slot FROM Probe", query_class="critical"
    )


def test_subscription_cap_sheds_with_sweep_retry_hint():
    policy = GatewayPolicy(stream_max_subscriptions=1, stream_sweep_period=7.0)
    clock, network, hub, consumer, _ = _fabric(policy)
    consumer.register(hub.address, "SELECT Slot FROM Probe")
    with pytest.raises(OverloadError) as exc:
        consumer.register(hub.address, "SELECT HostName FROM Probe")
    assert exc.value.retry_after == 7.0


def test_exhausted_deadline_refused_at_hub():
    clock, network, hub, consumer, _ = _fabric()
    response = network.request(
        "client",
        hub.address,
        {
            "op": "register",
            "sql": "SELECT Slot FROM Probe",
            "host": "client",
            "port": 9,
            "deadline_budget": 0.0,
        },
    )
    assert response["ok"] is False
    assert "deadline" in response["error"]
    assert hub.subscription_count() == 0


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_register_error_paths():
    clock, network, hub, consumer, _ = _fabric()
    from repro.simnet.errors import NetworkError

    with pytest.raises(NetworkError, match="unknown flavour"):
        consumer.register(hub.address, "SELECT Slot FROM Probe", flavour="pull")
    with pytest.raises(NetworkError, match="no group"):
        consumer.register(hub.address, "SELECT Nope FROM Probe")
    assert network.request("client", hub.address, {"op": "warp"}) == {
        "ok": False,
        "error": "unknown op 'warp'",
    }
    assert network.request("client", hub.address, "gibberish") == {
        "ok": False,
        "error": "malformed request",
    }
    assert network.request("client", hub.address, {"op": "renew", "cq": 99}) == {
        "ok": False,
        "error": "missing",
    }
    assert not consumer.deregister(hub.address, 99)


def test_ignores_non_batch_datagrams():
    assert decode_batch({"kind": "other"}) is None
    assert decode_batch({"kind": "gridrm-tuples", "cq": "x"}) is None
    assert decode_batch("text") is None


# ----------------------------------------------------------------------
# Lease lifecycle: sweep, tombstone grace, clock inflation, recovery
# ----------------------------------------------------------------------
def test_sweep_tombstones_then_renewal_resurrects():
    policy = GatewayPolicy(stream_sweep_period=1000.0)  # manual sweeps
    clock, network, hub, consumer, _ = _fabric(policy)
    cq = consumer.register(hub.address, "SELECT Slot FROM Probe", lease=30.0)
    _silence_renewals(consumer)
    clock.advance(40.0)
    assert hub.sweep() == 1
    assert hub.subscription_count() == 0
    assert hub.snapshot()["tombstones"] == 1
    assert hub.stats["expired"] == 1
    # Within the grace window a renewal lands, state intact.
    assert consumer.renew(hub.address, cq, 30.0)
    assert hub.stats["resurrected"] == 1
    assert hub.subscription_count() == 1
    _publish(hub, clock, [["n0", 0.5, 1]])
    assert consumer.rows(cq) == [[1]]


def test_tombstone_gone_after_second_sweep():
    policy = GatewayPolicy(stream_sweep_period=1000.0)
    clock, network, hub, consumer, _ = _fabric(policy)
    cq = consumer.register(hub.address, "SELECT Slot FROM Probe", lease=30.0)
    _silence_renewals(consumer)
    clock.advance(40.0)
    hub.sweep()
    hub.sweep()  # grace over: the tombstone is discarded
    assert not consumer.renew(hub.address, cq, 30.0)
    assert hub.snapshot()["tombstones"] == 0


def test_renewal_in_flight_across_the_sweep_resurrects():
    """The lease-gap race the tombstone grace exists for.

    A renewal is *sent* before the lease expires, but its transport
    delay (here a WAN hop, ~40ms one way) carries the arrival past both
    the expiry instant and a sweep that runs just after it.  The sweep
    removes the subscription while the renewal is on the wire; without
    the grace the renewal would come back ``missing`` and the
    subscription would be lost despite being renewed in good faith.
    """
    policy = GatewayPolicy(stream_sweep_period=10_000.0)  # manual sweep
    clock, network, hub, consumer, _ = _fabric(policy)
    network.add_host("far-client", site="remote")  # WAN to the hub
    response = network.request(
        "far-client",
        hub.address,
        {
            "op": "register",
            "sql": "SELECT Slot FROM Probe",
            "host": "far-client",
            "port": 8501,
            "lease": 30.0,
        },
    )
    cq = response["cq"]
    expiry = hub._subs[cq].expires_at
    clock.call_at(expiry + 0.001, hub.sweep)  # sweeper wins the race...
    outcomes = []
    clock.call_at(
        expiry - 0.02,  # ...against a renewal sent while still alive
        lambda: outcomes.append(
            network.request(
                "far-client",
                hub.address,
                {"op": "renew", "cq": cq, "lease": 30.0},
            )
        ),
    )
    clock.advance(31.0)
    assert hub.stats["expired"] == 1, "sweep must have fired mid-flight"
    assert outcomes == [{"ok": True}]
    assert hub.stats["resurrected"] == 1
    assert hub.subscription_count() == 1


def test_consumer_reregisters_when_lease_lapsed_beyond_grace():
    clock, network, hub, consumer, _ = _fabric()
    cq = consumer.register(hub.address, "SELECT Slot FROM Probe", lease=60.0)
    # Simulate a lapse beyond tombstone grace: the hub forgot the cq.
    network.add_host("admin", site="t")
    assert network.request(
        "admin", hub.address, {"op": "deregister", "cq": cq}
    ) == {"ok": True}
    consumer._renew_all()
    assert consumer.stats["reregisters"] == 1
    new_cq = consumer._regs[0].cq_id
    assert new_cq != cq
    _publish(hub, clock, [["n0", 0.5, 3]])
    assert consumer.rows(new_cq) == [[3]]


def test_expired_subscription_receives_no_pushes():
    policy = GatewayPolicy(stream_sweep_period=1000.0)
    clock, network, hub, consumer, _ = _fabric(policy)
    cq = consumer.register(hub.address, "SELECT Slot FROM Probe", lease=5.0)
    _silence_renewals(consumer)  # let the lease lapse; keep the hub entry
    clock.advance(10.0)
    _publish(hub, clock, [["n0", 0.5, 1]])
    assert consumer.rows(cq) == []


# ----------------------------------------------------------------------
# Republisher: derived streams over an upstream hub
# ----------------------------------------------------------------------
def test_republisher_derives_windowed_aggregates_downstream():
    clock, network, hub, _, _ = _fabric()
    rep = Republisher(network, "rep-host")
    assert isinstance(rep, EventArchiver)  # still the archiving consumer
    assert rep.event_count() == 0
    rep.derive(
        hub.address,
        "SELECT HostName, Load FROM Probe",
        key_column="HostName",
        value_column="Load",
        window=10.0,
        group="DerivedLoad",
    )
    downstream = StreamConsumer(network, "viewer", port=8601)
    cq = downstream.register(
        rep.hub.address,
        "SELECT HostName, AvgValue, MinValue, MaxValue, Samples "
        "FROM DerivedLoad",
    )
    _publish(hub, clock, [["n0", 1.0, 1], ["n1", 3.0, 2]])
    _publish(hub, clock, [["n0", 2.0, 3], ["bad", "oops", 4]])
    clock.advance(12.0)  # close the window
    assert rep.stats["samples"] == 3
    assert rep.stats["skipped_rows"] == 1  # the non-numeric Load
    assert rep.stats["windows"] == 1
    (batch,) = downstream.delivered[cq]
    assert batch["source_url"] == "republish://rep-host/DerivedLoad"
    assert batch["rows"] == [
        ["n0", 1.5, 1.0, 2.0, 2],
        ["n1", 3.0, 3.0, 3.0, 1],
    ]
    # An empty window publishes nothing.
    clock.advance(10.0)
    assert rep.stats["windows"] == 1
    rep.stop()
    downstream.stop()


def test_republisher_rejects_nonpositive_window():
    clock, network, hub, _, _ = _fabric()
    rep = Republisher(network, "rep-host")
    with pytest.raises(ValueError, match="window"):
        rep.derive(
            hub.address,
            "SELECT HostName, Load FROM Probe",
            key_column="HostName",
            value_column="Load",
            window=0.0,
            group="DerivedLoad",
        )


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def test_subscribe_trace_reparents_remote_context():
    clock = VirtualClock()
    network = Network(clock, seed=0)
    network.add_host("hub-host", site="t")
    schema = GlueSchema("t-1", groups=(PROBE,))
    hub_tracer = Tracer(clock)
    hub = StreamHub(
        network,
        "hub-host",
        plans=PlanCache(schema),
        schema=schema,
        policy=GatewayPolicy(),
        tracer=hub_tracer,
    )
    client_tracer = Tracer(clock)
    consumer = StreamConsumer(network, "client", tracer=client_tracer)
    _publish(hub, clock, [["n0", 0.7, 1]])
    with client_tracer.start_trace("attach-probe"):
        consumer.register(
            hub.address, "SELECT HostName FROM Probe", flavour="latest"
        )
    client_trace_id = next(
        t.trace_id for t in client_tracer.traces() if t.name == "attach-probe"
    )
    subscribe = [t for t in hub_tracer.traces() if t.name == "subscribe"]
    assert len(subscribe) == 1
    attrs = subscribe[0].root.attrs
    assert attrs["remote_trace"] == client_trace_id
    assert attrs["flavour"] == "latest"
    assert attrs["replayed"] == 1
    # The attach replay ran under its own span inside the subscribe trace.
    assert any(s.name == "replay" for s in subscribe[0].spans)


def test_push_spans_nest_under_the_live_query_trace():
    policy = GatewayPolicy(streaming_enabled=True)
    network, (site,) = build_testbed(
        n_hosts=2, agents=("snmp",), seed=0, policy=policy
    )
    gw = site.gateway
    network.clock.advance(60.0)
    consumer = StreamConsumer(network, "viewer")
    consumer.register(
        gw.streams.address, "SELECT HostName, CPUUtilization FROM Processor"
    )
    result = gw.query(
        list(site.source_urls), "SELECT * FROM Processor",
        mode=QueryMode.REALTIME,
    )
    network.clock.advance(1.0)
    assert consumer.rows(consumer._regs[0].cq_id)
    trace = gw.tracer.get(result.trace_id)
    pushes = [s for s in trace.spans if s.name == "push"]
    assert pushes, "publish must trace inside the query that fetched"
    assert all(s.attrs["group"] == "Processor" for s in pushes)


# ----------------------------------------------------------------------
# Gateway wiring, console and servlet surfaces
# ----------------------------------------------------------------------
def test_streaming_default_off_and_gateway_wiring():
    network, (site,) = build_testbed(n_hosts=2, agents=("snmp",), seed=0)
    gw = site.gateway
    assert gw.policy.streaming_enabled is False
    assert gw.streams is None
    assert gw.stats()["streams"] == {"enabled": False}
    from repro.web.console import Console

    assert "DISABLED" in Console(gw).streams_panel()


def test_console_and_servlet_render_stream_state():
    policy = GatewayPolicy(streaming_enabled=True)
    network, (site,) = build_testbed(
        n_hosts=2, agents=("snmp",), seed=0, policy=policy
    )
    gw = site.gateway
    network.clock.advance(60.0)
    consumer = StreamConsumer(network, "viewer")
    consumer.register(
        gw.streams.address,
        "SELECT HostName FROM Processor",
        query_class="batch",
    )
    gw.query(
        list(site.source_urls), "SELECT * FROM Processor",
        mode=QueryMode.REALTIME,
    )
    network.clock.advance(1.0)
    from repro.web.console import Console
    from repro.web.servlet import GatewayServlet, http_get

    panel = Console(gw).streams_panel()
    assert "subscriptions: 1 live" in panel
    assert "batch" in panel and "Processor" in panel
    servlet = GatewayServlet(gw)
    network.add_host("browser", site="ops")
    code, body = http_get(network, "browser", servlet.address, "/streams")
    assert code == 200 and "Continuous queries" in body
    stats = gw.stats()["streams"]
    assert stats["subscriptions"] == 1 and stats["pushes"] >= 1
    gw.shutdown()
    assert gw.streams._sweep_task is None


def test_race_detector_knows_stream_disciplines():
    from repro.analysis.races import Discipline, RaceDetector

    det = RaceDetector.standard(VirtualClock())
    assert det._disciplines["stream.subs"] is Discipline.EXCLUSIVE
    assert det._disciplines["stream.push"] is Discipline.COMMUTATIVE


def test_flavours_constant_is_the_rgma_triple():
    assert FLAVOURS == ("stream", "latest", "history")
