"""Unit tests for inter-gateway event subscriptions (paper §3.1.5)."""

import pytest

from repro.agents import snmp as wire
from repro.core.events import Event
from repro.gma.subscription import (
    EventPublisher,
    EventSubscriber,
    decode_event,
    encode_event,
)
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def rig():
    clock = VirtualClock()
    network = Network(clock, seed=71)
    site = build_site(
        network,
        name="pub",
        n_hosts=2,
        agents=("snmp",),
        seed=71,
        snmp_trap_threshold=0.0,  # every threshold check fires a trap
    )
    publisher = EventPublisher(site.gateway)
    network.add_host("consumer-box", site="elsewhere")
    subscriber = EventSubscriber(network, "consumer-box")
    return network, site, publisher, subscriber


class TestWireFormat:
    def test_round_trip(self):
        event = Event("h", "load.high", "warning", 12.5, {"k": 1}, "snmp-trap")
        assert decode_event(encode_event(event)) == event

    def test_garbage_rejected(self):
        assert decode_event("nope") is None
        assert decode_event({"kind": "other"}) is None
        assert decode_event({"kind": "gridrm-event"}) is None  # missing fields


class TestSubscription:
    def test_events_flow_to_subscriber(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address)
        network.clock.advance(120.0)  # traps fire, pump runs, pushes flow
        assert got
        assert got[0].name == "load.high"
        assert publisher.stats["published"] == len(got)

    def test_name_prefix_filter(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address, name_prefix="nonexistent.")
        network.clock.advance(120.0)
        assert got == []

    def test_source_host_filter(self, rig):
        network, site, publisher, subscriber = rig
        target = site.host_names()[0]
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address, source_host=target)
        network.clock.advance(120.0)
        assert got and all(e.source_host == target for e in got)

    def test_unsubscribe_stops_flow(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        sid = subscriber.subscribe(publisher.address)
        network.clock.advance(60.0)
        n = len(got)
        assert subscriber.unsubscribe(publisher.address, sid)
        network.clock.advance(60.0)
        assert len(got) == n

    def test_unsubscribe_unknown_id(self, rig):
        network, site, publisher, subscriber = rig
        assert not subscriber.unsubscribe(publisher.address, 999)


class TestLeases:
    def test_expired_lease_stops_delivery_and_sweeps(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address, lease=30.0)
        network.clock.advance(29.0)
        during_lease = len(got)
        network.clock.advance(120.0)
        assert len(got) == during_lease
        assert publisher.subscriber_count() == 0  # swept
        assert publisher.stats["expired"] == 1

    def test_renew_extends_lease(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        sid = subscriber.subscribe(publisher.address, lease=30.0)
        network.clock.advance(25.0)
        assert subscriber.renew(publisher.address, sid, 300.0)
        n = len(got)
        network.clock.advance(60.0)
        assert len(got) > n

    def test_renew_unknown_id(self, rig):
        network, site, publisher, subscriber = rig
        assert not subscriber.renew(publisher.address, 12345, 10.0)


class TestGatewayToGateway:
    def test_alerts_propagate_to_remote_gateway(self):
        """A site-b operator subscribes to site-a's gateway alerts —
        the paper's inter-gateway event propagation, using the alert
        monitor as the event source."""
        from repro.core.alerts import AlertRule

        clock = VirtualClock()
        network = Network(clock, seed=72)
        a = build_site(network, name="prod", n_hosts=2, agents=("snmp",), seed=1)
        b = build_site(network, name="noc", n_hosts=1, agents=("snmp",), seed=2)
        clock.advance(10.0)

        publisher = EventPublisher(a.gateway)
        subscriber = EventSubscriber(network, b.gateway.host, port=8402)
        remote_events = []
        subscriber.on_event(remote_events.append)
        subscriber.subscribe(publisher.address, name_prefix="alert.")

        a.gateway.alerts.add_rule(
            AlertRule(
                name="cpu-busy",
                urls=[a.url_for("snmp")],
                sql="SELECT HostName, CPUUtilization FROM Processor "
                    "WHERE CPUUtilization >= 0",
                period=15.0,
                use_cache=False,
                rearm_after=0.0,
            )
        )
        clock.advance(40.0)
        assert remote_events
        assert remote_events[0].name == "alert.cpu-busy"
        # The event crossed the WAN: source is in site 'prod'.
        assert network.site_of(remote_events[0].source_host) == "prod"
