"""Unit tests for inter-gateway event subscriptions (paper §3.1.5)."""

import pytest

from repro.agents import snmp as wire
from repro.core.events import Event
from repro.gma.subscription import (
    EventPublisher,
    EventSubscriber,
    decode_event,
    encode_event,
)
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def rig():
    clock = VirtualClock()
    network = Network(clock, seed=71)
    site = build_site(
        network,
        name="pub",
        n_hosts=2,
        agents=("snmp",),
        seed=71,
        snmp_trap_threshold=0.0,  # every threshold check fires a trap
    )
    publisher = EventPublisher(site.gateway)
    network.add_host("consumer-box", site="elsewhere")
    subscriber = EventSubscriber(network, "consumer-box")
    return network, site, publisher, subscriber


class TestWireFormat:
    def test_round_trip(self):
        event = Event("h", "load.high", "warning", 12.5, {"k": 1}, "snmp-trap")
        assert decode_event(encode_event(event)) == event

    def test_garbage_rejected(self):
        assert decode_event("nope") is None
        assert decode_event({"kind": "other"}) is None
        assert decode_event({"kind": "gridrm-event"}) is None  # missing fields


class TestSubscription:
    def test_events_flow_to_subscriber(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address)
        network.clock.advance(120.0)  # traps fire, pump runs, pushes flow
        assert got
        assert got[0].name == "load.high"
        assert publisher.stats["published"] == len(got)

    def test_name_prefix_filter(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address, name_prefix="nonexistent.")
        network.clock.advance(120.0)
        assert got == []

    def test_source_host_filter(self, rig):
        network, site, publisher, subscriber = rig
        target = site.host_names()[0]
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address, source_host=target)
        network.clock.advance(120.0)
        assert got and all(e.source_host == target for e in got)

    def test_unsubscribe_stops_flow(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        sid = subscriber.subscribe(publisher.address)
        network.clock.advance(60.0)
        n = len(got)
        assert subscriber.unsubscribe(publisher.address, sid)
        network.clock.advance(60.0)
        assert len(got) == n

    def test_unsubscribe_unknown_id(self, rig):
        network, site, publisher, subscriber = rig
        assert not subscriber.unsubscribe(publisher.address, 999)


class TestLeases:
    def test_expired_lease_stops_delivery_and_sweeps(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address, lease=30.0)
        network.clock.advance(29.0)
        during_lease = len(got)
        network.clock.advance(120.0)
        assert len(got) == during_lease
        assert publisher.subscriber_count() == 0  # swept
        assert publisher.stats["expired"] == 1

    def test_renew_extends_lease(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        sid = subscriber.subscribe(publisher.address, lease=30.0)
        network.clock.advance(25.0)
        assert subscriber.renew(publisher.address, sid, 300.0)
        n = len(got)
        network.clock.advance(60.0)
        assert len(got) > n

    def test_renew_unknown_id(self, rig):
        network, site, publisher, subscriber = rig
        assert not subscriber.renew(publisher.address, 12345, 10.0)


class TestGatewayToGateway:
    def test_alerts_propagate_to_remote_gateway(self):
        """A site-b operator subscribes to site-a's gateway alerts —
        the paper's inter-gateway event propagation, using the alert
        monitor as the event source."""
        from repro.core.alerts import AlertRule

        clock = VirtualClock()
        network = Network(clock, seed=72)
        a = build_site(network, name="prod", n_hosts=2, agents=("snmp",), seed=1)
        b = build_site(network, name="noc", n_hosts=1, agents=("snmp",), seed=2)
        clock.advance(10.0)

        publisher = EventPublisher(a.gateway)
        subscriber = EventSubscriber(network, b.gateway.host, port=8402)
        remote_events = []
        subscriber.on_event(remote_events.append)
        subscriber.subscribe(publisher.address, name_prefix="alert.")

        a.gateway.alerts.add_rule(
            AlertRule(
                name="cpu-busy",
                urls=[a.url_for("snmp")],
                sql="SELECT HostName, CPUUtilization FROM Processor "
                    "WHERE CPUUtilization >= 0",
                period=15.0,
                use_cache=False,
                rearm_after=0.0,
            )
        )
        clock.advance(40.0)
        assert remote_events
        assert remote_events[0].name == "alert.cpu-busy"
        # The event crossed the WAN: source is in site 'prod'.
        assert network.site_of(remote_events[0].source_host) == "prod"


class TestBackpressure:
    """Bounded per-subscription buffers: a slow consumer pauses and the
    publisher buffers (bounded, counted drops) instead of pushing."""

    def test_pause_buffers_and_resume_flushes_in_order(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        sid = subscriber.subscribe(publisher.address, max_buffer=1000)
        network.clock.advance(60.0)
        live = len(got)
        assert live > 0

        assert subscriber.pause(publisher.address, sid)
        network.clock.advance(60.0)
        assert len(got) == live  # nothing pushed while paused
        stats = publisher.buffer_stats()[sid]
        assert stats["paused"] and stats["buffered"] > 0

        flushed = subscriber.resume(publisher.address, sid)
        assert flushed == stats["buffered"]
        network.clock.advance(1.0)  # let the datagrams deliver
        assert len(got) >= live + flushed
        assert publisher.buffer_stats()[sid]["buffered"] == 0

    def test_drop_oldest_keeps_newest(self, rig):
        network, site, publisher, subscriber = rig
        sid = subscriber.subscribe(
            publisher.address, max_buffer=3, overflow="drop_oldest"
        )
        assert subscriber.pause(publisher.address, sid)
        network.clock.advance(300.0)
        stats = publisher.buffer_stats()[sid]
        assert stats["buffered"] == 3
        assert stats["dropped"] > 0
        assert publisher.stats["dropped"] == stats["dropped"]
        # The three retained events are the *newest* three.
        sub = publisher._subs[sid]
        buffered_times = [e["time"] for e in sub.buffer]
        assert buffered_times == sorted(buffered_times)
        assert buffered_times[-1] > buffered_times[0]

    def test_pause_overflow_keeps_prefix(self, rig):
        network, site, publisher, subscriber = rig
        sid = subscriber.subscribe(
            publisher.address, max_buffer=3, overflow="pause"
        )
        assert subscriber.pause(publisher.address, sid)
        network.clock.advance(300.0)
        sub = publisher._subs[sid]
        assert len(sub.buffer) == 3
        assert sub.dropped > 0
        # The retained events are the *first* three (orderly prefix).
        first_batch = [e["time"] for e in sub.buffer]
        network.clock.advance(60.0)
        assert [e["time"] for e in sub.buffer] == first_batch

    def test_unknown_overflow_policy_rejected(self, rig):
        network, site, publisher, subscriber = rig
        from repro.simnet.errors import NetworkError

        with pytest.raises(NetworkError, match="rejected"):
            subscriber.subscribe(
                publisher.address, max_buffer=3, overflow="teleport"
            )

    def test_legacy_subscribe_tuple_still_accepted(self, rig):
        network, site, publisher, subscriber = rig
        sid = subscriber.subscribe(publisher.address)  # 6-tuple wire form
        stats = publisher.buffer_stats()[sid]
        assert stats["max_buffer"] == site.gateway.policy.subscription_buffer_limit
        assert stats["overflow"] == "drop_oldest"


class TestTombstoneGrace:
    """A swept subscription stays renew-resurrectable for one sweep
    period — the regression guard for the lease-gap race where a
    renewal already on the wire loses to the sweeper."""

    def test_renewal_in_flight_across_sweep_resurrects(self, rig):
        network, site, publisher, subscriber = rig
        got = []
        subscriber.on_event(got.append)
        # The subscriber sits in another site: ~40ms one-way WAN delay.
        sid = subscriber.subscribe(publisher.address, lease=30.0)
        expiry = publisher._subs[sid].expires_at
        network.clock.call_at(expiry + 0.001, publisher.sweep)
        outcomes = []
        network.clock.call_at(
            expiry - 0.02,  # sent while alive, arrives after the sweep
            lambda: outcomes.append(
                subscriber.renew(publisher.address, sid, 300.0)
            ),
        )
        network.clock.advance(31.0)
        assert publisher.stats["expired"] == 1, "sweep must win the race"
        assert outcomes == [True]
        assert publisher.stats["resurrected"] == 1
        assert publisher.subscriber_count() == 1
        # The resurrected subscription keeps receiving events.
        n = len(got)
        network.clock.advance(60.0)
        assert len(got) > n

    def test_tombstone_discarded_after_one_sweep_period(self, rig):
        network, site, publisher, subscriber = rig
        sid = subscriber.subscribe(publisher.address, lease=10.0)
        network.clock.advance(15.0)
        publisher.sweep()
        publisher.sweep()  # grace over
        assert not subscriber.renew(publisher.address, sid, 10.0)
        assert publisher.subscriber_count() == 0

    def test_unsubscribe_reaches_into_tombstones(self, rig):
        network, site, publisher, subscriber = rig
        sid = subscriber.subscribe(publisher.address, lease=10.0)
        network.clock.advance(15.0)
        publisher.sweep()
        assert subscriber.unsubscribe(publisher.address, sid)
        # Gone for good: a renewal within the grace window finds nothing.
        assert not subscriber.renew(publisher.address, sid, 10.0)
