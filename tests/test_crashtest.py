"""Seeded crash-recovery soak: the durability headline invariant.

Runs ``repro.crashtest.run_crashtest`` — record, power-fail the disk,
rebuild the gateway — and asserts what the durable history store
promises:

* **acked-prefix equality** — every recovery serves exactly the
  pre-crash acknowledged rows per GLUE group (no acked row lost, no
  torn or unacked row resurrected);
* **quarantine, not refusal** — a bit-flipped sealed segment is
  quarantined with a GRM401 finding surfaced through the gateway's
  startup findings, and the gateway still boots;
* **replay identity** — the same seed reproduces a byte-identical run
  (the report's SHA-256 signature matches).

Kept to few cycles so the soak stays cheap in CI; the ``crash-smoke``
job sweeps 20 seeds through the CLI.
"""

import pytest

from repro.cli import main
from repro.crashtest import run_crashtest


def soak(seed, **overrides):
    # Default 3 hosts: 4 WAL records per round (3 snmp batches + 1
    # ganglia batch) against an fsync interval of 3 keeps the crash off
    # the group-commit boundary.
    kwargs = {"seed": seed, "cycles": 3, "rounds": 5}
    kwargs.update(overrides)
    return run_crashtest(**kwargs)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_invariants_hold_across_seeds(seed):
    report = soak(seed)
    assert report.ok, report.violations
    assert report.crashes == 3
    assert report.rows_verified > 0
    assert report.rows_recovered > 0


def test_fault_classes_actually_exercised():
    report = soak(0)
    # Defaults are tuned so crashes land on a live WAL tail and odd
    # cycles flip a sealed segment — a run that never tears or
    # quarantines is testing nothing.
    assert report.torn_tails > 0
    assert report.bit_flips > 0
    assert report.segments_quarantined > 0
    assert report.faults["disk_crashes"] == report.crashes


def test_replay_identity_same_seed():
    first = soak(4)
    second = soak(4)
    assert first.signature == second.signature
    assert first.as_dict() == second.as_dict()


def test_different_seeds_produce_different_runs():
    assert soak(0).signature != soak(1).signature


def test_quarantine_recorded_in_recovery_summaries():
    report = soak(0)
    quarantining = [r for r in report.recoveries if r["segments_quarantined"]]
    assert quarantining
    for summary in quarantining:
        assert any("GRM401" in f for f in summary["findings"])


def test_validation():
    with pytest.raises(ValueError):
        run_crashtest(cycles=0)
    with pytest.raises(ValueError):
        run_crashtest(rounds=0)


class TestCli:
    def test_crashtest_command_green(self, capsys):
        rc = main(["crashtest", "--seed", "0", "--cycles", "2", "--hosts", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Crashtest: seed=0" in out
        assert "invariants: OK" in out

    def test_crashtest_report_mentions_signature(self, capsys):
        main(["crashtest", "--seed", "1", "--cycles", "1", "--hosts", "2"])
        out = capsys.readouterr().out
        assert "replay signature:" in out
