"""The virtual-lane race detector: happens-before, disciplines, hooks."""

import pytest

from repro.analysis import races
from repro.analysis.races import Discipline, RaceDetector, unordered
from repro.simnet.clock import VirtualClock


@pytest.fixture
def clock():
    return VirtualClock()


class TestUnordered:
    def test_sibling_branches_are_unordered(self):
        assert unordered(((1, 0),), ((1, 1),))

    def test_same_lane_is_ordered(self):
        assert not unordered(((1, 0),), ((1, 0),))

    def test_prefix_is_enclosing_context(self):
        assert not unordered(((1, 0),), ((1, 0), (2, 1)))
        assert not unordered((), ((1, 0),))

    def test_different_scopes_are_ordered(self):
        # Scope 2 can only open after scope 1 joined (ids are global).
        assert not unordered(((1, 0),), ((2, 0),))

    def test_nested_siblings_are_unordered(self):
        assert unordered(((1, 0), (2, 0)), ((1, 0), (2, 1)))

    def test_outer_sibling_dominates_inner_frames(self):
        assert unordered(((1, 0), (2, 0)), ((1, 1), (3, 0)))


class TestLanePlumbing:
    def test_sequential_lane_is_empty(self, clock):
        assert clock.lane == ()

    def test_branch_pushes_one_frame(self, clock):
        with clock.concurrent() as scope:
            with scope.branch():
                assert clock.lane == ((scope.scope_id, 0),)
            with scope.branch():
                assert clock.lane == ((scope.scope_id, 1),)
        assert clock.lane == ()

    def test_nested_scopes_stack_frames(self, clock):
        with clock.concurrent() as outer:
            with outer.branch():
                with clock.concurrent() as inner:
                    with inner.branch():
                        assert clock.lane == (
                            (outer.scope_id, 0),
                            (inner.scope_id, 0),
                        )


class TestDetector:
    def detect(self, clock, discipline, accesses):
        """Run ``accesses`` [(kind, digest)] as sibling branches."""
        det = RaceDetector(clock)
        det.register("s", discipline)
        with clock.concurrent() as scope:
            for kind, digest in accesses:
                with scope.branch():
                    det.note("s", "k", kind, digest=digest)
        return det

    def test_exclusive_write_write_is_grm551(self, clock):
        det = self.detect(clock, Discipline.EXCLUSIVE, [("w", None), ("w", None)])
        assert [f.rule_id for f in det.findings] == ["GRM551"]
        assert det.findings[0].path == "state://s"
        assert det.findings[0].symbol == "k"

    def test_exclusive_read_write_is_grm552(self, clock):
        det = self.detect(clock, Discipline.EXCLUSIVE, [("r", None), ("w", None)])
        assert [f.rule_id for f in det.findings] == ["GRM552"]

    def test_read_read_never_flagged(self, clock):
        det = self.detect(clock, Discipline.EXCLUSIVE, [("r", None), ("r", None)])
        assert det.findings == []

    def test_commutative_writes_pass_but_read_flagged(self, clock):
        det = self.detect(clock, Discipline.COMMUTATIVE, [("w", None), ("w", None)])
        assert det.findings == []
        det = self.detect(clock, Discipline.COMMUTATIVE, [("w", None), ("r", None)])
        assert [f.rule_id for f in det.findings] == ["GRM552"]

    def test_value_discipline_compares_digests(self, clock):
        det = self.detect(clock, Discipline.VALUE, [("w", "aa"), ("w", "aa")])
        assert det.findings == []
        det = self.detect(clock, Discipline.VALUE, [("w", "aa"), ("w", "bb")])
        assert [f.rule_id for f in det.findings] == ["GRM551"]
        det = self.detect(clock, Discipline.VALUE, [("r", None), ("w", "aa")])
        assert det.findings == []

    def test_unregistered_state_defaults_exclusive(self, clock):
        det = RaceDetector(clock)
        with clock.concurrent() as scope:
            with scope.branch():
                det.note("mystery", "k", "w")
            with scope.branch():
                det.note("mystery", "k", "w")
        assert [f.rule_id for f in det.findings] == ["GRM551"]

    def test_sequential_access_resets_the_cell(self, clock):
        det = RaceDetector(clock)
        det.register("s", Discipline.EXCLUSIVE)
        with clock.concurrent() as scope:
            with scope.branch():
                det.note("s", "k", "w")
        det.note("s", "k", "w")  # joined: happens-after the branch write
        with clock.concurrent() as scope:
            with scope.branch():
                det.note("s", "k", "w")
        assert det.findings == []

    def test_sequential_writes_never_race(self, clock):
        det = RaceDetector(clock)
        det.register("s", Discipline.EXCLUSIVE)
        det.note("s", "k", "w")
        det.note("s", "k", "w")
        assert det.findings == []

    def test_distinct_keys_do_not_interact(self, clock):
        det = RaceDetector(clock)
        det.register("s", Discipline.EXCLUSIVE)
        with clock.concurrent() as scope:
            with scope.branch():
                det.note("s", "a", "w")
            with scope.branch():
                det.note("s", "b", "w")
        assert det.findings == []

    def test_findings_deduped_per_state_key(self, clock):
        det = RaceDetector(clock)
        det.register("s", Discipline.EXCLUSIVE)
        for _ in range(3):
            with clock.concurrent() as scope:
                with scope.branch():
                    det.note("s", "k", "w")
                with scope.branch():
                    det.note("s", "k", "w")
        assert len(det.findings) == 1

    def test_message_names_lanes_and_sites(self, clock):
        det = RaceDetector(clock)
        det.register("s", Discipline.EXCLUSIVE)
        with clock.concurrent() as scope:
            with scope.branch():
                det.note("s", "k", "w", site="writer-a")
            with scope.branch():
                det.note("s", "k", "w", site="writer-b")
        (f,) = det.findings
        sid = scope.scope_id
        assert f"s{sid}b0" in f.message and f"s{sid}b1" in f.message
        assert "writer-a vs writer-b" in f.message

    def test_accesses_noted_counts_everything(self, clock):
        det = RaceDetector(clock)
        det.note("s", "k", "w")
        with clock.concurrent() as scope:
            with scope.branch():
                det.note("s", "k", "r")
        assert det.accesses_noted == 2

    def test_reset_window_keeps_findings(self, clock):
        det = self.detect(clock, Discipline.EXCLUSIVE, [("w", None), ("w", None)])
        det.reset_window()
        assert len(det.findings) == 1
        # Fresh window: the old branch accesses no longer pair up.
        with clock.concurrent() as scope:
            with scope.branch():
                det.note("s", "k2", "w")
        assert len(det.findings) == 1

    def test_report_is_a_sorted_analysis_report(self, clock):
        det = RaceDetector(clock)
        with clock.concurrent() as scope:
            with scope.branch():
                det.note("zz", "k", "w")
                det.note("aa", "k", "w")
            with scope.branch():
                det.note("zz", "k", "w")
                det.note("aa", "k", "w")
        report = det.report()
        assert [f.path for f in report.findings] == ["state://aa", "state://zz"]


class TestAmbientHook:
    def test_note_without_active_detector_is_noop(self, clock):
        races.note("s", "k", "w")  # must not raise, nothing active

    def test_activate_installs_and_restores(self, clock):
        det = RaceDetector(clock)
        assert races.ACTIVE is None
        with races.activate(det) as active:
            assert active is det and races.ACTIVE is det
            races.note("s", "k", "w")
        assert races.ACTIVE is None
        assert det.accesses_noted == 1

    def test_activate_restores_on_error(self, clock):
        det = RaceDetector(clock)
        with pytest.raises(RuntimeError):
            with races.activate(det):
                raise RuntimeError("boom")
        assert races.ACTIVE is None


class TestInjectionAcceptance:
    """ISSUE acceptance: a deliberately injected unordered-branch shared
    write is caught by the detector through the real ambient hooks."""

    def test_injected_unordered_gauge_writes_are_caught(self, clock):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(clock)
        gauge = registry.gauge("test.gauge")
        det = RaceDetector.standard(clock)
        with races.activate(det):
            with clock.concurrent() as scope:
                with scope.branch():
                    gauge.set(1.0)
                with scope.branch():
                    gauge.set(2.0)
        assert [f.rule_id for f in det.findings] == ["GRM551"]
        assert det.findings[0].path == "state://metrics.gauge"
        assert det.findings[0].symbol == "test.gauge"

    def test_injected_unordered_health_write_read_is_caught(self, clock):
        from repro.core.health import HealthTracker
        from repro.core.policy import GatewayPolicy

        health = HealthTracker(clock, GatewayPolicy())
        det = RaceDetector.standard(clock)
        with races.activate(det):
            with clock.concurrent() as scope:
                with scope.branch():
                    health.record_failure("jdbc:snmp://h1", "timeout")
                with scope.branch():
                    health.allow_request("jdbc:snmp://h1")
        assert [f.rule_id for f in det.findings] == ["GRM552"]

    def test_pinned_admission_does_not_race(self, clock):
        """The production idiom: decide admission before the scope opens,
        pin it, and let branch outcomes apply canonically at exit."""
        from repro.core.health import HealthTracker
        from repro.core.policy import GatewayPolicy

        health = HealthTracker(clock, GatewayPolicy())
        det = RaceDetector.standard(clock)
        url = "jdbc:snmp://h1"
        with races.activate(det):
            decision = health.allow_request(url)
            with health.pin(url, decision):
                with clock.concurrent() as scope:
                    with scope.branch():
                        health.record_failure(url, "timeout")
                    with scope.branch():
                        assert health.allow_request(url) is decision
        assert det.findings == []
        # The deferred observation landed once the pin released.
        assert health.scoreboard()[url]["total_failures"] == 1


class TestGatewayAnalyzeMerge:
    def test_attached_detector_findings_flow_into_analyze(self):
        from repro.testbed import build_testbed

        network, (site,) = build_testbed(n_hosts=1, agents=("snmp",), seed=7)
        gw = site.gateway
        det = RaceDetector.standard(network.clock)
        with races.activate(det):
            with network.clock.concurrent() as scope:
                with scope.branch():
                    det.note("health", "jdbc:snmp://x", "w")
                with scope.branch():
                    det.note("health", "jdbc:snmp://x", "w")
        gw.race_detector = det
        report = gw.analyze()
        assert "GRM551" in {f.rule_id for f in report.findings}
