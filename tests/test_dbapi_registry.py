"""Unit tests for the driver registry (paper Tables 1-2 semantics)."""

import pytest

from repro.dbapi.exceptions import SQLConnectionException, SQLException
from repro.dbapi.interfaces import Connection, Driver
from repro.dbapi.registry import DriverRegistry, register_all
from repro.dbapi.url import JdbcUrl


class FakeConnection(Connection):
    def __init__(self):
        self._closed = False

    def close(self):
        self._closed = True

    def is_closed(self):
        return self._closed


class FakeDriver(Driver):
    """Accepts a fixed protocol; optionally fails to connect."""

    def __init__(self, protocol, *, connect_ok=True, accept_wildcard=False):
        self.protocol = protocol
        self.connect_ok = connect_ok
        self.accept_wildcard = accept_wildcard
        self.connect_calls = 0

    def accepts_url(self, url):
        if url.protocol == self.protocol:
            return True
        return url.is_wildcard and self.accept_wildcard

    def connect(self, url, info=None):
        self.connect_calls += 1
        if not self.connect_ok:
            raise SQLConnectionException(f"{self.protocol}: agent down")
        return FakeConnection()

    def name(self):
        return f"fake-{self.protocol}"


class TestRegistration:
    def test_register_and_len(self):
        reg = DriverRegistry()
        reg.register(FakeDriver("a"))
        assert len(reg) == 1

    def test_register_non_driver_rejected(self):
        reg = DriverRegistry()
        with pytest.raises(SQLException):
            reg.register(object())

    def test_reregister_same_instance_noop(self):
        reg = DriverRegistry()
        d = FakeDriver("a")
        reg.register(d)
        reg.register(d)
        assert len(reg) == 1

    def test_unregister(self):
        reg = DriverRegistry()
        d = FakeDriver("a")
        reg.register(d)
        assert reg.unregister(d)
        assert not reg.unregister(d)
        assert len(reg) == 0

    def test_register_all(self):
        reg = DriverRegistry()
        register_all(reg, [FakeDriver("a"), FakeDriver("b")])
        assert reg.driver_names() == ["fake-a", "fake-b"]

    def test_contains(self):
        reg = DriverRegistry()
        d = FakeDriver("a")
        reg.register(d)
        assert d in reg
        assert FakeDriver("a") not in reg  # identity, not equality


class TestLocate:
    def test_first_accepting_driver_wins(self):
        reg = DriverRegistry()
        d1, d2 = FakeDriver("x"), FakeDriver("x")
        register_all(reg, [d1, d2])
        assert reg.locate("jdbc:x://h/p") is d1

    def test_registration_order_respected(self):
        reg = DriverRegistry()
        d1, d2 = FakeDriver("a", accept_wildcard=True), FakeDriver("b", accept_wildcard=True)
        register_all(reg, [d2, d1])
        assert reg.locate("jdbc://h/p") is d2

    def test_no_match_raises(self):
        reg = DriverRegistry()
        reg.register(FakeDriver("a"))
        with pytest.raises(SQLException):
            reg.locate("jdbc:zzz://h/p")

    def test_locate_all(self):
        reg = DriverRegistry()
        drivers = [FakeDriver("a", accept_wildcard=True), FakeDriver("b", accept_wildcard=True)]
        register_all(reg, drivers)
        assert reg.locate_all(JdbcUrl.parse("jdbc://h/p")) == drivers

    def test_driver_raising_in_accepts_is_skipped(self):
        class Broken(FakeDriver):
            def accepts_url(self, url):
                raise SQLException("boom")

        reg = DriverRegistry()
        register_all(reg, [Broken("a"), FakeDriver("a")])
        assert reg.locate("jdbc:a://h/p").name() == "fake-a"


class TestConnect:
    def test_connect_through_first_working_driver(self):
        reg = DriverRegistry()
        bad = FakeDriver("x", connect_ok=False)
        good = FakeDriver("x")
        register_all(reg, [bad, good])
        conn = reg.connect("jdbc:x://h/p")
        assert isinstance(conn, FakeConnection)
        assert bad.connect_calls == 1 and good.connect_calls == 1

    def test_all_failing_raises_connection_error(self):
        reg = DriverRegistry()
        register_all(reg, [FakeDriver("x", connect_ok=False)])
        with pytest.raises(SQLConnectionException):
            reg.connect("jdbc:x://h/p")

    def test_connect_no_driver_raises(self):
        with pytest.raises(SQLException):
            DriverRegistry().connect("jdbc:x://h/p")
