"""Unit tests for native-to-GLUE mapping and unit conversion."""

import pytest

from repro.glue.mapping import (
    GroupMapping,
    MappingRule,
    SchemaMapping,
    UnitConversionError,
    convert_unit,
)
from repro.glue.schema import STANDARD_SCHEMA


class TestConvertUnit:
    @pytest.mark.parametrize(
        "value,frm,to,expected",
        [
            (1024, "KB", "MB", 1.0),
            (1, "GB", "MB", 1024.0),
            (2_000_000, "Hz", "MHz", 2.0),
            (1.5, "GHz", "MHz", 1500.0),
            (10_000_000, "bps", "Mbps", 10.0),
            (500, "ms", "s", 0.5),
            (0.5, "fraction", "percent", 50.0),
            (2, "min", "s", 120.0),
        ],
    )
    def test_conversions(self, value, frm, to, expected):
        assert convert_unit(value, frm, to) == pytest.approx(expected)

    def test_identity_when_same(self):
        assert convert_unit(5.0, "MB", "MB") == 5.0

    def test_identity_when_blank(self):
        assert convert_unit(5.0, "", "MB") == 5.0
        assert convert_unit(5.0, "MB", "") == 5.0

    def test_unknown_pair_raises(self):
        with pytest.raises(UnitConversionError):
            convert_unit(1.0, "furlongs", "MB")

    def test_round_trip(self):
        assert convert_unit(convert_unit(7.0, "MB", "KB"), "KB", "MB") == pytest.approx(7.0)


class TestMappingRule:
    GROUP = STANDARD_SCHEMA.group("MainMemory")

    def test_basic_mapping_with_unit_conversion(self):
        rule = MappingRule("RAMSizeMB", "memTotal", unit="KB")
        assert rule.apply({"memTotal": 2048}, self.GROUP) == pytest.approx(2.0)

    def test_missing_key_yields_default_none(self):
        rule = MappingRule("RAMSizeMB", "absent")
        assert rule.apply({}, self.GROUP) is None

    def test_explicit_default(self):
        rule = MappingRule("RAMSizeMB", "absent", default=0.0)
        assert rule.apply({}, self.GROUP) == 0.0

    def test_transform_applied_before_conversion(self):
        rule = MappingRule("RAMSizeMB", "raw", unit="KB", transform=lambda v: float(v) * 2)
        assert rule.apply({"raw": "512"}, self.GROUP) == pytest.approx(1.0)

    def test_transform_failure_yields_null(self):
        rule = MappingRule("RAMSizeMB", "raw", transform=lambda v: float(v))
        assert rule.apply({"raw": "garbage"}, self.GROUP) is None

    def test_record_level_rule(self):
        host_group = STANDARD_SCHEMA.group("Host")
        rule = MappingRule("UniqueId", None, transform=lambda r: f"{r['h']}#x")
        assert rule.apply({"h": "n0"}, host_group) == "n0#x"

    def test_integer_coercion(self):
        proc = STANDARD_SCHEMA.group("Processor")
        rule = MappingRule("CPUCount", "ncpu")
        assert rule.apply({"ncpu": "4"}, proc) == 4
        assert isinstance(rule.apply({"ncpu": "4"}, proc), int)

    def test_boolean_string_coercion(self):
        host_group = STANDARD_SCHEMA.group("Host")
        rule = MappingRule("Reachable", "alive")
        assert rule.apply({"alive": "yes"}, host_group) is True
        assert rule.apply({"alive": "0"}, host_group) is False

    def test_text_coercion(self):
        proc = STANDARD_SCHEMA.group("Processor")
        rule = MappingRule("Vendor", "v")
        assert rule.apply({"v": 123}, proc) == "123"


class TestGroupMapping:
    def test_translate_fills_all_fields(self):
        gm = GroupMapping("MainMemory", [MappingRule("RAMSizeMB", "total", unit="KB")])
        row = gm.translate({"total": 1024}, STANDARD_SCHEMA)
        group = STANDARD_SCHEMA.group("MainMemory")
        assert set(row) == set(group.field_names())
        assert row["RAMSizeMB"] == 1.0
        assert row["RAMAvailableMB"] is None  # unmapped -> NULL (§3.2.3)

    def test_coverage(self):
        gm = GroupMapping("Host", [MappingRule("HostName", "h")])
        cov = gm.coverage(STANDARD_SCHEMA)
        assert 0 < cov < 1

    def test_rule_for(self):
        rule = MappingRule("HostName", "h")
        gm = GroupMapping("Host", [rule])
        assert gm.rule_for("HostName") is rule
        assert gm.rule_for("SiteName") is None


class TestSchemaMapping:
    def test_duplicate_group_rejected(self):
        with pytest.raises(ValueError):
            SchemaMapping("d", [GroupMapping("Host"), GroupMapping("Host")])

    def test_supports_and_groups(self):
        sm = SchemaMapping("d", [GroupMapping("Host"), GroupMapping("Processor")])
        assert sm.supports("Host")
        assert not sm.supports("Job")
        assert sm.groups() == ["Host", "Processor"]

    def test_unknown_group_raises(self):
        sm = SchemaMapping("d")
        with pytest.raises(KeyError):
            sm.group_mapping("Host")

    def test_translate_batch(self):
        sm = SchemaMapping("d", [GroupMapping("Host", [MappingRule("HostName", "h")])])
        rows = sm.translate("Host", [{"h": "a"}, {"h": "b"}], STANDARD_SCHEMA)
        assert [r["HostName"] for r in rows] == ["a", "b"]
