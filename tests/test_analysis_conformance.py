"""Driver conformance checker: AST rules and live-object introspection."""

import pytest

from repro.analysis.conformance import (
    check_driver,
    check_driver_class,
    check_source,
    clear_module_cache,
)
from repro.analysis.findings import Severity
from repro.analysis.rules import all_rules, rule_table, rules_by_id


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_module_cache()
    yield
    clear_module_cache()


#: The acceptance fixture: one driver committing exactly three sins —
#: a wall-clock call, a fetch_group signature missing `select`, and a
#: non-SQL exception escaping an entry point.
BAD_DRIVER = '''
import time

from repro.drivers.base import GridRmDriver


class BadDriver(GridRmDriver):
    protocol = "bad"

    def build_mapping(self):
        return None

    def probe(self, url, *, timeout=1.0):
        started = time.time()
        raise RuntimeError("native protocol blew up")

    def fetch_group(self, connection, group):
        return []
'''


class TestAcceptanceFixture:
    def test_exactly_three_findings(self):
        findings = check_source(BAD_DRIVER, "bad_driver.py")
        assert len(findings) == 3
        assert sorted(f.rule_id for f in findings) == [
            "GRM101",
            "GRM104",
            "GRM105",
        ]

    def test_finding_details(self):
        by_id = {f.rule_id: f for f in check_source(BAD_DRIVER, "bad_driver.py")}
        assert by_id["GRM101"].symbol == "time.time"
        assert by_id["GRM104"].symbol == "BadDriver.fetch_group"
        assert "select" in by_id["GRM104"].message
        assert by_id["GRM105"].symbol == "BadDriver.probe:RuntimeError"
        assert all(f.severity is Severity.ERROR for f in by_id.values())
        assert all(f.path == "bad_driver.py" for f in by_id.values())


class TestSourceRules:
    def test_clean_driver_is_clean(self):
        clean = """
from repro.drivers.base import GridRmDriver
from repro.dbapi.exceptions import SQLDataException


class CleanDriver(GridRmDriver):
    protocol = "clean"

    def build_mapping(self):
        return None

    def probe(self, url, *, timeout=1.0):
        return True

    def fetch_group(self, connection, group, select):
        raise SQLDataException("nothing to serve")
"""
        assert check_source(clean, "clean.py") == []

    def test_syntax_error_is_grm100(self):
        findings = check_source("def broken(:\n", "nope.py")
        assert [f.rule_id for f in findings] == ["GRM100"]
        assert findings[0].severity is Severity.ERROR

    def test_wall_clock_import_flagged(self):
        findings = check_source("from time import sleep\n", "x.py")
        assert [f.rule_id for f in findings] == ["GRM101"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nstamp = datetime.datetime.now()\n"
        assert [f.rule_id for f in check_source(src, "x.py")] == ["GRM101"]

    def test_raw_socket_flagged(self):
        assert [
            f.rule_id for f in check_source("import socket\n", "x.py")
        ] == ["GRM102"]

    def test_blanket_except_flagged(self):
        src = "try:\n    pass\nexcept Exception:\n    pass\n"
        assert [f.rule_id for f in check_source(src, "x.py")] == ["GRM103"]

    def test_bare_except_flagged(self):
        src = "try:\n    pass\nexcept:\n    pass\n"
        assert [f.rule_id for f in check_source(src, "x.py")] == ["GRM103"]

    def test_cleanup_and_reraise_exempt(self):
        src = (
            "try:\n"
            "    pass\n"
            "except BaseException:\n"
            "    cleanup = True\n"
            "    raise\n"
        )
        assert check_source(src, "x.py") == []

    def test_trailing_defaulted_params_tolerated(self):
        src = """
class D(GridRmDriver):
    def probe(self, url, verbose=False):
        return True
"""
        assert check_source(src, "x.py") == []

    def test_star_args_rejected(self):
        src = """
class D(GridRmDriver):
    def probe(self, url, *extras):
        return True
"""
        assert [f.rule_id for f in check_source(src, "x.py")] == ["GRM104"]

    def test_bare_reraise_in_entry_point_allowed(self):
        src = """
class D(GridRmDriver):
    def probe(self, url):
        try:
            return True
        except PortClosedError:
            raise
"""
        assert check_source(src, "x.py") == []

    def test_non_driver_class_not_signature_checked(self):
        src = """
class Helper:
    def probe(self, completely, different, shape):
        return None
"""
        assert check_source(src, "x.py") == []

    def test_transitive_subclass_is_checked(self):
        src = """
class Base(GridRmDriver):
    protocol = "b"

class Leaf(Base):
    def probe(self, wrong_name):
        raise ValueError("leak")
"""
        ids = sorted(f.rule_id for f in check_source(src, "x.py"))
        assert ids == ["GRM104", "GRM105"]


class TestLiveIntrospection:
    def test_shipped_drivers_conform(self):
        from repro.drivers import default_driver_set
        from repro.simnet.clock import VirtualClock
        from repro.simnet.network import Network

        network = Network(VirtualClock())
        network.add_host("gw", site="s")
        for driver in default_driver_set(network, gateway_host="gw"):
            assert check_driver(driver) == [], driver.name()

    def test_missing_override_is_grm106(self):
        from repro.drivers.base import GridRmDriver

        class Hollow(GridRmDriver):
            protocol = "hollow"

        ids = sorted(f.rule_id for f in check_driver_class(Hollow))
        assert ids == ["GRM106", "GRM106", "GRM106"]

    def test_missing_protocol_is_grm107(self):
        from repro.drivers.base import GridRmDriver

        class NoProto(GridRmDriver):
            def build_mapping(self):
                return None

            def probe(self, url, *, timeout=1.0):
                return False

            def fetch_group(self, connection, group, select):
                return []

        ids = [f.rule_id for f in check_driver_class(NoProto)]
        assert ids == ["GRM107"]

    def test_bad_runtime_signature_is_grm104(self):
        from repro.drivers.base import GridRmDriver

        class Crooked(GridRmDriver):
            protocol = "crooked"

            def build_mapping(self):
                return None

            def probe(self, target_url):
                return False

            def fetch_group(self, connection, group, select):
                return []

        ids = [f.rule_id for f in check_driver_class(Crooked)]
        assert ids == ["GRM104"]

    def test_non_gridrm_class_skipped(self):
        class Foreign:
            def probe(self, a, b, c):
                return None

        assert check_driver_class(Foreign) == []


class TestRegistry:
    def test_all_rules_cover_expected_ids(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)
        assert {"GRM101", "GRM102", "GRM103", "GRM104", "GRM105"} <= set(ids)

    def test_rules_by_id_unknown_raises(self):
        with pytest.raises(KeyError):
            rules_by_id(["GRM999"])

    def test_rule_table_has_titles(self):
        for rid, severity, title in rule_table():
            assert rid.startswith("GRM")
            assert severity in ("info", "warning", "error")
            assert title
