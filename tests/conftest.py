"""Shared fixtures for the GridRM test suite."""

from __future__ import annotations

import pytest

from repro.agents.host_model import HostSpec, SimulatedHost
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def network(clock: VirtualClock) -> Network:
    net = Network(clock, seed=1234)
    net.add_host("gateway", site="default")
    return net


@pytest.fixture
def host(network: Network) -> SimulatedHost:
    """One simulated host named 'n0' in the default site."""
    network.add_host("n0", site="default")
    return SimulatedHost(HostSpec.generate("n0", "default", 42), network.clock)


@pytest.fixture
def hosts(network: Network) -> list[SimulatedHost]:
    """Four simulated hosts n0..n3 in the default site."""
    out = []
    for i in range(4):
        name = f"n{i}"
        if not network.has_host(name):
            network.add_host(name, site="default")
        out.append(SimulatedHost(HostSpec.generate(name, "default", 42), network.clock))
    return out


@pytest.fixture
def site():
    """A complete single site with SNMP + Ganglia agents, warmed up."""
    clock = VirtualClock()
    network = Network(clock, seed=7)
    s = build_site(network, name="site-t", n_hosts=3, agents=("snmp", "ganglia"), seed=7)
    clock.advance(30)
    return s


@pytest.fixture
def full_site():
    """A site running every agent kind, warmed up."""
    clock = VirtualClock()
    network = Network(clock, seed=9)
    s = build_site(
        network,
        name="site-f",
        n_hosts=3,
        agents=("snmp", "ganglia", "nws", "netlogger", "scms", "sql"),
        seed=9,
    )
    clock.advance(60)
    return s
