"""Unit tests for the Gateway facade and the ACIL."""

import pytest

from repro.core.acil import ClientRequest
from repro.core.errors import GridRmError, SecurityError, SessionError
from repro.core.gateway import Gateway
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.core.security import AccessRule, Principal
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def rig():
    clock = VirtualClock()
    network = Network(clock, seed=21)
    site = build_site(network, name="gwt", n_hosts=2, agents=("snmp", "ganglia"), seed=21)
    clock.advance(20.0)
    return network, site, site.gateway


class TestSources:
    def test_sources_configured_by_testbed(self, rig):
        _, site, gw = rig
        assert len(gw.sources()) == len(site.source_urls)

    def test_add_source_idempotent(self, rig):
        _, site, gw = rig
        n = len(gw.sources())
        gw.add_source(site.url_for("snmp"))
        assert len(gw.sources()) == n

    def test_remove_source_invalidates_cache(self, rig):
        _, site, gw = rig
        url = site.url_for("snmp")
        gw.query(url, "SELECT * FROM Host")
        assert gw.cache.entries_for(url)
        assert gw.remove_source(url)
        assert not gw.cache.entries_for(url)

    def test_remove_missing_source(self, rig):
        _, _, gw = rig
        assert not gw.remove_source("jdbc:snmp://ghost/x")

    def test_poll_status_tracked(self, rig):
        network, site, gw = rig
        url = site.url_for("snmp")
        gw.query(url, "SELECT * FROM Host")
        source = gw.source(url)
        assert source.last_ok is True
        assert source.last_polled == network.clock.now()

    def test_poll_failure_recorded(self, rig):
        network, site, gw = rig
        url = site.url_for("snmp")
        network.set_host_up(site.host_names()[0], False)
        gw.query(url, "SELECT * FROM Host")
        source = gw.source(url)
        assert source.last_ok is False and source.last_error

    def test_query_all_sources(self, rig):
        _, site, gw = rig
        r = gw.query_all_sources("SELECT * FROM Host", mode=QueryMode.REALTIME)
        assert r.ok_sources == len(site.source_urls)

    def test_query_all_sources_empty_raises(self, rig):
        network, _, _ = rig
        empty = Gateway(network, "lonely-gw", site="lonely")
        with pytest.raises(GridRmError):
            empty.query_all_sources("SELECT * FROM Host")


class TestSecurityIntegration:
    @pytest.fixture
    def secure(self):
        clock = VirtualClock()
        network = Network(clock, seed=31)
        site = build_site(
            network,
            name="sec",
            n_hosts=2,
            agents=("snmp",),
            policy=GatewayPolicy(security_enabled=True),
        )
        clock.advance(10.0)
        gw = site.gateway
        gw.fgsl.add_rule(
            AccessRule(allow=False, who="role:student", group_pattern="Processor")
        )
        return site, gw

    def test_fgsl_blocks_group(self, secure):
        site, gw = secure
        eve = Principal.with_roles("eve", "student")
        with pytest.raises(SecurityError):
            gw.query(site.url_for("snmp"), "SELECT * FROM Processor", principal=eve)

    def test_fgsl_allows_other_groups(self, secure):
        site, gw = secure
        eve = Principal.with_roles("eve", "student")
        r = gw.query(site.url_for("snmp"), "SELECT * FROM Host", principal=eve)
        assert r.ok_sources == 1

    def test_admin_ops_gated(self, secure):
        site, gw = secure
        eve = Principal.with_roles("eve", "student")
        with pytest.raises(SecurityError):
            gw.set_driver_preference(site.url_for("snmp"), ["JDBC-SNMP"], principal=eve)
        admin = Principal.with_roles("ops", "admin")
        gw.set_driver_preference(site.url_for("snmp"), ["JDBC-SNMP"], principal=admin)

    def test_acil_requires_session_when_secured(self, secure):
        site, gw = secure
        with pytest.raises(SessionError):
            gw.acil.query(ClientRequest(urls=[site.url_for("snmp")], sql="SELECT * FROM Host"))

    def test_acil_with_session(self, secure):
        site, gw = secure
        session = gw.login(Principal.with_roles("bob", "user"))
        resp = gw.acil.query(
            ClientRequest(
                urls=[site.url_for("snmp")],
                sql="SELECT HostName FROM Host",
                session_token=session.token,
            )
        )
        assert resp.rows and resp.statuses[0]["ok"]


class TestAcil:
    def test_anonymous_when_security_off(self, rig):
        _, site, gw = rig
        resp = gw.acil.query(
            ClientRequest(urls=[site.url_for("snmp")], sql="SELECT * FROM Host")
        )
        assert resp.rows[0]["HostName"]

    def test_bad_mode_rejected(self, rig):
        _, site, gw = rig
        with pytest.raises(SecurityError):
            gw.acil.query(
                ClientRequest(
                    urls=[site.url_for("snmp")], sql="SELECT * FROM Host", mode="psychic"
                )
            )

    def test_response_carries_statuses_and_elapsed(self, rig):
        _, site, gw = rig
        resp = gw.acil.query(
            ClientRequest(urls=[site.url_for("snmp")], sql="SELECT * FROM Host")
        )
        assert resp.elapsed > 0
        assert resp.statuses[0]["url"] == site.url_for("snmp")


class TestDriverAdmin:
    def test_runtime_register_unregister(self, rig):
        network, site, gw = rig
        from repro.drivers.nws_driver import NwsDriver

        class CustomDriver(NwsDriver):
            protocol = "customproto"
            display_name = "JDBC-Custom"

        extra = CustomDriver(network, gateway_host=gw.host)
        gw.register_driver(extra)
        assert "JDBC-Custom" in gw.driver_manager.driver_names()
        assert gw.unregister_driver(extra)
        assert "JDBC-Custom" not in gw.driver_manager.driver_names()

    def test_queries_keep_working_during_registration_churn(self, rig):
        network, site, gw = rig
        from repro.drivers.nws_driver import NwsDriver

        url = site.url_for("snmp")
        for _ in range(3):
            extra = NwsDriver(network, gateway_host=gw.host)
            gw.register_driver(extra)
            r = gw.query(url, "SELECT * FROM Host")
            assert r.ok_sources == 1
            gw.unregister_driver(extra)

    def test_stats_snapshot_shape(self, rig):
        _, site, gw = rig
        gw.query(site.url_for("snmp"), "SELECT * FROM Host")
        stats = gw.stats()
        assert stats["requests"]["queries"] >= 1
        assert "connections" in stats and "events" in stats

    def test_persistent_store_restores_drivers(self, rig):
        network, _, gw = rig
        store = dict(gw.driver_manager.persistent_store)
        reborn = Gateway(
            network,
            "reborn-gw",
            site="gwt",
            register_default_drivers=False,
            install_event_drivers=False,
            persistent_store=store,
        )
        assert set(reborn.driver_manager.driver_names()) == set(
            gw.driver_manager.driver_names()
        )
