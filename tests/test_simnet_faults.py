"""Unit tests for the chaos plane (repro.simnet.faults)."""

import pytest

from repro.simnet.clock import VirtualClock
from repro.simnet.errors import (
    HostUnreachableError,
    PayloadCorruptedError,
    PortClosedError,
    TimeoutError_,
)
from repro.simnet.faults import FaultPlane
from repro.simnet.network import Address, Network


@pytest.fixture
def rig():
    clock = VirtualClock()
    network = Network(clock, seed=3)
    network.add_host("a", site="s1")
    network.add_host("b", site="s1")
    network.listen(Address("b", 9), lambda p, s: ("echo", p))
    plane = FaultPlane(network, seed=11)
    return network, plane


class TestLatencySpikes:
    def test_certain_spike_charged_as_service_time(self, rig):
        net, plane = rig
        plane.latency_spikes("b", prob=1.0, extra=0.5)
        t0 = net.clock.now()
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        assert net.clock.now() - t0 >= 0.5
        assert plane.stats.spikes_injected == 1
        assert plane.stats.spike_seconds == pytest.approx(0.5)

    def test_zero_probability_never_fires(self, rig):
        net, plane = rig
        plane.latency_spikes("b", prob=0.0, extra=5.0)
        for _ in range(20):
            net.request("a", Address("b", 9), "x")
        assert plane.stats.spikes_injected == 0

    def test_spike_exceeding_timeout_lands_on_deadline(self, rig):
        net, plane = rig
        plane.latency_spikes("b", prob=1.0, extra=5.0)
        t0 = net.clock.now()
        with pytest.raises(TimeoutError_):
            net.request("a", Address("b", 9), "x", timeout=0.1)
        assert net.clock.now() - t0 == pytest.approx(0.1)

    def test_window_expires(self, rig):
        net, plane = rig
        plane.latency_spikes("b", prob=1.0, extra=0.5, duration=1.0)
        net.request("a", Address("b", 9), "x")
        assert plane.stats.spikes_injected == 1
        net.clock.advance(2.0)
        net.request("a", Address("b", 9), "x")
        assert plane.stats.spikes_injected == 1  # window closed

    def test_window_starts_later(self, rig):
        net, plane = rig
        plane.latency_spikes("b", prob=1.0, extra=0.5, start=10.0)
        net.request("a", Address("b", 9), "x")
        assert plane.stats.spikes_injected == 0
        net.clock.advance(10.0)
        net.request("a", Address("b", 9), "x")
        assert plane.stats.spikes_injected == 1

    def test_spikes_on_other_host_do_not_apply(self, rig):
        net, plane = rig
        plane.latency_spikes("a", prob=1.0, extra=5.0)
        t0 = net.clock.now()
        net.request("a", Address("b", 9), "x")
        assert net.clock.now() - t0 < 1.0


class TestFlakyPort:
    def test_certain_refusal(self, rig):
        net, plane = rig
        plane.flaky_port("b", prob=1.0)
        with pytest.raises(PortClosedError) as exc:
            net.request("a", Address("b", 9), "x")
        assert "flaky port" in str(exc.value)
        assert plane.stats.refusals == 1

    def test_port_specific_window_spares_other_ports(self, rig):
        net, plane = rig
        net.listen(Address("b", 10), lambda p, s: "ok")
        plane.flaky_port("b", 10, prob=1.0)
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        with pytest.raises(PortClosedError):
            net.request("a", Address("b", 10), "x")

    def test_async_path_also_refused(self, rig):
        net, plane = rig
        plane.flaky_port("b", prob=1.0)
        future = net.request_async("a", Address("b", 9), "x")
        with pytest.raises(PortClosedError):
            net.gather([future])


class TestCorruption:
    def test_certain_corruption_after_full_round_trip(self, rig):
        net, plane = rig
        plane.corrupt_payloads("b", prob=1.0)
        t0 = net.clock.now()
        with pytest.raises(PayloadCorruptedError):
            net.request("a", Address("b", 9), "x")
        # The response travelled the wire before failing its checksum.
        assert net.clock.now() > t0
        assert plane.stats.corruptions == 1

    def test_async_path_corruption(self, rig):
        net, plane = rig
        plane.corrupt_payloads("b", prob=1.0)
        future = net.request_async("a", Address("b", 9), "x")
        with pytest.raises(PayloadCorruptedError):
            net.gather([future])


class TestSlowHost:
    def test_applies_and_restores(self, rig):
        net, plane = rig
        plane.slow_host("b", factor=4.0, service_time=0.1, duration=5.0)
        assert net.slowdown("b") == 4.0
        assert net.service_time("b") == 0.1
        assert plane.stats.slowdowns == 1
        net.clock.advance(5.0)
        assert net.slowdown("b") == 1.0
        assert net.service_time("b") == 0.0

    def test_scheduled_start(self, rig):
        net, plane = rig
        plane.slow_host("b", factor=2.0, start=10.0)
        assert net.slowdown("b") == 1.0
        net.clock.advance(10.0)
        assert net.slowdown("b") == 2.0


class TestFlapHost:
    def test_single_flap_down_then_up(self, rig):
        net, plane = rig
        plane.flap_host("b", down_at=1.0, down_for=0.5)
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        net.clock.advance(1.0 - (net.clock.now() % 1.0) + 0.1)  # into the window
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("b", 9), "x", timeout=0.05)
        net.clock.advance(0.5)
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        assert plane.stats.flaps == 1

    def test_repeated_flaps(self, rig):
        net, plane = rig
        plane.flap_host("b", down_at=1.0, down_for=0.5, times=2, period=2.0)
        net.clock.advance(1.1)  # first window [1.0, 1.5)
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("b", 9), "x", timeout=0.05)
        net.clock.advance(0.5)  # healed
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        net.clock.advance(3.1 - net.clock.now())  # second window [3.0, 3.5)
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("b", 9), "x", timeout=0.05)
        net.clock.advance(0.5)
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        assert plane.stats.flaps == 2

    def test_times_validation(self, rig):
        _, plane = rig
        with pytest.raises(ValueError):
            plane.flap_host("b", down_at=1.0, down_for=0.5, times=0)


class TestPartition:
    def test_timed_partition_auto_heals(self, rig):
        net, plane = rig
        plane.partition_between({"a"}, {"b"}, start=1.0, duration=1.0)
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        net.clock.advance(1.1 - net.clock.now())
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("b", 9), "x", timeout=0.05)
        net.clock.advance(1.0)
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        assert plane.stats.partitions == 1
        assert plane.stats.heals == 1


class TestDeterminism:
    def _run(self, seed):
        clock = VirtualClock()
        net = Network(clock, seed=3)
        net.add_host("a", site="s1")
        net.add_host("b", site="s1")
        net.listen(Address("b", 9), lambda p, s: p)
        plane = FaultPlane(net, seed=seed)
        plane.latency_spikes("b", prob=0.5, extra=0.3)
        plane.flaky_port("b", prob=0.2)
        plane.corrupt_payloads("b", prob=0.2)
        outcomes = []
        for i in range(30):
            try:
                outcomes.append(net.request("a", Address("b", 9), i, timeout=1.0))
            except Exception as exc:  # noqa: BLE001 - recording the shape
                outcomes.append(type(exc).__name__)
            clock.advance(1.0)
        return repr(outcomes), clock.now(), plane.stats.as_dict()

    def test_same_seed_replays_identically(self):
        assert self._run(7) == self._run(7)

    def test_different_seed_differs(self):
        assert self._run(7) != self._run(8)


class TestValidationAndObservability:
    def test_window_validation(self, rig):
        _, plane = rig
        with pytest.raises(ValueError):
            plane.latency_spikes("b", prob=1.5, extra=1.0)
        with pytest.raises(ValueError):
            plane.latency_spikes("b", prob=0.5, extra=-1.0)
        with pytest.raises(ValueError):
            plane.latency_spikes("b", prob=0.5, extra=1.0, start=-1.0)
        with pytest.raises(ValueError):
            plane.latency_spikes("b", prob=0.5, extra=1.0, duration=0.0)

    def test_active_faults_lists_windows_and_slowdowns(self, rig):
        net, plane = rig
        plane.latency_spikes("b", prob=0.5, extra=1.0)
        plane.slow_host("b", factor=3.0, service_time=0.05)
        lines = plane.active_faults()
        assert any(line.startswith("spike b") for line in lines)
        assert any("slow b x3" in line for line in lines)

    def test_inactive_windows_not_listed(self, rig):
        _, plane = rig
        plane.latency_spikes("b", prob=0.5, extra=1.0, start=100.0)
        assert plane.active_faults() == []

    def test_schedule_log_records_clock_driven_faults(self, rig):
        _, plane = rig
        plane.flap_host("b", down_at=5.0, down_for=1.0)
        plane.partition_between({"a"}, {"b"}, start=2.0, duration=1.0)
        plane.slow_host("b", factor=2.0, start=1.0, duration=1.0)
        log = plane.schedule_log()
        assert len(log) == 3
        assert log[0].startswith("flap_host b")
        assert log[1].startswith("partition")
        assert log[2].startswith("slow_host b")

    def test_seed_exposed_for_reporting(self, rig):
        _, plane = rig
        assert plane.seed == 11

    def test_stats_as_dict_keys(self, rig):
        _, plane = rig
        d = plane.stats.as_dict()
        assert set(d) == {
            "spikes_injected",
            "spike_seconds",
            "refusals",
            "corruptions",
            "flaps",
            "slowdowns",
            "partitions",
            "heals",
            "disk_crashes",
            "torn_writes",
            "bit_flips",
        }


class TestDiskFaults:
    def test_crash_disk_drops_unsynced_writes(self, rig):
        from repro.storage.simdisk import SimDisk

        net, plane = rig
        disk = SimDisk(clock=net.clock)
        disk.create("f")
        disk.append("f", b"durable")
        disk.fsync("f")
        disk.append("f", b"lost")
        plane.crash_disk(disk, torn=False)
        net.clock.advance(0.0)
        assert disk.read("f") == b"durable"
        assert plane.stats.disk_crashes == 1
        assert plane.stats.torn_writes == 0

    def test_torn_crash_keeps_strict_partial_fragment(self, rig):
        net, plane = rig
        from repro.storage.simdisk import SimDisk

        disk = SimDisk(clock=net.clock)
        torn = 0
        for i in range(20):
            disk.create(f"f{i}")
            disk.append(f"f{i}", b"0123456789" * 4)
            plane.crash_disk(disk)
            net.clock.advance(0.0)
            kept = len(disk.read(f"f{i}"))
            assert 0 <= kept < 40  # never the full chunk
            torn += kept > 0
        assert plane.stats.disk_crashes == 20
        assert plane.stats.torn_writes == torn
        assert torn > 0  # seeded RNG tears at least once in 20

    def test_scheduled_crash_fires_on_clock(self, rig):
        net, plane = rig
        from repro.storage.simdisk import SimDisk

        disk = SimDisk(clock=net.clock)
        disk.create("f")
        disk.append("f", b"x")
        plane.crash_disk(disk, at=5.0, torn=False)
        net.clock.advance(4.0)
        assert plane.stats.disk_crashes == 0
        net.clock.advance(2.0)
        assert plane.stats.disk_crashes == 1

    def test_flip_segment_bit_targets_named_path(self, rig):
        net, plane = rig
        from repro.storage.simdisk import SimDisk

        disk = SimDisk(clock=net.clock)
        disk.create("seg/g/00000001.seg")
        disk.append("seg/g/00000001.seg", b"\x00\x00")
        disk.fsync("seg/g/00000001.seg")
        plane.flip_segment_bit(disk, path="seg/g/00000001.seg")
        net.clock.advance(0.0)
        assert disk.read("seg/g/00000001.seg") != b"\x00\x00"
        assert plane.stats.bit_flips == 1

    def test_flip_segment_bit_noop_without_segments(self, rig):
        net, plane = rig
        from repro.storage.simdisk import SimDisk

        disk = SimDisk(clock=net.clock)
        plane.flip_segment_bit(disk)
        net.clock.advance(0.0)
        assert plane.stats.bit_flips == 0

    def test_disk_faults_logged(self, rig):
        net, plane = rig
        from repro.storage.simdisk import SimDisk

        disk = SimDisk(clock=net.clock)
        plane.crash_disk(disk, at=1.0)
        plane.flip_segment_bit(disk, at=2.0)
        log = plane.schedule_log()
        assert any(line.startswith("crash_disk") for line in log)
        assert any(line.startswith("flip_segment_bit") for line in log)
