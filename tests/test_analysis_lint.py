"""The lint driver: path walking, baselines, rendering, CLI."""

import json

import pytest

from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.linter import (
    iter_python_files,
    lint_paths,
    load_baseline,
    render_flat,
    render_json,
    render_tree,
    summary_line,
    write_baseline,
)
from repro.cli import main as cli_main

DIRTY = "import socket\nimport time\nstarted = time.time()\n"


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "dirty.py").write_text(DIRTY)
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "notes.txt").write_text("not python")
    cache = pkg / "__pycache__"
    cache.mkdir()
    (cache / "dirty.cpython-311.py").write_text(DIRTY)
    return tmp_path


class TestWalk:
    def test_only_python_files_outside_pycache(self, tree):
        files = iter_python_files([str(tree)])
        names = [f.rsplit("/", 1)[-1] for f in files]
        assert names == ["clean.py", "dirty.py"]

    def test_explicit_file_kept_as_is(self, tree):
        target = str(tree / "pkg" / "dirty.py")
        assert iter_python_files([target]) == [target]


class TestLintPaths:
    def test_findings_and_scan_count(self, tree):
        report = lint_paths([str(tree)])
        assert report.files_scanned == 2
        assert sorted(f.rule_id for f in report.findings) == [
            "GRM101",
            "GRM102",
        ]

    def test_rule_subset(self, tree):
        from repro.analysis.rules import rules_by_id

        report = lint_paths([str(tree)], rules=rules_by_id(["GRM102"]))
        assert [f.rule_id for f in report.findings] == ["GRM102"]

    def test_repo_src_is_clean(self):
        report = lint_paths(["src"])
        assert report.findings == [], render_flat(report)

    def test_walk_covers_storage_and_harnesses(self):
        """The determinism sanitizer's blast radius includes the
        durability layer and the chaos/crash/race harnesses."""
        report = lint_paths(
            ["src/repro/storage", "src/repro/crashtest.py", "src/repro/racecheck.py"]
        )
        assert report.files_scanned >= 5
        assert report.findings == [], render_flat(report)

    def test_unreadable_file_is_grm100(self, tmp_path):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"# caf\xe9\nx = 1\n")
        report = lint_paths([str(bad)])
        assert [f.rule_id for f in report.findings] == ["GRM100"]


class TestBaseline:
    def test_roundtrip_suppresses_exactly_recorded(self, tree, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        first = lint_paths([str(tree)])
        n = write_baseline(str(baseline_file), first)
        assert n == len({f.fingerprint for f in first.findings})

        second = lint_paths(
            [str(tree)], baseline=load_baseline(str(baseline_file))
        )
        assert second.findings == []
        assert second.suppressed == len(first.findings)

        # A NEW violation still surfaces through the baseline.
        (tree / "pkg" / "fresh.py").write_text("import socket\n")
        third = lint_paths(
            [str(tree)], baseline=load_baseline(str(baseline_file))
        )
        assert [f.rule_id for f in third.findings] == ["GRM102"]
        assert "fresh.py" in third.findings[0].path

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.txt")) == set()

    def test_fingerprints_have_no_line_numbers(self):
        f = Finding(
            rule_id="GRM101",
            severity=Severity.ERROR,
            message="m",
            path="a.py",
            line=42,
            symbol="time.time",
        )
        assert f.fingerprint == "GRM101:a.py:time.time"


class TestRendering:
    def test_tree_groups_by_file(self, tree):
        text = render_tree(lint_paths([str(tree)]))
        assert "dirty.py" in text
        assert "[xx] GRM101" in text and "[xx] GRM102" in text

    def test_tree_clean_marker(self):
        assert "(clean)" in render_tree(AnalysisReport(files_scanned=3))

    def test_flat_is_one_per_line(self, tree):
        report = lint_paths([str(tree)])
        lines = render_flat(report).splitlines()
        assert len(lines) == len(report.findings) + 1  # + summary

    def test_summary_counts_baselined(self):
        report = AnalysisReport(files_scanned=1, suppressed=2)
        assert "2 baselined" in summary_line(report)


class TestJsonRendering:
    def test_json_is_stable_and_sorted(self, tree):
        report = lint_paths([str(tree)])
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 2
        # Canonical finding order: (path, line, rule_id, message).
        assert [f["rule_id"] for f in payload["findings"]] == ["GRM102", "GRM101"]
        keys = [(f["path"], f["line"], f["rule_id"]) for f in payload["findings"]]
        assert keys == sorted(keys)

    def test_json_round_trips_every_finding_field(self, tree):
        report = lint_paths([str(tree)])
        payload = json.loads(render_json(report))
        first = payload["findings"][0]
        assert set(first) == {
            "rule_id",
            "severity",
            "path",
            "line",
            "symbol",
            "message",
            "fingerprint",
        }
        assert first["severity"] in ("error", "warning", "info")

    def test_json_rendering_is_byte_deterministic(self, tree):
        report = lint_paths([str(tree)])
        assert render_json(report) == render_json(lint_paths([str(tree)]))

    def test_tree_and_flat_renders_unchanged_by_json_addition(self, tree):
        # The human formats must stay byte-identical whether or not
        # anyone ever calls render_json on the same report.
        report = lint_paths([str(tree)])
        before_tree = render_tree(report)
        before_flat = render_flat(report)
        render_json(report)
        assert render_tree(report) == before_tree
        assert render_flat(report) == before_flat


class TestCli:
    def test_lint_dirty_exits_1(self, tree, capsys):
        rc = cli_main(["lint", str(tree)])
        assert rc == 1
        assert "GRM102" in capsys.readouterr().out

    def test_lint_clean_exits_0(self, tree, capsys):
        rc = cli_main(["lint", str(tree / "pkg" / "clean.py")])
        assert rc == 0

    def test_lint_repo_src_exits_0(self):
        assert cli_main(["lint", "src"]) == 0

    def test_write_then_use_baseline(self, tree, tmp_path, capsys):
        baseline = str(tmp_path / "b.txt")
        assert cli_main(["lint", str(tree), "--write-baseline", baseline]) == 0
        assert cli_main(["lint", str(tree), "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_rules_filter(self, tree, capsys):
        rc = cli_main(["lint", str(tree), "--rules", "grm102"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "GRM102" in out and "GRM101" not in out

    def test_unknown_rule_id_rejected(self, tree):
        with pytest.raises(SystemExit):
            cli_main(["lint", str(tree), "--rules", "GRM999"])

    def test_flat_format(self, tree, capsys):
        cli_main(["lint", str(tree), "--format", "flat"])
        out = capsys.readouterr().out
        assert "[error] GRM101" in out

    def test_json_format(self, tree, capsys):
        rc = cli_main(["lint", str(tree), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule_id"] for f in payload["findings"]] == ["GRM102", "GRM101"]

    def test_json_format_clean_exits_0(self, tree, capsys):
        rc = cli_main(["lint", str(tree / "pkg" / "clean.py"), "--format", "json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["findings"] == []
