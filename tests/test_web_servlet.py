"""Unit tests for the gateway servlet (paper Figure 1)."""

import pytest

from repro.web.servlet import GatewayServlet, http_get


@pytest.fixture
def servlet(site):
    return GatewayServlet(site.gateway)


def get(site, servlet, target):
    return http_get(site.network, site.host_names()[0], servlet.address, target)


class TestRouting:
    def test_index_serves_html(self, site, servlet):
        code, body = get(site, servlet, "/")
        assert code == 200 and body.startswith("<html>")

    def test_tree(self, site, servlet):
        code, body = get(site, servlet, "/tree")
        assert code == 200 and "GridRM Gateway" in body

    def test_drivers(self, site, servlet):
        code, body = get(site, servlet, "/drivers")
        assert code == 200 and "JDBC-SNMP" in body

    def test_sources(self, site, servlet):
        code, body = get(site, servlet, "/sources")
        assert code == 200
        assert set(body.splitlines()) == set(site.source_urls)

    def test_stats(self, site, servlet):
        code, body = get(site, servlet, "/stats")
        assert code == 200 and "requests" in body

    def test_unknown_path_404(self, site, servlet):
        code, _ = get(site, servlet, "/nope")
        assert code == 404

    def test_non_get_rejected(self, site, servlet):
        raw = site.network.request(
            site.host_names()[0], servlet.address, "POST /tree"
        )
        assert "400" in raw.splitlines()[0]

    def test_garbage_rejected(self, site, servlet):
        raw = site.network.request(site.host_names()[0], servlet.address, "")
        assert "400" in raw.splitlines()[0]


class TestQueryEndpoint:
    def test_query_returns_tsv(self, site, servlet):
        url = site.url_for("snmp").replace(":", "%3A").replace("/", "%2F")
        sql = "SELECT%20HostName%20FROM%20Host"
        code, body = get(site, servlet, f"/query?url={url}&sql={sql}")
        assert code == 200
        lines = body.splitlines()
        assert lines[0] == "HostName"
        assert lines[1] == site.host_names()[0]
        assert any(l.startswith("# sources ok=1") for l in lines)

    def test_query_missing_params_400(self, site, servlet):
        code, body = get(site, servlet, "/query?sql=SELECT%20*%20FROM%20Host")
        assert code == 400

    def test_query_bad_mode_400(self, site, servlet):
        url = site.url_for("snmp").replace(":", "%3A")
        code, _ = get(site, servlet, f"/query?url={url}&sql=SELECT%201%20FROM%20Host&mode=psychic")
        assert code == 400

    def test_query_bad_sql_500(self, site, servlet):
        url = site.url_for("snmp").replace(":", "%3A")
        code, body = get(site, servlet, f"/query?url={url}&sql=SELEKT")
        assert code == 500

    def test_failed_source_reported_in_comments(self, site, servlet):
        site.network.set_host_up(site.host_names()[0], False)
        url = site.url_for("snmp", host=site.host_names()[0]).replace(":", "%3A")
        code, body = get(site, servlet, f"/query?url={url}&sql=SELECT%20*%20FROM%20Host")
        assert code == 200
        assert "# failed" in body


class TestReportEndpoint:
    def test_report_without_history(self, site, servlet):
        code, body = get(site, servlet, "/report")
        assert code == 200
        assert "Site capacity:" in body and "no Processor history" in body

    def test_report_with_history(self, site, servlet):
        urls = [u for u in site.source_urls if u.startswith("jdbc:snmp")]
        site.gateway.query(urls, "SELECT * FROM Processor")
        site.gateway.query(urls, "SELECT * FROM MainMemory")
        code, body = get(site, servlet, "/report")
        assert code == 200
        assert f"hosts={len(site.hosts)}" in body
        assert site.host_names()[0] in body


class TestShutdown:
    def test_shutdown_stops_background_work(self, site):
        gw = site.gateway
        from repro.core.alerts import AlertRule

        gw.alerts.add_rule(
            AlertRule(
                name="r",
                urls=[site.url_for("snmp")],
                sql="SELECT HostName FROM Processor WHERE CPUCount >= 1",
                period=10.0,
                use_cache=False,
            )
        )
        gw.query(site.url_for("snmp"), "SELECT * FROM Host")
        gw.shutdown()
        polls = gw.alerts.stats["polls"]
        traffic = site.network.stats.requests
        site.clock.advance(120.0)
        assert gw.alerts.stats["polls"] == polls
        # No background traffic from this gateway (agents still tick).
        assert gw.connection_manager.idle_count() == 0
        assert len(gw.cache) == 0

    def test_trap_port_unbound_after_shutdown(self, site):
        gw = site.gateway
        gw.shutdown()
        assert not site.network.is_listening(gw.trap_sink_address)


class TestPlotEndpoint:
    def test_plot_after_history(self, site, servlet):
        for _ in range(10):
            site.gateway.query(site.url_for("snmp"), "SELECT * FROM Processor")
            site.clock.advance(10.0)
        host = site.host_names()[0]
        code, body = get(
            site, servlet, f"/plot?group=Processor&field=LoadAverage1Min&host={host}"
        )
        assert code == 200 and "Processor.LoadAverage1Min" in body

    def test_plot_missing_params_400(self, site, servlet):
        code, _ = get(site, servlet, "/plot?group=Processor")
        assert code == 400

    def test_request_counter(self, site, servlet):
        get(site, servlet, "/tree")
        get(site, servlet, "/tree")
        assert servlet.requests_served == 2
