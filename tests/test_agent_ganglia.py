"""Unit tests for the Ganglia agent and its XML."""

import pytest

from repro.agents.ganglia import GangliaAgent
from repro.drivers.ganglia_driver import GangliaXmlError, parse_ganglia_xml
from repro.simnet.network import Address


@pytest.fixture
def agent(network, hosts):
    return GangliaAgent("cluster-x", hosts, network)


class TestAgent:
    def test_requires_hosts(self, network):
        with pytest.raises(ValueError):
            GangliaAgent("empty", [], network)

    def test_binds_first_host_by_default(self, agent, hosts):
        assert agent.address.host == hosts[0].spec.name

    def test_any_request_returns_full_dump(self, network, agent, hosts):
        xml = network.request("gateway", agent.address, "anything")
        assert xml.count("<HOST ") == len(hosts)
        assert "<GANGLIA_XML" in xml and "</GANGLIA_XML>" in xml

    def test_dump_is_large(self, network, agent):
        xml = network.request("gateway", agent.address, "x")
        assert len(xml) > 5000  # coarse-grained: kilobytes per query

    def test_values_track_virtual_time(self, network, agent):
        a = network.request("gateway", agent.address, "x")
        network.clock.advance(600.0)
        b = network.request("gateway", agent.address, "x")
        assert a != b

    def test_request_counter(self, network, agent):
        network.request("gateway", agent.address, "x")
        network.request("gateway", agent.address, "x")
        assert agent.requests_served == 2


class TestXmlShape:
    def test_standard_metric_names_present(self, agent):
        xml = agent.render_xml()
        for name in ("load_one", "cpu_num", "mem_total", "bytes_in", "os_name"):
            assert f'NAME="{name}"' in xml

    def test_memory_reported_in_kb(self, agent, hosts):
        records = parse_ganglia_xml(agent.render_xml())
        by_host = {r["_host"]: r for r in records}
        h = hosts[0]
        assert by_host[h.spec.name]["mem_total"] == int(h.spec.ram_mb * 1024)

    def test_cluster_attribute(self, agent):
        records = parse_ganglia_xml(agent.render_xml())
        assert all(r["_cluster"] == "cluster-x" for r in records)


class TestParser:
    def test_parses_agent_output(self, agent, hosts):
        records = parse_ganglia_xml(agent.render_xml())
        assert len(records) == len(hosts)
        for r in records:
            assert isinstance(r["load_one"], float)
            assert isinstance(r["cpu_num"], int)
            assert isinstance(r["os_name"], str)

    def test_metric_outside_host_rejected(self):
        with pytest.raises(GangliaXmlError):
            parse_ganglia_xml('<METRIC NAME="x" VAL="1" TYPE="float"/>')

    def test_unterminated_host_rejected(self):
        with pytest.raises(GangliaXmlError):
            parse_ganglia_xml('<HOST NAME="a" IP="" REPORTED="0">')

    def test_nested_host_rejected(self):
        with pytest.raises(GangliaXmlError):
            parse_ganglia_xml(
                '<HOST NAME="a" IP="" REPORTED="0"><HOST NAME="b" IP="" REPORTED="0">'
            )

    def test_bad_numeric_val_rejected(self):
        xml = (
            '<HOST NAME="a" IP="" REPORTED="0">'
            '<METRIC NAME="load_one" VAL="NaNope" TYPE="float"/></HOST>'
        )
        with pytest.raises(GangliaXmlError):
            parse_ganglia_xml(xml)

    def test_empty_input_yields_no_records(self):
        assert parse_ganglia_xml("") == []

    def test_string_metrics_stay_strings(self):
        xml = (
            '<HOST NAME="a" IP="1.2.3.4" REPORTED="7">'
            '<METRIC NAME="os_name" VAL="Linux" TYPE="string"/></HOST>'
        )
        (record,) = parse_ganglia_xml(xml)
        assert record["os_name"] == "Linux"
        assert record["_reported"] == 7.0
