"""Failure-injection integration tests: loss, partitions, churn.

Each scenario drives the full stack through a fault and asserts both the
degraded behaviour and the recovery — a monitoring system's job is
precisely to keep working while the things it watches are failing.
"""

import pytest

from repro.core.policy import FailureAction, GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer, RemoteQueryError
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


def make(name, *, policy=None, seed=1, n_hosts=3, agents=("snmp",), net_seed=90, **kw):
    clock = VirtualClock()
    network = Network(clock, seed=net_seed)
    site = build_site(
        network, name=name, n_hosts=n_hosts, agents=agents, seed=seed,
        policy=policy, **kw
    )
    clock.advance(10.0)
    return network, site


class TestLossyNetwork:
    def test_sustained_loss_degrades_but_never_crashes(self):
        network, site = make(
            "lossy",
            policy=GatewayPolicy(
                failure_action=FailureAction.RETRY,
                failure_retries=3,
                default_query_timeout=0.05,
                pool_enabled=False,
            ),
        )
        for host in site.host_names():
            network.set_extra_loss(host, 0.4)
        ok = failed = 0
        for i in range(30):
            result = site.gateway.query(
                site.source_urls[i % len(site.source_urls)],
                "SELECT HostName FROM Host",
            )
            ok += result.ok_sources
            failed += result.failed_sources
        # Some get through, some do not; no exceptions escaped.
        assert ok > 0 and failed > 0

    def test_loss_removed_restores_full_success(self):
        network, site = make("healing", policy=GatewayPolicy(default_query_timeout=0.05))
        host = site.host_names()[0]
        network.set_extra_loss(host, 0.95)
        url = site.url_for("snmp", host=host)
        # Will almost surely fail...
        degraded = site.gateway.query(url, "SELECT HostName FROM Host")
        network.set_extra_loss(host, 0.0)
        restored = site.gateway.query(url, "SELECT HostName FROM Host")
        assert restored.ok_sources == 1
        # ...and the tree view reflects the recovery.
        source = site.gateway.source(url)
        assert source.last_ok is True


class TestPartitions:
    def test_remote_queries_fail_then_recover_after_heal(self):
        clock = VirtualClock()
        network = Network(clock, seed=91)
        a = build_site(network, name="pa", n_hosts=2, agents=("snmp",), seed=1)
        b = build_site(network, name="pb", n_hosts=2, agents=("snmp",), seed=2)
        clock.advance(10.0)
        directory = GMADirectory(network)
        gla = GlobalLayer(a.gateway, directory, cache_remote=False)
        GlobalLayer(b.gateway, directory)

        network.partition(
            set(network.hosts(site="pa")) | {"gma-directory"},
            set(network.hosts(site="pb")),
        )
        with pytest.raises(RemoteQueryError):
            gla.query_remote("pb", "SELECT * FROM Host", mode="realtime")
        network.heal()
        result = gla.query_remote("pb", "SELECT * FROM Host", mode="realtime")
        assert result.rows

    def test_partition_drops_event_subscription_traffic_silently(self):
        from repro.gma.subscription import EventPublisher, EventSubscriber

        network, site = make("pubpart", snmp_trap_threshold=0.0, net_seed=92)
        publisher = EventPublisher(site.gateway)
        network.add_host("watcher", site="elsewhere")
        subscriber = EventSubscriber(network, "watcher")
        got = []
        subscriber.on_event(got.append)
        subscriber.subscribe(publisher.address, lease=1e9)

        network.clock.advance(60.0)
        before = len(got)
        assert before > 0
        network.partition(set(network.hosts(site="pubpart")), {"watcher"})
        network.clock.advance(60.0)
        assert len(got) == before  # pushes were dropped, nothing crashed
        network.heal()
        network.clock.advance(60.0)
        assert len(got) > before


class TestAgentChurn:
    def test_agent_restart_cycle(self):
        """Kill and revive an agent repeatedly; the gateway tracks it."""
        network, site = make("churn")
        gw = site.gateway
        host = site.host_names()[0]
        url = site.url_for("snmp", host=host)
        for cycle in range(3):
            network.set_host_up(host, False)
            r = gw.query(url, "SELECT HostName FROM Host")
            assert r.failed_sources == 1, cycle
            network.set_host_up(host, True)
            r = gw.query(url, "SELECT HostName FROM Host")
            assert r.ok_sources == 1, cycle

    def test_pool_recovers_from_dead_connections(self):
        """Pooled connections to a bounced agent are evicted, not used."""
        network, site = make(
            "bounce", policy=GatewayPolicy(pool_idle_ttl=5.0)
        )
        gw = site.gateway
        host = site.host_names()[0]
        url = site.url_for("snmp", host=host)
        gw.query(url, "SELECT HostName FROM Host")  # pool a connection
        # Agent's host bounces while the connection idles past the TTL.
        network.set_host_up(host, False)
        network.clock.advance(10.0)
        network.set_host_up(host, True)
        result = gw.query(url, "SELECT HostName FROM Host")
        assert result.ok_sources == 1

    def test_gateway_restart_preserves_driver_set_not_history(self):
        """Restart semantics: driver registrations persist (paper §3.2.2),
        in-memory history does not — a fresh gateway starts clean."""
        from repro.core.gateway import Gateway

        network, site = make("restart")
        gw = site.gateway
        gw.query(site.url_for("snmp"), "SELECT * FROM Processor")
        assert gw.history.row_count() > 0
        reborn = Gateway(
            network,
            "restart-gw2",
            site="restart",
            register_default_drivers=False,
            install_event_drivers=False,
            persistent_store=dict(gw.driver_manager.persistent_store),
        )
        assert set(reborn.driver_manager.driver_names()) == set(
            gw.driver_manager.driver_names()
        )
        assert reborn.history.row_count() == 0
