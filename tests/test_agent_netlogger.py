"""Unit tests for the NetLogger agent and ULM format."""

import pytest

from repro.agents.netlogger import (
    NetLoggerAgent,
    format_ulm_date,
    parse_ulm_line,
)
from repro.drivers.netlogger_driver import _parse_ulm_date


@pytest.fixture
def agent(network, host):
    a = NetLoggerAgent(host, network)
    network.clock.advance(300.0)  # generate some records
    return a


class TestUlmFormat:
    def test_date_round_trip(self):
        text = format_ulm_date(1234.567890)
        assert _parse_ulm_date(text) == pytest.approx(1234.567890, abs=1e-5)

    def test_date_zero(self):
        assert _parse_ulm_date(format_ulm_date(0.0)) == 0.0

    def test_parse_bad_date_returns_none(self):
        assert _parse_ulm_date("not-a-date") is None
        assert _parse_ulm_date("20039999") is None

    def test_parse_line_fields(self):
        line = "DATE=x HOST=n0 PROG=gridftp LVL=Info NL.EVNT=e SIZE=42"
        fields = parse_ulm_line(line)
        assert fields["PROG"] == "gridftp"
        assert fields["NL.EVNT"] == "e"
        assert fields["SIZE"] == "42"

    def test_parse_line_ignores_bare_words(self):
        assert parse_ulm_line("garbage PROG=x") == {"PROG": "x"}


class TestAgent:
    def test_records_generated_over_time(self, agent):
        assert agent.record_count() > 0

    def test_tail_returns_last_n(self, network, agent):
        resp = network.request("gateway", agent.address, "TAIL 3")
        assert len(resp.splitlines()) <= 3

    def test_tail_lines_are_valid_ulm(self, network, agent):
        resp = network.request("gateway", agent.address, "TAIL 5")
        for line in resp.splitlines():
            fields = parse_ulm_line(line)
            assert {"DATE", "HOST", "PROG", "LVL", "NL.EVNT"} <= set(fields)
            assert fields["HOST"] == "n0"

    def test_since_filters_by_time(self, network, agent):
        t_cut = network.clock.now()
        network.clock.advance(100.0)
        resp = network.request("gateway", agent.address, f"SINCE {t_cut}")
        for line in resp.splitlines():
            event_t = _parse_ulm_date(parse_ulm_line(line)["DATE"])
            assert event_t >= t_cut

    def test_match_filters_by_field(self, network, agent):
        resp = network.request("gateway", agent.address, "MATCH LVL=Info")
        for line in resp.splitlines():
            if line:
                assert parse_ulm_line(line)["LVL"] == "Info"

    def test_match_with_limit(self, network, agent):
        resp = network.request("gateway", agent.address, "MATCH LVL=Info 2")
        assert len([l for l in resp.splitlines() if l]) <= 2

    def test_bad_requests_error(self, network, agent):
        assert network.request("gateway", agent.address, "SINCE notatime").startswith("ERROR")
        assert network.request("gateway", agent.address, "MATCH nofield").startswith("ERROR")
        assert network.request("gateway", agent.address, "WHAT").startswith("ERROR")

    def test_ring_buffer_bounds_memory(self, network, host):
        small = NetLoggerAgent(host, network, port=24830, capacity=10)
        network.clock.advance(2000.0)
        assert small.record_count() <= 10
