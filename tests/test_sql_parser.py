"""Unit tests for the SQL parser."""

import pytest

from repro.sql import ast_nodes as ast
from repro.sql.errors import SqlParseError
from repro.sql.parser import parse_select, parse_statement


class TestSelectBasics:
    def test_star(self):
        stmt = parse_select("SELECT * FROM Processor")
        assert stmt.is_star
        assert stmt.table == "Processor"

    def test_column_list(self):
        stmt = parse_select("SELECT HostName, CPUCount FROM Processor")
        assert [i.expr.name for i in stmt.items] == ["HostName", "CPUCount"]

    def test_alias_with_as(self):
        stmt = parse_select("SELECT HostName AS h FROM Processor")
        assert stmt.items[0].alias == "h"

    def test_alias_without_as(self):
        stmt = parse_select("SELECT HostName h FROM Processor")
        assert stmt.items[0].alias == "h"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT Owner FROM Job").distinct

    def test_trailing_semicolon_allowed(self):
        parse_select("SELECT * FROM Host;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse_select("SELECT * FROM Host garbage extra")

    def test_qualified_column(self):
        stmt = parse_select("SELECT p.HostName FROM Processor")
        col = stmt.items[0].expr
        assert col.table == "p" and col.name == "HostName"

    def test_parse_select_rejects_non_select(self):
        with pytest.raises(SqlParseError):
            parse_select("DELETE FROM Host")

    def test_projected_names(self):
        stmt = parse_select("SELECT HostName, COUNT(*), AVG(LoadAverage1Min) x FROM Processor")
        assert stmt.projected_names() == ["HostName", "COUNT(*)", "x"]


class TestWhere:
    def test_comparison(self):
        stmt = parse_select("SELECT * FROM m WHERE load > 1.5")
        assert isinstance(stmt.where, ast.BinOp)
        assert stmt.where.op == ">"

    def test_ne_variants_normalised(self):
        a = parse_select("SELECT * FROM m WHERE a <> 1").where
        b = parse_select("SELECT * FROM m WHERE a != 1").where
        assert a.op == b.op == "!="

    def test_and_or_precedence(self):
        stmt = parse_select("SELECT * FROM m WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_parentheses_override(self):
        stmt = parse_select("SELECT * FROM m WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"

    def test_not(self):
        stmt = parse_select("SELECT * FROM m WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.UnaryOp)
        assert stmt.where.op == "NOT"

    def test_in_list(self):
        stmt = parse_select("SELECT * FROM m WHERE h IN ('a', 'b')")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 2

    def test_not_in(self):
        stmt = parse_select("SELECT * FROM m WHERE h NOT IN ('a')")
        assert stmt.where.negated

    def test_like(self):
        stmt = parse_select("SELECT * FROM m WHERE h LIKE 'n%'")
        assert stmt.where.op == "LIKE"

    def test_not_like_wraps_not(self):
        stmt = parse_select("SELECT * FROM m WHERE h NOT LIKE 'n%'")
        assert isinstance(stmt.where, ast.UnaryOp)

    def test_between(self):
        stmt = parse_select("SELECT * FROM m WHERE x BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.Between)

    def test_not_between(self):
        assert parse_select("SELECT * FROM m WHERE x NOT BETWEEN 1 AND 5").where.negated

    def test_is_null(self):
        stmt = parse_select("SELECT * FROM m WHERE x IS NULL")
        assert isinstance(stmt.where, ast.IsNull) and not stmt.where.negated

    def test_is_not_null(self):
        assert parse_select("SELECT * FROM m WHERE x IS NOT NULL").where.negated

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT * FROM m WHERE a + b * 2 > 10")
        cmp = stmt.where
        assert cmp.left.op == "+"
        assert cmp.left.right.op == "*"

    def test_unary_minus(self):
        stmt = parse_select("SELECT * FROM m WHERE x > -1")
        assert isinstance(stmt.where.right, ast.UnaryOp)

    def test_boolean_literals(self):
        stmt = parse_select("SELECT * FROM m WHERE flag = TRUE")
        assert stmt.where.right.value is True

    def test_null_literal(self):
        stmt = parse_select("SELECT NULL FROM m")
        assert stmt.items[0].expr.value is None


class TestClauses:
    def test_order_by_default_asc(self):
        stmt = parse_select("SELECT * FROM m ORDER BY a")
        assert not stmt.order_by[0].descending

    def test_order_by_desc(self):
        stmt = parse_select("SELECT * FROM m ORDER BY a DESC, b ASC")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_limit_offset(self):
        stmt = parse_select("SELECT * FROM m LIMIT 10 OFFSET 5")
        assert stmt.limit == 10 and stmt.offset == 5

    def test_group_by_having(self):
        stmt = parse_select(
            "SELECT Owner, COUNT(*) FROM Job GROUP BY Owner HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_count_star(self):
        stmt = parse_select("SELECT COUNT(*) FROM m")
        call = stmt.items[0].expr
        assert call.name == "COUNT" and call.star

    def test_count_distinct(self):
        stmt = parse_select("SELECT COUNT(DISTINCT Owner) FROM Job")
        assert stmt.items[0].expr.distinct

    @pytest.mark.parametrize("agg", ["SUM", "AVG", "MIN", "MAX"])
    def test_aggregates_parse(self, agg):
        stmt = parse_select(f"SELECT {agg}(x) FROM m")
        assert stmt.items[0].expr.name == agg


class TestOtherStatements:
    def test_insert_multi_row(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_arity_mismatch_rejected(self):
        with pytest.raises(SqlParseError):
            parse_statement("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM t").where is None

    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        assert isinstance(stmt, ast.CreateTable)
        assert [c.type for c in stmt.columns] == ["INTEGER", "TEXT", "REAL"]

    def test_create_if_not_exists(self):
        assert parse_statement("CREATE TABLE IF NOT EXISTS t (a)").if_not_exists

    def test_create_default_type_text(self):
        stmt = parse_statement("CREATE TABLE t (a)")
        assert stmt.columns[0].type == "TEXT"

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable) and stmt.if_exists

    def test_empty_statement_rejected(self):
        with pytest.raises(SqlParseError):
            parse_statement("")

    def test_error_mentions_position(self):
        with pytest.raises(SqlParseError) as err:
            parse_statement("SELECT FROM")
        assert "position" in str(err.value)


class TestAstHelpers:
    def test_columns_in_walks_everything(self):
        stmt = parse_select(
            "SELECT a FROM m WHERE b > 1 AND c IN (d, 2) OR e BETWEEN f AND 9"
        )
        assert ast.columns_in(stmt.where) == {"b", "c", "d", "e", "f"}

    def test_contains_aggregate(self):
        stmt = parse_select("SELECT COUNT(*) + 1 FROM m")
        assert ast.contains_aggregate(stmt.items[0].expr)

    def test_no_aggregate(self):
        stmt = parse_select("SELECT a + 1 FROM m")
        assert not ast.contains_aggregate(stmt.items[0].expr)
