"""Unit tests for the JDBC-NetLogger driver, especially pushdown."""

import pytest

from repro.agents.netlogger import NetLoggerAgent
from repro.drivers.netlogger_driver import (
    NetLoggerDriver,
    _equality_pushdown,
    _since_pushdown,
)
from repro.sql.parser import parse_select


@pytest.fixture
def agent(network, host):
    a = NetLoggerAgent(host, network)
    network.clock.advance(600.0)
    return a


@pytest.fixture
def conn(network, agent):
    return NetLoggerDriver(network, gateway_host="gateway").connect(
        "jdbc:netlogger://n0/ulm"
    )


def query(conn, sql):
    return conn.create_statement().execute_query(sql)


class TestPushdownDetection:
    def test_program_equality(self):
        sel = parse_select("SELECT * FROM LogEvent WHERE Program = 'gridftp'")
        assert _equality_pushdown(sel.where) == ("PROG", "gridftp")

    def test_reversed_operands(self):
        sel = parse_select("SELECT * FROM LogEvent WHERE 'Info' = Level")
        assert _equality_pushdown(sel.where) == ("LVL", "Info")

    def test_event_name(self):
        sel = parse_select("SELECT * FROM LogEvent WHERE EventName = 'job.start'")
        assert _equality_pushdown(sel.where) == ("NL.EVNT", "job.start")

    def test_non_pushable_field(self):
        sel = parse_select("SELECT * FROM LogEvent WHERE Message = 'x'")
        assert _equality_pushdown(sel.where) is None

    def test_complex_where_not_pushed(self):
        sel = parse_select("SELECT * FROM LogEvent WHERE Program = 'x' OR Level = 'y'")
        assert _equality_pushdown(sel.where) is None

    def test_since(self):
        sel = parse_select("SELECT * FROM LogEvent WHERE EventTime >= 100.5")
        assert _since_pushdown(sel.where) == 100.5

    def test_since_requires_numeric(self):
        sel = parse_select("SELECT * FROM LogEvent WHERE EventTime >= 'soon'")
        assert _since_pushdown(sel.where) is None


class TestQueries:
    def test_rows_have_glue_shape(self, conn):
        rows = query(conn, "SELECT * FROM LogEvent LIMIT 5").to_dicts()
        assert rows
        for r in rows:
            assert r["HostName"] == "n0"
            assert isinstance(r["EventTime"], float)
            assert r["EventName"]

    def test_program_filter_correct(self, conn):
        rows = query(
            conn, "SELECT Program FROM LogEvent WHERE Program = 'gridftp'"
        ).to_dicts()
        assert all(r["Program"] == "gridftp" for r in rows)

    def test_pushdown_reduces_transfer(self, conn, network):
        """MATCH pushdown must move fewer bytes than a full TAIL."""
        network.stats.reset()
        query(conn, "SELECT * FROM LogEvent WHERE EventName = 'disk.full'")
        pushed = network.stats.bytes_sent
        network.stats.reset()
        query(conn, "SELECT * FROM LogEvent")
        full = network.stats.bytes_sent
        assert pushed < full

    def test_event_time_range(self, conn, network):
        cut = network.clock.now() - 100.0
        rows = query(
            conn, f"SELECT EventTime FROM LogEvent WHERE EventTime >= {cut}"
        ).to_dicts()
        assert all(r["EventTime"] >= cut for r in rows)

    def test_limit_pushed_as_tail(self, conn):
        rows = query(conn, "SELECT EventName FROM LogEvent LIMIT 3").to_dicts()
        assert len(rows) <= 3

    def test_residual_filter_applied_after_pushdown(self, conn):
        """WHERE parts the agent cannot evaluate are applied locally."""
        rows = query(
            conn,
            "SELECT Program, Level FROM LogEvent WHERE Program = 'gridftp' AND Level = 'Info'",
        ).to_dicts()
        assert all(r["Level"] == "Info" and r["Program"] == "gridftp" for r in rows)
