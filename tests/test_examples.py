"""Guard tests: every shipped example must run to completion.

The examples double as living documentation; a refactor that breaks one
should fail CI, not a reader.  Each main() is executed in-process with
its stdout captured and spot-checked.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    try:
        module.main()
    finally:
        # Examples build global-ish state (agents bound to a network);
        # drop the module so a re-import is fresh.
        sys.modules.pop(name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "fine-grained source: SNMP" in out
    assert "from_cache=True" in out
    assert "historical rows recorded" in out


def test_multi_site_monitoring(capsys):
    out = run_example("multi_site_monitoring", capsys)
    assert "site-c: gateway" in out
    assert "wan requests: 0" in out       # cached repeat
    assert "least-loaded host" in out


def test_event_alerts(capsys):
    out = run_example("event_alerts", capsys)
    assert "traps received=" in out
    assert "alert(s)" in out
    assert "native SNMP trap" in out


def test_custom_driver_plugin(capsys):
    out = run_example("custom_driver_plugin", capsys)
    assert "JDBC-EnvSensor" in out
    assert "TemperatureC" in out
    assert "candidates: JDBC-SNMP, JDBC-EnvSensor" in out


def test_operations_center(capsys):
    out = run_example("operations_center", capsys)
    assert "events archived centrally:" in out
    assert "noisiest hosts" in out
    assert "GET /alerts -> 200" in out


def test_scheduler_integration(capsys):
    out = run_example("scheduler_integration", capsys)
    assert "->" in out                     # placements happened
    assert "served from cache" in out
    # Every job found a home on this testbed.
    assert "NO HOST FITS" not in out
