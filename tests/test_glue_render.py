"""Unit tests for the XML and LDIF GLUE renderings (paper §3.1.4)."""

import pytest

from repro.glue.render import (
    ldif_to_rows,
    rows_to_ldif,
    rows_to_xml,
    schema_to_xml,
    xml_to_rows,
)
from repro.glue.schema import STANDARD_SCHEMA

GROUP = STANDARD_SCHEMA.group("Processor")

ROWS = [
    {
        **{f.name: None for f in GROUP.fields},
        "HostName": "n0",
        "SiteName": "site-a",
        "Timestamp": 12.5,
        "CPUCount": 4,
        "LoadAverage1Min": 0.75,
    },
    {
        **{f.name: None for f in GROUP.fields},
        "HostName": "n1",
        "SiteName": "site-a",
        "Timestamp": 12.5,
        "CPUCount": 2,
        "LoadAverage1Min": 1.5,
        "Vendor": "Intel <&> Co",
    },
]


class TestXml:
    def test_schema_rendering_lists_all_groups(self):
        xml = schema_to_xml(STANDARD_SCHEMA)
        for group in STANDARD_SCHEMA:
            assert f'<Group name="{group.name}">' in xml

    def test_rows_round_trip(self):
        xml = rows_to_xml(GROUP, ROWS)
        back = xml_to_rows(GROUP, xml)
        assert len(back) == 2
        assert back[0]["HostName"] == "n0"
        assert back[0]["CPUCount"] == 4
        assert back[0]["LoadAverage1Min"] == pytest.approx(0.75)
        assert back[0]["Vendor"] is None  # NULL omitted, comes back None

    def test_escaping(self):
        xml = rows_to_xml(GROUP, ROWS)
        assert "&lt;&amp;&gt;" in xml
        back = xml_to_rows(GROUP, xml)
        assert back[1]["Vendor"] == "Intel <&> Co"

    def test_types_coerced_on_parse(self):
        back = xml_to_rows(GROUP, rows_to_xml(GROUP, ROWS))
        assert isinstance(back[0]["CPUCount"], int)
        assert isinstance(back[0]["LoadAverage1Min"], float)
        assert isinstance(back[0]["Timestamp"], float)

    def test_boolean_rendering(self):
        host_group = STANDARD_SCHEMA.group("Host")
        row = {f.name: None for f in host_group.fields}
        row.update(HostName="n0", Reachable=True)
        xml = rows_to_xml(host_group, [row])
        assert "<Reachable>true</Reachable>" in xml
        assert xml_to_rows(host_group, xml)[0]["Reachable"] is True

    def test_empty_rows(self):
        assert xml_to_rows(GROUP, rows_to_xml(GROUP, [])) == []


class TestLdif:
    def test_dn_shape(self):
        ldif = rows_to_ldif(GROUP, ROWS, vo="testvo")
        assert (
            "dn: GlueProcessorUniqueID=n0#0,Mds-Vo-name=testvo,o=grid" in ldif
        )
        assert "objectClass: GlueProcessor" in ldif

    def test_attribute_names_prefixed(self):
        ldif = rows_to_ldif(GROUP, ROWS)
        assert "GlueProcessorCPUCount: 4" in ldif
        assert "GlueProcessorLoadAverage1Min: 0.75" in ldif

    def test_round_trip(self):
        back = ldif_to_rows(GROUP, rows_to_ldif(GROUP, ROWS))
        assert len(back) == 2
        assert back[1]["HostName"] == "n1"
        assert back[1]["CPUCount"] == 2
        assert back[0]["Model"] is None

    def test_boolean_ldif_convention(self):
        host_group = STANDARD_SCHEMA.group("Host")
        row = {f.name: None for f in host_group.fields}
        row.update(HostName="n0", Reachable=False)
        ldif = rows_to_ldif(host_group, [row])
        assert "GlueHostReachable: FALSE" in ldif
        assert ldif_to_rows(host_group, ldif)[0]["Reachable"] is False


class TestEndToEnd:
    def test_live_query_results_render_and_round_trip(self, site):
        result = site.gateway.query(
            site.url_for("ganglia"), "SELECT * FROM Processor"
        )
        rows = result.dicts()
        xml_back = xml_to_rows(GROUP, rows_to_xml(GROUP, rows))
        ldif_back = ldif_to_rows(GROUP, rows_to_ldif(GROUP, rows))
        assert [r["HostName"] for r in xml_back] == [r["HostName"] for r in rows]
        assert [r["CPUCount"] for r in ldif_back] == [r["CPUCount"] for r in rows]
