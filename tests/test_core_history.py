"""Unit tests for the historical data store."""

import pytest

from repro.core.history import HistoryStore
from repro.glue.schema import standard_schema


@pytest.fixture
def store():
    return HistoryStore(standard_schema(), max_rows_per_group=100)


def proc_row(host="n0", load=1.0, **overrides):
    row = {
        "HostName": host,
        "SiteName": "s",
        "Timestamp": 1.0,
        "Vendor": None,
        "Model": None,
        "ClockSpeedMHz": None,
        "CPUCount": 2,
        "LoadAverage1Min": load,
        "LoadAverage5Min": load,
        "LoadAverage15Min": load,
        "CPUUtilization": 50.0,
        "CPUIdle": 50.0,
        "CPUUser": 35.0,
        "CPUSystem": 15.0,
    }
    row.update(overrides)
    return row


class TestRecord:
    def test_record_and_count(self, store):
        n = store.record("Processor", [proc_row()], source_url="u", recorded_at=1.0)
        assert n == 1
        assert store.row_count("Processor") == 1

    def test_provenance_columns_attached(self, store):
        store.record("Processor", [proc_row()], source_url="u1", recorded_at=5.0)
        result = store.query("SELECT SourceUrl, RecordedAt FROM Processor")
        assert result.rows == [["u1", 5.0]]

    def test_extra_keys_dropped(self, store):
        row = proc_row()
        row["NotAGlueField"] = 1
        store.record("Processor", [row], source_url="u", recorded_at=1.0)
        assert store.row_count("Processor") == 1

    def test_unknown_group_rejected(self, store):
        with pytest.raises(KeyError):
            store.record("Bogus", [{}], source_url="u", recorded_at=1.0)

    def test_ring_bound_evicts_oldest(self, store):
        for i in range(150):
            store.record(
                "Processor",
                [proc_row(load=float(i))],
                source_url="u",
                recorded_at=float(i),
            )
        assert store.row_count("Processor") == 100
        assert store.rows_evicted == 50
        oldest = store.query("SELECT MIN(RecordedAt) FROM Processor").rows[0][0]
        assert oldest == 50.0

    def test_groups_recorded(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=1.0)
        assert store.groups_recorded() == ["Processor"]


class TestQuery:
    def test_same_sql_as_realtime(self, store):
        store.record("Processor", [proc_row(load=0.5)], source_url="u", recorded_at=1.0)
        store.record("Processor", [proc_row(load=2.5)], source_url="u", recorded_at=2.0)
        result = store.query("SELECT LoadAverage1Min FROM Processor WHERE LoadAverage1Min > 1")
        assert result.rows == [[2.5]]

    def test_source_url_narrows(self, store):
        store.record("Processor", [proc_row()], source_url="u1", recorded_at=1.0)
        store.record("Processor", [proc_row()], source_url="u2", recorded_at=1.0)
        result = store.query("SELECT COUNT(*) FROM Processor", source_url="u1")
        assert result.rows == [[1]]

    def test_time_range_via_recorded_at(self, store):
        for t in (1.0, 2.0, 3.0):
            store.record("Processor", [proc_row()], source_url="u", recorded_at=t)
        result = store.query("SELECT COUNT(*) FROM Processor WHERE RecordedAt >= 2")
        assert result.rows == [[2]]

    def test_query_before_any_record_is_empty(self, store):
        assert store.query("SELECT * FROM Processor").rows == []


class TestRollup:
    def test_buckets_aggregate(self, store):
        for t, load in [(1.0, 1.0), (5.0, 3.0), (12.0, 10.0)]:
            store.record("Processor", [proc_row(load=load)], source_url="u", recorded_at=t)
        out = store.rollup("Processor", "LoadAverage1Min", bucket=10.0)
        assert len(out) == 2
        first = out[0]
        assert first["bucket_start"] == 0.0
        assert first["n"] == 2
        assert first["min"] == 1.0 and first["max"] == 3.0
        assert first["avg"] == pytest.approx(2.0)
        assert out[1]["avg"] == 10.0

    def test_empty_buckets_omitted(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=0.0)
        store.record("Processor", [proc_row()], source_url="u", recorded_at=100.0)
        out = store.rollup("Processor", "LoadAverage1Min", bucket=10.0)
        assert [b["bucket_start"] for b in out] == [0.0, 100.0]

    def test_non_numeric_values_skipped(self, store):
        store.record("Processor", [proc_row(Vendor="Intel")], source_url="u", recorded_at=1.0)
        out = store.rollup("Processor", "Vendor", bucket=10.0)
        assert out == []

    def test_host_filter(self, store):
        store.record("Processor", [proc_row(host="a", load=1.0)], source_url="u", recorded_at=1.0)
        store.record("Processor", [proc_row(host="b", load=9.0)], source_url="u", recorded_at=2.0)
        out = store.rollup("Processor", "LoadAverage1Min", bucket=10.0, host="a")
        assert out[0]["max"] == 1.0

    def test_bad_bucket_rejected(self, store):
        with pytest.raises(ValueError):
            store.rollup("Processor", "LoadAverage1Min", bucket=0.0)


class TestRetention:
    def test_trim_older_than(self, store):
        for t in (1.0, 5.0, 9.0):
            store.record("Processor", [proc_row()], source_url="u", recorded_at=t)
        assert store.trim_older_than(5.0) == 1
        assert store.row_count("Processor") == 2
        assert store.rows_evicted == 1

    def test_trim_spans_all_groups(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=1.0)
        host_row = {"HostName": "n0", "SiteName": "s", "Timestamp": 1.0,
                    "UniqueId": "x", "Reachable": True, "AgentName": "a"}
        store.record("Host", [host_row], source_url="u", recorded_at=1.0)
        assert store.trim_older_than(2.0) == 2

    def test_trim_noop_when_all_fresh(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=10.0)
        assert store.trim_older_than(5.0) == 0


class TestSeries:
    def test_series_pairs(self, store):
        for t, load in [(1.0, 0.1), (2.0, 0.2)]:
            store.record("Processor", [proc_row(load=load)], source_url="u", recorded_at=t)
        series = store.series("Processor", "LoadAverage1Min")
        assert series == [(1.0, 0.1), (2.0, 0.2)]

    def test_series_filters_by_host(self, store):
        store.record("Processor", [proc_row(host="a")], source_url="u", recorded_at=1.0)
        store.record("Processor", [proc_row(host="b")], source_url="u", recorded_at=2.0)
        assert len(store.series("Processor", "LoadAverage1Min", host="a")) == 1

    def test_series_since(self, store):
        for t in (1.0, 5.0, 9.0):
            store.record("Processor", [proc_row()], source_url="u", recorded_at=t)
        assert len(store.series("Processor", "LoadAverage1Min", since=4.0)) == 2

    def test_series_unknown_group_empty(self, store):
        assert store.series("Job", "CPUSeconds") == []


class TestRetentionEdgeCases:
    def test_ring_and_trim_interact(self, store):
        # Fill past the ring bound, then trim by age: the two retention
        # mechanisms must compose (no double counting, no resurrection).
        for i in range(150):
            store.record(
                "Processor",
                [proc_row(load=float(i))],
                source_url="u",
                recorded_at=float(i),
            )
        assert store.row_count("Processor") == 100  # ring kept 50..149
        dropped = store.trim_older_than(120.0)
        assert dropped == 70
        assert store.row_count("Processor") == 30
        assert store.rows_evicted == 50 + 70
        oldest = store.query("SELECT MIN(RecordedAt) FROM Processor").rows[0][0]
        assert oldest == 120.0
        # New records land on the trimmed table and the ring re-fills.
        store.record(
            "Processor", [proc_row(load=999.0)], source_url="u", recorded_at=200.0
        )
        assert store.row_count("Processor") == 31

    def test_recorded_at_none_rows_survive_trim(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=None)
        store.record("Processor", [proc_row()], source_url="u", recorded_at=1.0)
        assert store.trim_older_than(10.0) == 1
        assert store.row_count("Processor") == 1  # the None row is exempt

    def test_series_since_skips_recorded_at_none(self, store):
        store.record("Processor", [proc_row(load=1.0)], source_url="u", recorded_at=None)
        store.record("Processor", [proc_row(load=2.0)], source_url="u", recorded_at=5.0)
        assert store.series("Processor", "LoadAverage1Min") == [
            (None, 1.0),
            (5.0, 2.0),
        ]
        assert store.series("Processor", "LoadAverage1Min", since=0.0) == [(5.0, 2.0)]

    def test_since_bisection_matches_linear_filter(self, store):
        for i in range(20):
            store.record(
                "Processor",
                [proc_row(load=float(i))],
                source_url="u",
                recorded_at=float(i),
            )
        for since in (-1.0, 0.0, 7.5, 19.0, 25.0):
            got = store.series("Processor", "LoadAverage1Min", since=since)
            want = [
                (float(i), float(i)) for i in range(20) if float(i) >= since
            ]
            assert got == want, f"since={since}"

    def test_bool_values_excluded_from_rollup(self, store):
        store.record(
            "Host",
            [{"HostName": "n0", "SiteName": "s", "Reachable": True}],
            source_url="u",
            recorded_at=1.0,
        )
        assert store.rollup("Host", "Reachable", bucket=10.0) == []
        # Sanity: the same row does roll up on a numeric field.
        store.record(
            "Processor", [proc_row(load=3.0)], source_url="u", recorded_at=1.0
        )
        assert store.rollup("Processor", "LoadAverage1Min", bucket=10.0)[0]["n"] == 1


class TestDurableRoundTrip:
    def _durable_store(self, disk, **kwargs):
        from repro.storage.engine import HistoryEngine

        engine = HistoryEngine(disk, sync_interval=4, max_rows_per_group=100)
        return HistoryStore(
            standard_schema(), max_rows_per_group=100, engine=engine, **kwargs
        )

    def test_record_crash_recover_serves_identical_answers(self):
        from repro.storage.simdisk import SimDisk

        disk = SimDisk()
        store = self._durable_store(disk)
        for i in range(12):
            store.record(
                "Processor",
                [proc_row(load=float(i))],
                source_url="u",
                recorded_at=float(i),
            )
        store.sync()  # everything acked
        sql = "SELECT HostName, LoadAverage1Min, RecordedAt FROM Processor"
        want_query = store.query(sql).rows
        want_series = store.series("Processor", "LoadAverage1Min", since=3.0)
        want_rollup = store.rollup("Processor", "LoadAverage1Min", bucket=5.0)

        disk.crash(None)
        recovered = self._durable_store(disk)
        assert recovered.rows_recovered == 12
        assert recovered.query(sql).rows == want_query
        assert recovered.series("Processor", "LoadAverage1Min", since=3.0) == want_series
        assert recovered.rollup("Processor", "LoadAverage1Min", bucket=5.0) == want_rollup

    def test_unacked_suffix_lost_on_crash(self):
        from repro.storage.simdisk import SimDisk

        disk = SimDisk()
        store = self._durable_store(disk)
        for i in range(6):  # interval 4: rows 4 and 5 unacked
            store.record(
                "Processor",
                [proc_row(load=float(i))],
                source_url="u",
                recorded_at=float(i),
            )
        disk.crash(None)
        recovered = self._durable_store(disk)
        assert recovered.row_count("Processor") == 4

    def test_trim_not_resurrected_by_crash(self):
        from repro.storage.simdisk import SimDisk

        disk = SimDisk()
        store = self._durable_store(disk)
        for i in range(8):
            store.record(
                "Processor",
                [proc_row(load=float(i))],
                source_url="u",
                recorded_at=float(i),
            )
        store.trim_older_than(4.0)
        disk.crash(None)
        recovered = self._durable_store(disk)
        oldest = recovered.query("SELECT MIN(RecordedAt) FROM Processor").rows[0][0]
        assert oldest == 4.0

    def test_checkpoint_then_recover_without_wal(self):
        from repro.storage.simdisk import SimDisk

        disk = SimDisk()
        store = self._durable_store(disk)
        store.record("Processor", [proc_row()], source_url="u", recorded_at=1.0)
        store.checkpoint()  # seals the row; WAL is empty again
        disk.crash(None)
        recovered = self._durable_store(disk)
        assert recovered.row_count("Processor") == 1
        assert recovered.engine.recovery_report.wal_records_replayed == 0
