"""Unit tests for the historical data store."""

import pytest

from repro.core.history import HistoryStore
from repro.glue.schema import standard_schema


@pytest.fixture
def store():
    return HistoryStore(standard_schema(), max_rows_per_group=100)


def proc_row(host="n0", load=1.0, **overrides):
    row = {
        "HostName": host,
        "SiteName": "s",
        "Timestamp": 1.0,
        "Vendor": None,
        "Model": None,
        "ClockSpeedMHz": None,
        "CPUCount": 2,
        "LoadAverage1Min": load,
        "LoadAverage5Min": load,
        "LoadAverage15Min": load,
        "CPUUtilization": 50.0,
        "CPUIdle": 50.0,
        "CPUUser": 35.0,
        "CPUSystem": 15.0,
    }
    row.update(overrides)
    return row


class TestRecord:
    def test_record_and_count(self, store):
        n = store.record("Processor", [proc_row()], source_url="u", recorded_at=1.0)
        assert n == 1
        assert store.row_count("Processor") == 1

    def test_provenance_columns_attached(self, store):
        store.record("Processor", [proc_row()], source_url="u1", recorded_at=5.0)
        result = store.query("SELECT SourceUrl, RecordedAt FROM Processor")
        assert result.rows == [["u1", 5.0]]

    def test_extra_keys_dropped(self, store):
        row = proc_row()
        row["NotAGlueField"] = 1
        store.record("Processor", [row], source_url="u", recorded_at=1.0)
        assert store.row_count("Processor") == 1

    def test_unknown_group_rejected(self, store):
        with pytest.raises(KeyError):
            store.record("Bogus", [{}], source_url="u", recorded_at=1.0)

    def test_ring_bound_evicts_oldest(self, store):
        for i in range(150):
            store.record(
                "Processor",
                [proc_row(load=float(i))],
                source_url="u",
                recorded_at=float(i),
            )
        assert store.row_count("Processor") == 100
        assert store.rows_evicted == 50
        oldest = store.query("SELECT MIN(RecordedAt) FROM Processor").rows[0][0]
        assert oldest == 50.0

    def test_groups_recorded(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=1.0)
        assert store.groups_recorded() == ["Processor"]


class TestQuery:
    def test_same_sql_as_realtime(self, store):
        store.record("Processor", [proc_row(load=0.5)], source_url="u", recorded_at=1.0)
        store.record("Processor", [proc_row(load=2.5)], source_url="u", recorded_at=2.0)
        result = store.query("SELECT LoadAverage1Min FROM Processor WHERE LoadAverage1Min > 1")
        assert result.rows == [[2.5]]

    def test_source_url_narrows(self, store):
        store.record("Processor", [proc_row()], source_url="u1", recorded_at=1.0)
        store.record("Processor", [proc_row()], source_url="u2", recorded_at=1.0)
        result = store.query("SELECT COUNT(*) FROM Processor", source_url="u1")
        assert result.rows == [[1]]

    def test_time_range_via_recorded_at(self, store):
        for t in (1.0, 2.0, 3.0):
            store.record("Processor", [proc_row()], source_url="u", recorded_at=t)
        result = store.query("SELECT COUNT(*) FROM Processor WHERE RecordedAt >= 2")
        assert result.rows == [[2]]

    def test_query_before_any_record_is_empty(self, store):
        assert store.query("SELECT * FROM Processor").rows == []


class TestRollup:
    def test_buckets_aggregate(self, store):
        for t, load in [(1.0, 1.0), (5.0, 3.0), (12.0, 10.0)]:
            store.record("Processor", [proc_row(load=load)], source_url="u", recorded_at=t)
        out = store.rollup("Processor", "LoadAverage1Min", bucket=10.0)
        assert len(out) == 2
        first = out[0]
        assert first["bucket_start"] == 0.0
        assert first["n"] == 2
        assert first["min"] == 1.0 and first["max"] == 3.0
        assert first["avg"] == pytest.approx(2.0)
        assert out[1]["avg"] == 10.0

    def test_empty_buckets_omitted(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=0.0)
        store.record("Processor", [proc_row()], source_url="u", recorded_at=100.0)
        out = store.rollup("Processor", "LoadAverage1Min", bucket=10.0)
        assert [b["bucket_start"] for b in out] == [0.0, 100.0]

    def test_non_numeric_values_skipped(self, store):
        store.record("Processor", [proc_row(Vendor="Intel")], source_url="u", recorded_at=1.0)
        out = store.rollup("Processor", "Vendor", bucket=10.0)
        assert out == []

    def test_host_filter(self, store):
        store.record("Processor", [proc_row(host="a", load=1.0)], source_url="u", recorded_at=1.0)
        store.record("Processor", [proc_row(host="b", load=9.0)], source_url="u", recorded_at=2.0)
        out = store.rollup("Processor", "LoadAverage1Min", bucket=10.0, host="a")
        assert out[0]["max"] == 1.0

    def test_bad_bucket_rejected(self, store):
        with pytest.raises(ValueError):
            store.rollup("Processor", "LoadAverage1Min", bucket=0.0)


class TestRetention:
    def test_trim_older_than(self, store):
        for t in (1.0, 5.0, 9.0):
            store.record("Processor", [proc_row()], source_url="u", recorded_at=t)
        assert store.trim_older_than(5.0) == 1
        assert store.row_count("Processor") == 2
        assert store.rows_evicted == 1

    def test_trim_spans_all_groups(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=1.0)
        host_row = {"HostName": "n0", "SiteName": "s", "Timestamp": 1.0,
                    "UniqueId": "x", "Reachable": True, "AgentName": "a"}
        store.record("Host", [host_row], source_url="u", recorded_at=1.0)
        assert store.trim_older_than(2.0) == 2

    def test_trim_noop_when_all_fresh(self, store):
        store.record("Processor", [proc_row()], source_url="u", recorded_at=10.0)
        assert store.trim_older_than(5.0) == 0


class TestSeries:
    def test_series_pairs(self, store):
        for t, load in [(1.0, 0.1), (2.0, 0.2)]:
            store.record("Processor", [proc_row(load=load)], source_url="u", recorded_at=t)
        series = store.series("Processor", "LoadAverage1Min")
        assert series == [(1.0, 0.1), (2.0, 0.2)]

    def test_series_filters_by_host(self, store):
        store.record("Processor", [proc_row(host="a")], source_url="u", recorded_at=1.0)
        store.record("Processor", [proc_row(host="b")], source_url="u", recorded_at=2.0)
        assert len(store.series("Processor", "LoadAverage1Min", host="a")) == 1

    def test_series_since(self, store):
        for t in (1.0, 5.0, 9.0):
            store.record("Processor", [proc_row()], source_url="u", recorded_at=t)
        assert len(store.series("Processor", "LoadAverage1Min", since=4.0)) == 2

    def test_series_unknown_group_empty(self, store):
        assert store.series("Job", "CPUSeconds") == []
