"""Unit tests for gateway policy validation."""

import pytest

from repro.core.errors import PolicyError
from repro.core.policy import FailureAction, GatewayPolicy


class TestDefaults:
    def test_defaults_valid(self):
        p = GatewayPolicy()
        assert p.pool_enabled
        assert p.failure_action is FailureAction.DYNAMIC

    def test_failure_actions_complete(self):
        assert {a.value for a in FailureAction} == {
            "report",
            "retry",
            "try_next",
            "dynamic",
        }


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"query_cache_ttl": -1.0},
            {"pool_max_per_source": 0},
            {"pool_idle_ttl": 0.0},
            {"failure_retries": -1},
            {"session_ttl": 0.0},
            {"default_query_timeout": 0.0},
            {"event_fast_buffer_size": 0},
            {"event_disk_buffer_size": -1},
            {"history_max_rows_per_group": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            GatewayPolicy(**kwargs)

    def test_boundary_values_accepted(self):
        GatewayPolicy(
            query_cache_ttl=0.0,
            pool_max_per_source=1,
            failure_retries=0,
            event_fast_buffer_size=1,
            event_disk_buffer_size=0,
            history_max_rows_per_group=1,
        )
