"""Unit tests for JDBC URL parsing."""

import pytest

from repro.dbapi.exceptions import SQLException
from repro.dbapi.url import JdbcUrl


class TestParsing:
    def test_paper_nws_example(self):
        url = JdbcUrl.parse("jdbc:nws://snowboard.workgroup/perfdata")
        assert url.protocol == "nws"
        assert url.host == "snowboard.workgroup"
        assert url.path == "perfdata"

    def test_paper_wildcard_example(self):
        url = JdbcUrl.parse("jdbc:://snowboard.workgroup/perfdata")
        assert url.is_wildcard

    def test_wildcard_without_colon(self):
        assert JdbcUrl.parse("jdbc://host/x").is_wildcard

    def test_port(self):
        assert JdbcUrl.parse("jdbc:snmp://h:1161/x").port == 1161

    def test_no_port_is_none(self):
        assert JdbcUrl.parse("jdbc:snmp://h/x").port is None

    def test_query_params(self):
        url = JdbcUrl.parse("jdbc:snmp://h/x?community=secret&retries=3")
        assert url.params == {"community": "secret", "retries": "3"}

    def test_empty_path(self):
        assert JdbcUrl.parse("jdbc:snmp://h").path == ""

    def test_protocol_lowercased(self):
        assert JdbcUrl.parse("jdbc:SNMP://h/x").protocol == "snmp"

    @pytest.mark.parametrize(
        "bad",
        ["", "http://h/x", "jdbc:", "jdbc:snmp:/h", "jdbc:snmp://", "snmp://h"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SQLException):
            JdbcUrl.parse(bad)

    def test_whitespace_stripped(self):
        assert JdbcUrl.parse("  jdbc:snmp://h/x  ").host == "h"


class TestRendering:
    def test_round_trip(self):
        text = "jdbc:snmp://h:1161/x?community=public"
        assert str(JdbcUrl.parse(text)) == text

    def test_wildcard_round_trip(self):
        url = JdbcUrl.parse("jdbc://h/x")
        assert JdbcUrl.parse(str(url)) == url

    def test_with_protocol(self):
        url = JdbcUrl.parse("jdbc://h/x").with_protocol("NWS")
        assert url.protocol == "nws"
        assert not url.is_wildcard

    def test_params_sorted_in_string(self):
        url = JdbcUrl.parse("jdbc:snmp://h/x?b=2&a=1")
        assert str(url).endswith("?a=1&b=2")

    def test_equality_and_hash(self):
        a = JdbcUrl.parse("jdbc:snmp://h/x")
        b = JdbcUrl.parse("jdbc:snmp://h/x")
        assert a == b
