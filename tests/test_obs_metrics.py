"""Observability plane: registry, compat views, self-monitoring driver.

The contract under test is threefold: the :class:`MetricsRegistry` is a
correct home for counters/gauges/histograms; the managers' historical
``stats`` surfaces still read and write the exact keys they always did
(now as views over registry instruments); and ``SELECT * FROM
GatewayMetrics`` through the *normal* driver stack returns the same live
numbers, because the self-monitoring driver's "agent" is the registry
itself.
"""

from __future__ import annotations

import pytest

from repro.core.request_manager import QueryMode
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
)
from repro.web.servlet import GatewayServlet, http_get

GRM_URL = "jdbc:grm://localhost/gateway"


def grm_rows(gateway, sql="SELECT Name, Kind, Value FROM GatewayMetrics"):
    """Run a self-monitoring query and return {name: value} per row."""
    result = gateway.query([GRM_URL], sql, mode=QueryMode.REALTIME)
    assert result.failed_sources == 0, [s.error for s in result.statuses]
    idx = {c: i for i, c in enumerate(result.columns)}
    return {row[idx["Name"]]: row[idx["Value"]] for row in result.rows}


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_instruments_minted_once(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        for name in ("z.last", "a.first", "m.mid"):
            reg.counter(name)
        assert reg.names() == ["a.first", "m.mid", "z.last"]

    def test_get_returns_none_for_unknown(self):
        assert MetricsRegistry().get("nope") is None

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(-2.5)
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == -2.5
        assert snap["h"]["count"] == 3
        assert snap["h"]["mean"] == pytest.approx(2.0)
        assert set(snap["h"]) == {"count", "mean", "p50", "p95", "p99"}

    def test_as_rows_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").record(4.0)
        rows = {row["name"]: row for row in reg.as_rows()}
        assert rows["c"]["kind"] == "counter"
        assert rows["c"]["value"] == 1
        assert rows["c"]["count"] is None and rows["c"]["p99"] is None
        assert rows["h"]["kind"] == "histogram"
        assert rows["h"]["count"] == 1
        assert rows["h"]["p50"] == pytest.approx(4.0)


class TestInstruments:
    def test_counter_is_monotone(self):
        c = Counter("c")
        c.inc()
        c.add(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.add(-1)
        c.reset()
        assert c.value == 0

    def test_gauge_moves_both_ways(self):
        g = Gauge("g")
        g.set(10)
        g.add(-4)
        assert g.value == 6

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("h").record(-0.1)

    def test_histogram_quantile_domain(self):
        h = Histogram("h")
        h.record(1.0)
        for bad in (0, -5, 101):
            with pytest.raises(ValueError):
                h.quantile(bad)

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("h").quantile(50) == 0.0

    def test_all_zero_samples(self):
        h = Histogram("h")
        for _ in range(5):
            h.record(0.0)
        assert h.p50 == 0.0 and h.p99 == 0.0 and h.mean == 0.0


# ---------------------------------------------------------------------------
# StatsView: the dict-shaped compatibility surface
# ---------------------------------------------------------------------------
class TestStatsView:
    def test_iterates_in_declaration_order(self):
        reg = MetricsRegistry()
        view = StatsView(reg, "p", ("zulu", "alpha", "mike"))
        assert list(view) == ["zulu", "alpha", "mike"]
        assert dict(view) == {"zulu": 0, "alpha": 0, "mike": 0}

    def test_writes_land_on_registry_counters(self):
        reg = MetricsRegistry()
        view = StatsView(reg, "p", ("hits",))
        view["hits"] += 3
        assert view["hits"] == 3
        assert reg.counter("p.hits").value == 3

    def test_registry_writes_visible_through_view(self):
        reg = MetricsRegistry()
        view = StatsView(reg, "p", ("hits",))
        reg.counter("p.hits").add(7)
        assert view["hits"] == 7

    def test_decrease_raises(self):
        reg = MetricsRegistry()
        view = StatsView(reg, "p", ("hits",))
        view["hits"] = 5
        with pytest.raises(ValueError, match="monotone"):
            view["hits"] = 4

    def test_unknown_key_raises(self):
        view = StatsView(MetricsRegistry(), "p", ("hits",))
        with pytest.raises(KeyError):
            view["misses"]

    def test_new_key_appends(self):
        view = StatsView(MetricsRegistry(), "p", ("hits",))
        view["late"] = 1
        assert list(view) == ["hits", "late"]


# ---------------------------------------------------------------------------
# Manager stats kept their historical key names (compat acceptance)
# ---------------------------------------------------------------------------
class TestManagerCompat:
    def test_request_manager_keys_and_liveness(self, site):
        stats = site.gateway.request_manager.stats
        before = stats["queries"]
        site.gateway.query(
            [site.url_for("snmp")], "SELECT HostName FROM Host",
            mode=QueryMode.REALTIME,
        )
        assert stats["queries"] == before + 1
        assert site.gateway.metrics.counter("requests.queries").value == before + 1

    def test_cache_attribute_shim(self, site):
        cache = site.gateway.cache
        before = cache.hits
        cache.hits = before + 2
        assert cache.hits == before + 2
        assert site.gateway.metrics.counter("cache.hits").value == before + 2

    def test_network_stats_registry_backed(self, site):
        net = site.network
        before = net.stats.requests
        site.gateway.query(
            [site.url_for("snmp")], "SELECT HostName FROM Host",
            mode=QueryMode.REALTIME,
        )
        assert net.stats.requests > before
        assert net.metrics.counter("net.requests").value == net.stats.requests

    def test_dispatcher_stats_in_registry(self, site):
        stats = site.gateway.dispatcher.stats.as_dict()
        assert "hedges_fired" in stats and "singleflight_joins" in stats


# ---------------------------------------------------------------------------
# The self-monitoring driver: the monitor monitors itself
# ---------------------------------------------------------------------------
class TestSelfMonitoringDriver:
    def test_select_returns_live_registry_values(self, site):
        gw = site.gateway
        gw.query(
            [site.url_for("snmp")], "SELECT HostName FROM Host",
            mode=QueryMode.REALTIME,
        )
        v1 = grm_rows(gw)["requests.queries"]
        assert v1 >= 1
        for _ in range(3):
            gw.query(
                [site.url_for("snmp")], "SELECT HostName FROM Host",
                mode=QueryMode.REALTIME,
            )
        v2 = grm_rows(gw)["requests.queries"]
        assert v2 >= v1 + 3  # live values, not a stale snapshot

    def test_network_counters_folded_in(self, site):
        names = grm_rows(site.gateway)
        assert any(name.startswith("net.") for name in names)

    def test_where_filter_narrows_rows(self, site):
        site.gateway.query(
            [site.url_for("snmp")], "SELECT HostName FROM Host",
            mode=QueryMode.REALTIME,
        )
        names = grm_rows(
            site.gateway,
            "SELECT Name, Value FROM GatewayMetrics "
            "WHERE Name LIKE 'requests.%'",
        )
        assert names
        assert all(name.startswith("requests.") for name in names)

    def test_each_scan_counts_itself(self, site):
        gw = site.gateway
        grm_rows(gw)
        first = gw.metrics.counter("obs.self_scans").value
        grm_rows(gw)
        assert gw.metrics.counter("obs.self_scans").value == first + 1

    def test_histogram_quantiles_served(self, site):
        gw = site.gateway
        gw.query(
            [site.url_for("snmp")], "SELECT HostName FROM Host",
            mode=QueryMode.REALTIME,
        )
        result = gw.query(
            [GRM_URL],
            "SELECT Name, Kind, P50, P99 FROM GatewayMetrics "
            "WHERE Name = 'gateway.query_elapsed'",
            mode=QueryMode.REALTIME,
        )
        idx = {c: i for i, c in enumerate(result.columns)}
        (row,) = result.rows
        assert row[idx["Kind"]] == "histogram"
        assert 0 < row[idx["P50"]] <= row[idx["P99"]]


# ---------------------------------------------------------------------------
# Console panels and servlet endpoints
# ---------------------------------------------------------------------------
@pytest.fixture
def servlet(site):
    return GatewayServlet(site.gateway)


def get(site, servlet, target):
    return http_get(site.network, site.host_names()[0], servlet.address, target)


class TestSurfaces:
    def test_metrics_endpoint(self, site, servlet):
        code, body = get(site, servlet, "/metrics")
        assert code == 200
        assert "Gateway metrics" in body
        assert "requests.queries (counter):" in body

    def test_trace_digest_endpoint(self, site, servlet):
        site.gateway.query(
            [site.url_for("snmp")], "SELECT HostName FROM Host",
            mode=QueryMode.REALTIME,
        )
        code, body = get(site, servlet, "/trace")
        assert code == 200
        trace_id = site.gateway.tracer.last().trace_id
        assert f"- {trace_id}: query" in body

    def test_trace_detail_endpoint(self, site, servlet):
        site.gateway.query(
            [site.url_for("snmp")], "SELECT HostName FROM Host",
            mode=QueryMode.REALTIME,
        )
        trace_id = site.gateway.tracer.last().trace_id
        code, body = get(site, servlet, f"/trace/{trace_id}")
        assert code == 200
        assert body.startswith(f"trace {trace_id} · query")
        assert "└─" in body  # rendered tree, not the digest

    def test_trace_unknown_id_404(self, site, servlet):
        code, body = get(site, servlet, "/trace/q999999")
        assert code == 404

    def test_metrics_panel_histogram_line(self, site, servlet):
        site.gateway.query(
            [site.url_for("snmp")], "SELECT HostName FROM Host",
            mode=QueryMode.REALTIME,
        )
        body = servlet.console.metrics_panel()
        assert "gateway.query_elapsed (histogram):" in body
        assert "p95=" in body

    def test_gateway_stats_counts_observability(self, site):
        stats = site.gateway.stats()
        assert stats["metrics"]["instruments"] > 0
