"""Unit tests for the HealthTracker circuit-breaker state machine."""

import pytest

from repro.core.errors import PolicyError
from repro.core.health import BACKOFF_JITTER, BreakerState, HealthTracker
from repro.core.policy import GatewayPolicy
from repro.simnet.clock import VirtualClock

KEY = "jdbc:snmp://n0/system"


def make_tracker(clock=None, **policy_kwargs):
    policy_kwargs.setdefault("breaker_failure_threshold", 3)
    policy_kwargs.setdefault("breaker_base_backoff", 10.0)
    policy_kwargs.setdefault("breaker_max_backoff", 80.0)
    clock = clock or VirtualClock()
    return clock, HealthTracker(clock, GatewayPolicy(**policy_kwargs))


def trip(clock, tracker, key=KEY, n=3):
    for _ in range(n):
        tracker.record_failure(key, "boom")


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        _, tracker = make_tracker()
        assert tracker.state(KEY) is BreakerState.CLOSED
        assert tracker.allow_request(KEY)

    def test_trips_open_at_threshold(self):
        clock, tracker = make_tracker()
        tracker.record_failure(KEY)
        tracker.record_failure(KEY)
        assert tracker.state(KEY) is BreakerState.CLOSED
        tracker.record_failure(KEY)
        assert tracker.state(KEY) is BreakerState.OPEN
        assert tracker.stats["trips"] == 1

    def test_success_resets_consecutive_count(self):
        _, tracker = make_tracker()
        tracker.record_failure(KEY)
        tracker.record_failure(KEY)
        tracker.record_success(KEY)
        tracker.record_failure(KEY)
        tracker.record_failure(KEY)
        assert tracker.state(KEY) is BreakerState.CLOSED

    def test_open_short_circuits(self):
        clock, tracker = make_tracker()
        trip(clock, tracker)
        assert not tracker.allow_request(KEY)
        assert tracker.health(KEY).short_circuits == 1
        assert tracker.stats["short_circuits"] == 1

    def test_half_open_after_backoff(self):
        clock, tracker = make_tracker()
        trip(clock, tracker)
        # The jittered wait is within [base, base * (1+J)], capped at max.
        clock.advance(10.0 * (1 + BACKOFF_JITTER))
        assert tracker.allow_request(KEY)
        assert tracker.state(KEY) is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        clock, tracker = make_tracker()
        trip(clock, tracker)
        clock.advance(15.0)
        assert tracker.allow_request(KEY)
        tracker.record_success(KEY)
        assert tracker.state(KEY) is BreakerState.CLOSED
        assert tracker.stats["recoveries"] == 1
        # The backoff streak resets: the next trip starts at base again.
        trip(clock, tracker)
        assert tracker.health(KEY).current_backoff == 10.0

    def test_probe_failure_reopens_with_doubled_backoff(self):
        clock, tracker = make_tracker()
        trip(clock, tracker)
        assert tracker.health(KEY).current_backoff == 10.0
        clock.advance(15.0)
        assert tracker.allow_request(KEY)  # HALF_OPEN probe window
        tracker.record_failure(KEY, "still dead")
        assert tracker.state(KEY) is BreakerState.OPEN
        assert tracker.health(KEY).current_backoff == 20.0
        assert tracker.health(KEY).trips == 2

    def test_backoff_capped_at_max(self):
        clock, tracker = make_tracker()
        trip(clock, tracker)
        for _ in range(6):  # 10 -> 20 -> 40 -> 80 -> 80 ...
            clock.advance(80.0 * (1 + BACKOFF_JITTER))
            assert tracker.allow_request(KEY)
            tracker.record_failure(KEY)
        entry = tracker.health(KEY)
        assert entry.current_backoff == 80.0
        assert entry.open_until - entry.opened_at <= 80.0

    def test_jittered_wait_within_bounds(self):
        clock, tracker = make_tracker()
        trip(clock, tracker)
        entry = tracker.health(KEY)
        wait = entry.open_until - entry.opened_at
        assert 10.0 <= wait <= 10.0 * (1 + BACKOFF_JITTER)

    def test_half_open_multi_probe_policy(self):
        clock, tracker = make_tracker(breaker_half_open_probes=2)
        trip(clock, tracker)
        clock.advance(15.0)
        assert tracker.allow_request(KEY)
        tracker.record_success(KEY)
        assert tracker.state(KEY) is BreakerState.HALF_OPEN  # 1 of 2
        assert tracker.allow_request(KEY)
        tracker.record_success(KEY)
        assert tracker.state(KEY) is BreakerState.CLOSED

    def test_disabled_policy_never_trips(self):
        clock, tracker = make_tracker(breaker_enabled=False)
        trip(clock, tracker, n=10)
        assert tracker.state(KEY) is BreakerState.CLOSED
        assert tracker.allow_request(KEY)
        assert not tracker.is_quarantined(KEY)
        # Totals still observed, for the scoreboard.
        assert tracker.health(KEY).total_failures == 10


class TestAdministration:
    def test_is_quarantined_only_while_open(self):
        clock, tracker = make_tracker()
        assert not tracker.is_quarantined(KEY)
        trip(clock, tracker)
        assert tracker.is_quarantined(KEY)
        clock.advance(15.0)
        tracker.allow_request(KEY)  # -> HALF_OPEN
        assert not tracker.is_quarantined(KEY)

    def test_reset_one_and_all(self):
        clock, tracker = make_tracker()
        trip(clock, tracker)
        trip(clock, tracker, key="other")
        tracker.reset(KEY)
        assert tracker.state(KEY) is BreakerState.CLOSED
        assert tracker.state("other") is BreakerState.OPEN
        tracker.reset()
        assert tracker.state("other") is BreakerState.CLOSED

    def test_scoreboard_and_summary(self):
        clock, tracker = make_tracker()
        tracker.record_success("alive")
        trip(clock, tracker)
        board = tracker.scoreboard()
        assert set(board) == {"alive", KEY}
        assert board[KEY]["state"] == "open"
        assert board["alive"]["total_successes"] == 1
        summary = tracker.summary()
        assert summary["sources"] == 2
        assert summary["open"] == 1 and summary["closed"] == 1
        assert summary["trips"] == 1

    def test_transition_callback_sequence(self):
        clock = VirtualClock()
        seen = []
        tracker = HealthTracker(
            clock,
            GatewayPolicy(breaker_failure_threshold=2, breaker_base_backoff=5.0),
            on_transition=lambda key, old, new, e: seen.append((key, old, new)),
        )
        tracker.record_failure(KEY)
        tracker.record_failure(KEY)
        clock.advance(10.0)
        tracker.allow_request(KEY)
        tracker.record_success(KEY)
        assert seen == [
            (KEY, BreakerState.CLOSED, BreakerState.OPEN),
            (KEY, BreakerState.OPEN, BreakerState.HALF_OPEN),
            (KEY, BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]


class TestPolicyValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(PolicyError):
            GatewayPolicy(breaker_failure_threshold=0)

    def test_base_backoff_must_be_positive(self):
        with pytest.raises(PolicyError):
            GatewayPolicy(breaker_base_backoff=0.0)

    def test_max_backoff_must_cover_base(self):
        with pytest.raises(PolicyError):
            GatewayPolicy(breaker_base_backoff=60.0, breaker_max_backoff=5.0)

    def test_half_open_probes_must_be_positive(self):
        with pytest.raises(PolicyError):
            GatewayPolicy(breaker_half_open_probes=0)
