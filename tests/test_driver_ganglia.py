"""Unit tests for the JDBC-Ganglia driver (coarse-grained, cached)."""

import pytest

from repro.agents.ganglia import GangliaAgent
from repro.drivers.ganglia_driver import GangliaDriver


@pytest.fixture
def agent(network, hosts):
    return GangliaAgent("cl", hosts, network)


@pytest.fixture
def driver(network):
    return GangliaDriver(network, gateway_host="gateway", cache_ttl=15.0)


@pytest.fixture
def conn(driver, agent, hosts):
    return driver.connect(f"jdbc:ganglia://{hosts[0].spec.name}/cl")


def query(conn, sql):
    return conn.create_statement().execute_query(sql)


class TestCoarseGrained:
    def test_one_query_returns_all_cluster_hosts(self, conn, hosts):
        rows = query(conn, "SELECT * FROM Processor").to_dicts()
        assert {r["HostName"] for r in rows} == {h.spec.name for h in hosts}

    def test_single_metric_still_fetches_dump(self, conn, agent):
        before = agent.requests_served
        query(conn, "SELECT LoadAverage1Min FROM Processor")
        assert agent.requests_served == before + 1

    def test_sitename_from_cluster(self, conn):
        rows = query(conn, "SELECT SiteName FROM Processor").to_dicts()
        assert all(r["SiteName"] == "cl" for r in rows)

    def test_memory_unit_conversion(self, conn, hosts):
        rows = query(conn, "SELECT HostName, RAMSizeMB FROM MainMemory").to_dicts()
        by_host = {r["HostName"]: r for r in rows}
        for h in hosts:
            assert by_host[h.spec.name]["RAMSizeMB"] == pytest.approx(h.spec.ram_mb)

    def test_vendor_null(self, conn):
        rows = query(conn, "SELECT Vendor FROM Processor").to_dicts()
        assert all(r["Vendor"] is None for r in rows)

    def test_architecture_group(self, conn, hosts):
        rows = query(conn, "SELECT HostName, PlatformType, SMPSize FROM Architecture").to_dicts()
        by_host = {r["HostName"]: r for r in rows}
        h = hosts[0]
        assert by_host[h.spec.name]["PlatformType"] == h.spec.platform
        assert by_host[h.spec.name]["SMPSize"] == h.spec.cpu_count

    def test_where_filters_hosts(self, conn, hosts):
        name = hosts[1].spec.name
        rows = query(conn, f"SELECT HostName FROM Processor WHERE HostName = '{name}'").to_dicts()
        assert rows == [{"HostName": name}]


class TestDriverCache:
    def test_repeat_queries_hit_cache(self, driver, conn, agent):
        before = agent.requests_served
        query(conn, "SELECT * FROM Processor")
        query(conn, "SELECT * FROM MainMemory")
        query(conn, "SELECT * FROM Host")
        assert agent.requests_served == before + 1
        assert driver.cache.hits == 2

    def test_cache_expires_after_ttl(self, driver, conn, agent, network):
        query(conn, "SELECT * FROM Processor")
        network.clock.advance(20.0)  # > ttl of 15
        before = agent.requests_served
        query(conn, "SELECT * FROM Processor")
        assert agent.requests_served == before + 1

    def test_zero_ttl_disables_cache(self, network, agent, hosts):
        driver = GangliaDriver(network, gateway_host="gateway", cache_ttl=0.0)
        conn = driver.connect(f"jdbc:ganglia://{hosts[0].spec.name}/cl")
        before = agent.requests_served
        query(conn, "SELECT * FROM Processor")
        query(conn, "SELECT * FROM Processor")
        assert agent.requests_served == before + 2

    def test_lazy_parse_caches_raw_xml(self, network, agent, hosts):
        lazy = GangliaDriver(network, gateway_host="gateway", lazy_parse=True)
        conn = lazy.connect(f"jdbc:ganglia://{hosts[0].spec.name}/cl")
        r1 = query(conn, "SELECT HostName FROM Processor").to_dicts()
        r2 = query(conn, "SELECT HostName FROM Processor").to_dicts()
        assert r1 == r2
        assert lazy.cache.hits == 1  # raw XML reused, re-parsed per query


class TestProbe:
    def test_probe_true_for_live_gmond(self, driver, agent, hosts):
        from repro.dbapi.url import JdbcUrl

        assert driver.probe(JdbcUrl.parse(f"jdbc:ganglia://{hosts[0].spec.name}/x"))

    def test_probe_false_for_wrong_service(self, network, driver, hosts):
        """A host answering a non-Ganglia protocol on 8649 is rejected."""
        from repro.dbapi.url import JdbcUrl
        from repro.simnet.network import Address

        network.add_host("imposter", site="default")
        network.listen(Address("imposter", 8649), lambda p, s: "NOT GANGLIA")
        assert not driver.probe(JdbcUrl.parse("jdbc:ganglia://imposter/x"))

    def test_probe_false_when_port_closed(self, network, driver):
        from repro.dbapi.url import JdbcUrl

        network.add_host("silent", site="default")
        assert not driver.probe(JdbcUrl.parse("jdbc:ganglia://silent/x"))
