"""Unit tests for the simulated network."""

import pytest

from repro.simnet.clock import VirtualClock
from repro.simnet.errors import (
    HostUnreachableError,
    PortClosedError,
    TimeoutError_,
)
from repro.simnet.link import LAN, WAN, LinkModel
from repro.simnet.network import Address, Network


@pytest.fixture
def net():
    clock = VirtualClock()
    network = Network(clock, seed=3)
    network.add_host("a", site="s1")
    network.add_host("b", site="s1")
    network.add_host("c", site="s2")
    return network


def echo(payload, src):
    return ("echo", payload)


class TestTopology:
    def test_add_host_idempotent_same_site(self, net):
        net.add_host("a", site="s1")  # no error

    def test_add_host_conflicting_site_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_host("a", site="other")

    def test_hosts_filter_by_site(self, net):
        assert net.hosts(site="s1") == ["a", "b"]
        assert net.hosts(site="s2") == ["c"]

    def test_site_of(self, net):
        assert net.site_of("c") == "s2"

    def test_unknown_host_raises_keyerror(self, net):
        with pytest.raises(KeyError):
            net.site_of("nope")

    def test_double_bind_rejected(self, net):
        net.listen(Address("a", 1), echo)
        with pytest.raises(ValueError):
            net.listen(Address("a", 1), echo)

    def test_close_unbinds(self, net):
        net.listen(Address("a", 1), echo)
        net.close(Address("a", 1))
        assert not net.is_listening(Address("a", 1))

    def test_listen_requires_existing_host(self, net):
        with pytest.raises(KeyError):
            net.listen(Address("ghost", 1), echo)


class TestRequest:
    def test_roundtrip(self, net):
        net.listen(Address("b", 9), echo)
        assert net.request("a", Address("b", 9), "hi") == ("echo", "hi")

    def test_request_advances_clock(self, net):
        net.listen(Address("b", 9), echo)
        before = net.clock.now()
        net.request("a", Address("b", 9), "hi")
        assert net.clock.now() > before

    def test_intersite_slower_than_intrasite(self, net):
        net.listen(Address("b", 9), echo)
        net.listen(Address("c", 9), echo)
        t0 = net.clock.now()
        net.request("a", Address("b", 9), "x")
        lan_cost = net.clock.now() - t0
        t1 = net.clock.now()
        net.request("a", Address("c", 9), "x")
        wan_cost = net.clock.now() - t1
        assert wan_cost > lan_cost * 10

    def test_unknown_destination_unreachable(self, net):
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("ghost", 9), "x", timeout=0.1)

    def test_unreachable_costs_full_timeout(self, net):
        t0 = net.clock.now()
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("ghost", 9), "x", timeout=0.5)
        assert net.clock.now() - t0 == pytest.approx(0.5)

    def test_down_host_unreachable(self, net):
        net.listen(Address("b", 9), echo)
        net.set_host_up("b", False)
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("b", 9), "x", timeout=0.1)

    def test_revived_host_answers_again(self, net):
        net.listen(Address("b", 9), echo)
        net.set_host_up("b", False)
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("b", 9), "x", timeout=0.1)
        net.set_host_up("b", True)
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")

    def test_closed_port_refused(self, net):
        with pytest.raises(PortClosedError):
            net.request("a", Address("b", 12345), "x")

    def test_lossy_host_times_out_eventually(self, net):
        net.listen(Address("b", 9), echo)
        net.set_extra_loss("b", 0.9)
        with pytest.raises(TimeoutError_):
            for _ in range(200):
                net.request("a", Address("b", 9), "x", timeout=0.05)

    def test_stats_count_requests(self, net):
        net.listen(Address("b", 9), echo)
        net.stats.reset()
        net.request("a", Address("b", 9), "x")
        net.request("a", Address("b", 9), "x")
        assert net.stats.requests == 2
        assert net.stats.bytes_sent > 0


class TestPartition:
    def test_partition_blocks_cross_group(self, net):
        net.listen(Address("c", 9), echo)
        net.partition({"a", "b"}, {"c"})
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("c", 9), "x", timeout=0.1)

    def test_partition_allows_within_group(self, net):
        net.listen(Address("b", 9), echo)
        net.partition({"a", "b"}, {"c"})
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")

    def test_heal_restores_connectivity(self, net):
        net.listen(Address("c", 9), echo)
        net.partition({"a", "b"}, {"c"})
        net.heal()
        assert net.request("a", Address("c", 9), "x") == ("echo", "x")

    def test_unlisted_host_isolated(self, net):
        net.listen(Address("b", 9), echo)
        net.partition({"a"})
        with pytest.raises(HostUnreachableError):
            net.request("a", Address("b", 9), "x", timeout=0.1)


class TestDatagram:
    def test_delivery_after_delay(self, net):
        got = []
        net.listen(Address("b", 5), echo, datagram_handler=lambda p, s: got.append(p))
        net.send("a", Address("b", 5), "trap")
        assert got == []  # in flight
        net.clock.advance(1.0)
        assert got == ["trap"]

    def test_send_to_down_host_dropped_silently(self, net):
        net.set_host_up("b", False)
        net.send("a", Address("b", 5), "trap")
        net.clock.advance(1.0)
        assert net.stats.drops == 1

    def test_send_to_unbound_port_dropped_at_delivery(self, net):
        net.send("a", Address("b", 5), "trap")
        net.clock.advance(1.0)
        assert net.stats.drops == 1

    def test_host_dying_in_flight_drops(self, net):
        got = []
        net.listen(Address("b", 5), echo, datagram_handler=lambda p, s: got.append(p))
        net.send("a", Address("b", 5), "trap")
        net.set_host_up("b", False)
        net.clock.advance(1.0)
        assert got == []


class TestLinkModel:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(base_latency=-1)
        with pytest.raises(ValueError):
            LinkModel(loss=1.0)
        with pytest.raises(ValueError):
            LinkModel(jitter=-0.1)

    def test_bandwidth_charges_large_payloads(self, net):
        import random

        link = LinkModel(base_latency=0.001, bandwidth=1000.0)
        rng = random.Random(0)
        small = link.delay(10, rng)
        large = link.delay(10_000, rng)
        assert large > small + 9.0  # ~10s extra at 1000 B/s

    def test_link_for_same_site_is_lan(self, net):
        assert net.link_for("a", "b") is LAN
        assert net.link_for("a", "c") is WAN

    def test_determinism_same_seed(self):
        def run(seed):
            clock = VirtualClock()
            n = Network(clock, seed=seed)
            n.add_host("x", site="s")
            n.add_host("y", site="s")
            n.listen(Address("y", 1), echo)
            for _ in range(10):
                n.request("x", Address("y", 1), "p")
            return clock.now()

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestDeferredRpc:
    def test_request_async_matches_sync_result(self, net):
        net.listen(Address("b", 9), echo)
        future = net.request_async("a", Address("b", 9), "hello")
        assert not future.done()
        results = net.gather([future])
        assert results == [("echo", "hello")]
        assert future.done()
        assert future.result() == ("echo", "hello")

    def test_gather_overlaps_round_trips(self, net):
        net.listen(Address("b", 9), echo)
        t0 = net.clock.now()
        serial = 0.0
        for i in range(4):
            start = net.clock.now()
            net.request("a", Address("b", 9), i)
            serial += net.clock.now() - start
        t0 = net.clock.now()
        futures = [net.request_async("a", Address("b", 9), i) for i in range(4)]
        net.gather(futures)
        overlapped = net.clock.now() - t0
        # Four overlapped round-trips cost about one round-trip, far less
        # than four serial ones.
        assert overlapped < serial / 2

    def test_gather_preserves_order(self, net):
        net.listen(Address("b", 9), echo)
        futures = [net.request_async("a", Address("b", 9), i) for i in range(5)]
        assert net.gather(futures) == [("echo", i) for i in range(5)]

    def test_async_failure_surfaces_on_result(self, net):
        future = net.request_async("a", Address("b", 777), "x")  # port closed
        with pytest.raises(PortClosedError):
            net.gather([future])
        assert isinstance(future.exception(), PortClosedError)

    def test_gather_return_exceptions(self, net):
        net.listen(Address("b", 9), echo)
        good = net.request_async("a", Address("b", 9), "ok")
        bad = net.request_async("a", Address("b", 777), "x")
        results = net.gather([good, bad], return_exceptions=True)
        assert results[0] == ("echo", "ok")
        assert isinstance(results[1], PortClosedError)

    def test_async_to_dead_host_times_out(self, net):
        net.listen(Address("b", 9), echo)
        net.set_host_up("b", False)
        future = net.request_async("a", Address("b", 9), "x", timeout=0.5)
        with pytest.raises((TimeoutError_, HostUnreachableError)):
            net.gather([future])

    def test_result_before_completion_raises(self, net):
        net.listen(Address("b", 9), echo)
        future = net.request_async("a", Address("b", 9), "x")
        with pytest.raises(RuntimeError):
            future.result()
        net.gather([future])

    def test_gather_rejected_inside_concurrent_branch(self, net):
        net.listen(Address("b", 9), echo)
        with net.clock.concurrent() as scope:
            with scope.branch():
                future = net.request_async("a", Address("b", 9), "x")
                with pytest.raises(RuntimeError):
                    net.gather([future])

    def test_done_callback_runs_at_completion(self, net):
        net.listen(Address("b", 9), echo)
        seen = []
        future = net.request_async("a", Address("b", 9), "x")
        future.add_done_callback(lambda f: seen.append(net.clock.now()))
        net.gather([future])
        assert seen == [future.completed_at]


class TestTimeoutBudget:
    """``request`` enforces ``timeout`` against accumulated virtual time."""

    def test_service_time_exceeding_budget_times_out(self, net):
        net.listen(Address("b", 9), echo)
        net.set_service_time("b", 10.0)
        with pytest.raises(TimeoutError_):
            net.request("a", Address("b", 9), "x", timeout=0.5)

    def test_timeout_lands_exactly_on_deadline_instant(self, net):
        net.listen(Address("b", 9), echo)
        net.set_service_time("b", 10.0)
        t0 = net.clock.now()
        with pytest.raises(TimeoutError_):
            net.request("a", Address("b", 9), "x", timeout=0.5)
        # The clock advances to exactly t0 + timeout — a slow chain can
        # never exceed its deadline and still return.
        assert net.clock.now() - t0 == pytest.approx(0.5)

    def test_service_time_within_budget_is_charged(self, net):
        net.listen(Address("b", 9), echo)
        net.set_service_time("b", 0.2)
        t0 = net.clock.now()
        assert net.request("a", Address("b", 9), "x") == ("echo", "x")
        assert net.clock.now() - t0 >= 0.2

    def test_slowdown_scales_round_trip(self):
        def run(factor):
            clock = VirtualClock()
            n = Network(clock, seed=3)
            n.add_host("x", site="s")
            n.add_host("y", site="s")
            n.listen(Address("y", 1), echo)
            n.set_slowdown("y", factor)
            t0 = clock.now()
            n.request("x", Address("y", 1), "p")
            return clock.now() - t0

        # Same seed => same link draws, so the ratio is exact.
        assert run(10.0) == pytest.approx(run(1.0) * 10.0)

    def test_slow_host_misses_deadline(self, net):
        net.listen(Address("b", 9), echo)
        net.set_slowdown("b", 100_000.0)
        t0 = net.clock.now()
        with pytest.raises(TimeoutError_):
            net.request("a", Address("b", 9), "x", timeout=0.5)
        assert net.clock.now() - t0 == pytest.approx(0.5)

    def test_handler_compute_not_charged_against_budget(self, net):
        # End-to-end budgets across multi-hop chains belong to the core
        # layer's Deadline; the transport timeout covers wire + service
        # time of *this* hop only, so a nested slow RPC inside the
        # handler must not expire the outer request.
        net.listen(Address("c", 9), echo)

        def relay(payload, src):
            return net.request("b", Address("c", 9), payload)  # slow WAN hop

        net.listen(Address("b", 9), relay)
        t0 = net.clock.now()
        result = net.request("a", Address("b", 9), "x", timeout=0.01)
        assert result == ("echo", "x")
        # The nested WAN round-trip dwarfed the outer 10 ms budget.
        assert net.clock.now() - t0 > 0.01

    def test_fault_knob_validation(self, net):
        with pytest.raises(ValueError):
            net.set_service_time("b", -1.0)
        with pytest.raises(ValueError):
            net.set_slowdown("b", 0.0)
        with pytest.raises(ValueError):
            net.set_extra_loss("b", 1.0)

    def test_service_time_accessors(self, net):
        net.set_service_time("b", 0.25)
        net.set_slowdown("b", 2.0)
        assert net.service_time("b") == 0.25
        assert net.slowdown("b") == 2.0


class TestAsyncMidFlightDeath:
    """A host dying mid-flight surfaces at send-time + timeout."""

    def test_death_mid_flight_surfaces_at_send_plus_timeout(self, net):
        net.listen(Address("b", 9), echo)
        t0 = net.clock.now()
        future = net.request_async("a", Address("b", 9), "x", timeout=0.5)
        net.set_host_up("b", False)  # dies while the request is in flight
        with pytest.raises(HostUnreachableError) as exc:
            net.gather([future])
        assert "went down" in str(exc.value)
        # Not arrival-time + timeout: the deadline was fixed at send time.
        assert future.completed_at == pytest.approx(t0 + 0.5)

    def test_partition_mid_flight_surfaces_at_send_plus_timeout(self, net):
        net.listen(Address("c", 9), echo)
        t0 = net.clock.now()
        future = net.request_async("a", Address("c", 9), "x", timeout=0.5)
        net.partition({"a", "b"}, {"c"})
        with pytest.raises(HostUnreachableError):
            net.gather([future])
        assert future.completed_at == pytest.approx(t0 + 0.5)

    def test_already_dead_host_fails_at_deadline(self, net):
        net.listen(Address("b", 9), echo)
        net.set_host_up("b", False)
        t0 = net.clock.now()
        future = net.request_async("a", Address("b", 9), "x", timeout=0.25)
        with pytest.raises(HostUnreachableError) as exc:
            net.gather([future])
        assert "host down" in str(exc.value)
        assert future.completed_at == pytest.approx(t0 + 0.25)


class TestGatherAllFail:
    """``gather(return_exceptions=True)`` when every future fails."""

    def _three_doomed(self, net):
        net.listen(Address("b", 9), echo)
        net.add_host("d", site="s1")
        net.listen(Address("d", 9), echo)
        net.set_extra_loss("d", 0.9999999)  # every packet lost
        return [
            net.request_async("a", Address("ghost", 9), "x", timeout=0.2),
            net.request_async("a", Address("b", 777), "x", timeout=0.2),
            net.request_async("a", Address("d", 9), "x", timeout=0.2),
        ]

    def test_ordering_and_exception_types_preserved(self, net):
        futures = self._three_doomed(net)
        results = net.gather(futures, return_exceptions=True)
        assert isinstance(results[0], HostUnreachableError)
        assert isinstance(results[1], PortClosedError)
        assert isinstance(results[2], TimeoutError_)
        assert "lost" in str(results[2])
        assert all(f.done() for f in futures)
        assert net.pending_futures() == 0

    def test_without_flag_first_failure_raises(self, net):
        futures = self._three_doomed(net)
        with pytest.raises(HostUnreachableError):
            net.gather(futures)


class TestPendingFutures:
    def test_counts_outstanding_and_drains_to_zero(self, net):
        net.listen(Address("b", 9), echo)
        assert net.pending_futures() == 0
        futures = [net.request_async("a", Address("b", 9), i) for i in range(3)]
        assert net.pending_futures() == 3
        net.gather(futures)
        assert net.pending_futures() == 0

    def test_failed_futures_drain_via_deadline_guard(self, net):
        net.set_host_up("b", False)
        future = net.request_async("a", Address("b", 9), "x", timeout=0.2)
        assert net.pending_futures() == 1
        net.clock.advance(0.25)
        assert future.done()
        assert net.pending_futures() == 0


class TestPayloadSize:
    """_repr_len must equal len(repr(payload)) exactly.

    The structural walk exists so the bandwidth-delay model charges
    batched row payloads honestly without building the (large) repr
    string; if its arithmetic ever drifts from repr, charged sizes
    silently change and golden traces shift.
    """

    def random_payload(self, rng, depth=0):
        roll = rng.randrange(10 if depth < 4 else 6)
        if roll < 2:
            return rng.randrange(-(10 ** 6), 10 ** 6)
        if roll < 3:
            return rng.choice([None, True, False])
        if roll < 4:
            return rng.random() * rng.choice([1, 1e6, -1])
        if roll < 5:
            return "".join(
                rng.choice("abc XY'\"\\0\u00e9")
                for _ in range(rng.randrange(0, 8))
            )
        if roll < 6:
            return rng.randbytes(rng.randrange(0, 5))
        n = rng.randrange(0, 4)
        children = [self.random_payload(rng, depth + 1) for _ in range(n)]
        if roll < 8:
            return children
        if roll < 9:
            return tuple(children)
        return {f"k{i}": c for i, c in enumerate(children)}

    def test_structural_size_matches_repr_exactly(self):
        import random

        from repro.simnet.network import _repr_len

        rng = random.Random(4242)
        for _ in range(500):
            payload = self.random_payload(rng)
            assert _repr_len(payload) == len(repr(payload)), repr(payload)

    def test_hand_picked_shapes(self):
        from repro.simnet.network import _repr_len

        for payload in (
            [],
            (),
            {},
            [[]],
            (1,),
            (1, 2),
            {"a": [1, (2,)], "b": {"c": None}},
            [["h1", 0.5, None], ["h2", 1024, "x"]],
        ):
            assert _repr_len(payload) == len(repr(payload))

    def test_deep_nesting_falls_back_to_repr(self):
        from repro.simnet.network import _payload_size, _repr_len

        deep = [1]
        for _ in range(30):
            deep = [deep]
        assert _repr_len(deep) == len(repr(deep))
        assert _payload_size(deep) == len(repr(deep))

    def test_batched_rows_cheaper_than_dicts(self):
        from repro.simnet.network import _payload_size

        keys = ["url", "ok", "rows", "from_cache", "error"]
        dicts = [
            {"url": f"jdbc:snmp://h{i}/x", "ok": True, "rows": i,
             "from_cache": False, "error": None}
            for i in range(8)
        ]
        batched = {
            "status_keys": keys,
            "status_rows": [[d[k] for k in keys] for d in dicts],
        }
        assert _payload_size(batched) < _payload_size({"statuses": dicts})
