"""Seeded chaos soak: replay identity and structural invariants.

Runs the standard fault-plane scenario (``repro.chaos.run_chaos``) and
asserts the properties the chaos plane promises:

* **replay identity** — the same seed and knobs reproduce byte-identical
  rows, statuses and latencies (the SHA-256 signature matches), with
  fan-out on *or* off;
* **no stuck futures** — every async RPC's deadline guard fired or was
  cancelled, so ``Network.pending_futures()`` drains to zero;
* **breaker consistency** — every breaker entry satisfies its structural
  invariants once the dust settles (state valid, counters coherent, OPEN
  implies a re-probe instant).

Kept small (few rounds) so the soak stays cheap in CI; the ``chaos-smoke``
job runs the bigger CLI scenario on two fixed seeds.
"""

import pytest

from repro.chaos import run_chaos

ROUNDS = 8
WARMUP = 4
PERIOD = 10.0


def soak(seed, **overrides):
    kwargs = {
        "seed": seed,
        "rounds": ROUNDS,
        "warmup_rounds": WARMUP,
        "period": PERIOD,
    }
    kwargs.update(overrides)
    return run_chaos(**kwargs)


def assert_invariants(report):
    assert report.pending_futures == 0, "stuck NetFutures after drain"
    assert report.breaker_violations == [], report.breaker_violations
    assert len(report.latencies) == report.rounds
    assert all(lat >= 0 for lat in report.latencies)
    assert report.signature


@pytest.mark.parametrize("fanout", [True, False])
def test_replay_identity_same_seed(fanout):
    first = soak(seed=5, fanout=fanout)
    second = soak(seed=5, fanout=fanout)
    assert first.signature == second.signature
    assert first.latencies == second.latencies
    assert first.faults == second.faults
    assert first.requests == second.requests
    assert_invariants(first)
    assert_invariants(second)


def test_different_seeds_produce_different_runs():
    assert soak(seed=5).signature != soak(seed=6).signature


@pytest.mark.parametrize("seed", [1, 2])
def test_soak_invariants_hold(seed):
    report = soak(seed=seed, rounds=10, warmup_rounds=5)
    assert_invariants(report)
    # The scenario genuinely exercised the fault plane.
    faults = report.faults
    assert faults["spikes_injected"] > 0
    assert faults["flaps"] > 0
    assert faults["partitions"] == faults["heals"] == 1


def test_hedging_machinery_engages():
    report = soak(seed=3, rounds=12, warmup_rounds=8, hedging=True)
    assert report.dispatch["hedges_fired"] > 0
    # Every fired hedge has exactly one abandoned loser.
    assert report.dispatch["hedges_cancelled"] == report.dispatch["hedges_fired"]
    assert_invariants(report)


def test_hedging_off_fires_no_hedges():
    report = soak(seed=3, hedging=False)
    assert report.dispatch["hedges_fired"] == 0
    assert_invariants(report)


def test_report_rendering_and_dict():
    report = soak(seed=4)
    d = report.as_dict()
    assert d["seed"] == 4
    assert d["p99"] >= d["p50"] >= 0
    text = report.format()
    assert "replay signature" in text
    assert "invariants" in text
    assert f"seed={report.seed}" in text
