"""Seeded chaos soak: replay identity and structural invariants.

Runs the standard fault-plane scenario (``repro.chaos.run_chaos``) and
asserts the properties the chaos plane promises:

* **replay identity** — the same seed and knobs reproduce byte-identical
  rows, statuses and latencies (the SHA-256 signature matches), with
  fan-out on *or* off;
* **no stuck futures** — every async RPC's deadline guard fired or was
  cancelled, so ``Network.pending_futures()`` drains to zero;
* **breaker consistency** — every breaker entry satisfies its structural
  invariants once the dust settles (state valid, counters coherent, OPEN
  implies a re-probe instant).

Kept small (few rounds) so the soak stays cheap in CI; the ``chaos-smoke``
job runs the bigger CLI scenario on two fixed seeds.
"""

import pytest

from repro.chaos import run_chaos, run_overload, run_stream

ROUNDS = 8
WARMUP = 4
PERIOD = 10.0


def soak(seed, **overrides):
    kwargs = {
        "seed": seed,
        "rounds": ROUNDS,
        "warmup_rounds": WARMUP,
        "period": PERIOD,
    }
    kwargs.update(overrides)
    return run_chaos(**kwargs)


def assert_invariants(report):
    assert report.pending_futures == 0, "stuck NetFutures after drain"
    assert report.breaker_violations == [], report.breaker_violations
    assert len(report.latencies) == report.rounds
    assert all(lat >= 0 for lat in report.latencies)
    assert report.signature


@pytest.mark.parametrize("fanout", [True, False])
def test_replay_identity_same_seed(fanout):
    first = soak(seed=5, fanout=fanout)
    second = soak(seed=5, fanout=fanout)
    assert first.signature == second.signature
    assert first.latencies == second.latencies
    assert first.faults == second.faults
    assert first.requests == second.requests
    assert_invariants(first)
    assert_invariants(second)


def test_different_seeds_produce_different_runs():
    assert soak(seed=5).signature != soak(seed=6).signature


@pytest.mark.parametrize("seed", [1, 2])
def test_soak_invariants_hold(seed):
    report = soak(seed=seed, rounds=10, warmup_rounds=5)
    assert_invariants(report)
    # The scenario genuinely exercised the fault plane.
    faults = report.faults
    assert faults["spikes_injected"] > 0
    assert faults["flaps"] > 0
    assert faults["partitions"] == faults["heals"] == 1


def test_hedging_machinery_engages():
    report = soak(seed=3, rounds=12, warmup_rounds=8, hedging=True)
    assert report.dispatch["hedges_fired"] > 0
    # Every fired hedge has exactly one abandoned loser.
    assert report.dispatch["hedges_cancelled"] == report.dispatch["hedges_fired"]
    assert_invariants(report)


def test_hedging_off_fires_no_hedges():
    report = soak(seed=3, hedging=False)
    assert report.dispatch["hedges_fired"] == 0
    assert_invariants(report)


def test_report_rendering_and_dict():
    report = soak(seed=4)
    d = report.as_dict()
    assert d["seed"] == 4
    assert d["p99"] >= d["p50"] >= 0
    text = report.format()
    assert "replay signature" in text
    assert "invariants" in text
    assert f"seed={report.seed}" in text


# ---------------------------------------------------------------------------
# Overload scenario (PR 9): load spike x slow hosts, shedding on vs off.
# The two arms are expensive, so they run once per module and every
# assertion shares them.
# ---------------------------------------------------------------------------

SPIKE_START = 3
SPIKE_ROUNDS = 6


@pytest.fixture(scope="module")
def overload_on():
    return run_overload(seed=0, shedding=True)


@pytest.fixture(scope="module")
def overload_off():
    return run_overload(seed=0, shedding=False)


def spike_slice(report):
    return report.goodput[SPIKE_START:SPIKE_START + SPIKE_ROUNDS]


def assert_overload_invariants(report):
    assert report.pending_futures == 0, "stuck NetFutures after drain"
    assert report.breaker_violations == [], report.breaker_violations
    assert report.trace_violations == [], report.trace_violations
    assert report.traces_checked > 0
    assert report.signature
    assert len(report.goodput) == len(report.offered) == report.rounds


def test_overload_replay_identity(overload_on):
    again = run_overload(seed=0, shedding=True)
    assert again.signature == overload_on.signature
    assert again.goodput == overload_on.goodput
    assert again.shed_counts == overload_on.shed_counts
    assert again.pressure_transitions == overload_on.pressure_transitions


def test_overload_invariants_both_arms(overload_on, overload_off):
    assert_overload_invariants(overload_on)
    assert_overload_invariants(overload_off)


def test_critical_never_shed(overload_on):
    assert overload_on.critical_offered > 0
    assert overload_on.critical_shed == 0


def test_shedding_preserves_spike_goodput(overload_on, overload_off):
    """The tentpole claim: at 4x saturating load, shedding holds >= 80%
    goodput per spike round while the unprotected gateway collapses."""
    spike = overload_on.spike_load
    on_spike = spike_slice(overload_on)
    off_spike = spike_slice(overload_off)
    assert min(on_spike) >= 0.8 * spike, on_spike
    assert sum(off_spike) / len(off_spike) <= 0.7 * spike, off_spike
    assert overload_on.good_total > overload_off.good_total


def test_unprotected_gateway_pollutes_breakers(overload_on, overload_off):
    """Without admission control, queueing blows deadlines and the
    breakers blame healthy hosts; with it, they stay quiet."""
    assert overload_off.breakers["trips"] > 0
    assert overload_on.breakers["trips"] == 0


def test_brownout_serves_stale_under_pressure(overload_on):
    # Warmed caches let brownout absorb the spike as degraded answers.
    assert overload_on.brownout_served > 0
    assert overload_on.pressure_transitions > 0
    assert overload_on.final_state == "normal"  # recovered after the spike


def test_shed_heavy_without_stale_coverage():
    """warmup_rounds=0 removes brownout's stale coverage: pressured
    sheddable queries are refused instead, CRITICAL still never."""
    report = run_overload(seed=0, shedding=True, warmup_rounds=0)
    assert report.shed_counts["total"] > 0
    assert report.shed_counts["batch"] > 0
    assert report.critical_shed == 0
    assert_overload_invariants(report)


def test_sheds_are_never_breaker_failures_e2e():
    """Pure offered-load overload (no fault): sheds happen, and not one
    of them registers as a breaker failure anywhere."""
    report = run_overload(
        seed=0, shedding=True, slow_host=False, warmup_rounds=0
    )
    assert report.shed_counts["total"] > 0
    assert report.breakers["trips"] == 0
    assert report.breakers["open"] == 0
    assert_overload_invariants(report)


def test_race_detector_clean_and_non_perturbing(overload_on):
    """The overload machinery under the PR 7 race discipline: zero
    findings, and watching does not change the run."""
    watched = run_overload(seed=0, shedding=True, race_detect=True)
    assert watched.race_findings == [], watched.race_findings
    assert watched.race_accesses > 0
    assert watched.signature == overload_on.signature


# ----------------------------------------------------------------------
# Streaming soak (continuous SQL subscriptions under the fault plane)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream_soak():
    return run_stream(seed=3, rounds=10)


def assert_stream_invariants(report):
    assert report.pending_futures == 0, "stuck NetFutures after drain"
    assert report.trace_violations == [], report.trace_violations
    assert report.stuck_buffers == [], report.stuck_buffers
    assert report.delivered_batches > 0
    assert report.delivered_rows > 0
    assert report.signature


def test_stream_replay_identity_same_seed(stream_soak):
    """Same seed, same knobs: every delivered batch is byte-identical."""
    again = run_stream(seed=3, rounds=10)
    assert stream_soak.signature == again.signature
    assert stream_soak.delivered_batches == again.delivered_batches
    assert stream_soak.reregisters == again.reregisters
    assert_stream_invariants(stream_soak)
    assert_stream_invariants(again)


def test_stream_different_seeds_produce_different_runs():
    assert (
        run_stream(seed=7, rounds=6).signature
        != run_stream(seed=8, rounds=6).signature
    )


def test_stream_replay_batches_precede_live(stream_soak):
    """latest/history registrations replayed state on attach."""
    assert stream_soak.replay_batches > 0
    assert stream_soak.replayed > 0


def test_stream_lease_recovery_after_partition(stream_soak):
    """The consumer partition outlives the lease: subscriptions expire
    at the hub and the consumer must win them back by re-registering."""
    assert stream_soak.expired > 0
    assert stream_soak.reregisters > 0
    assert stream_soak.delivered_batches > stream_soak.replay_batches


def test_stream_no_partition_keeps_every_lease():
    report = run_stream(seed=3, rounds=8, partition=False)
    assert report.reregisters == 0
    assert report.renewals > 0
    assert_stream_invariants(report)


def test_stream_derived_windows_roll(stream_soak):
    """The republisher aggregated upstream pushes into derived batches."""
    assert stream_soak.derived_windows > 0
    assert stream_soak.derived_samples > 0


def test_stream_race_detector_clean_and_non_perturbing(stream_soak):
    """Hub state under the PR 7 lane-race discipline: zero findings,
    and watching does not change a single delivered byte."""
    watched = run_stream(seed=3, rounds=10, race_detect=True)
    assert watched.race_findings == [], watched.race_findings
    assert watched.race_accesses > 0
    assert watched.signature == stream_soak.signature


def test_stream_report_rendering_and_dict(stream_soak):
    text = stream_soak.format()
    assert "replay signature" in text
    assert "subscription(s)" in text
    payload = stream_soak.as_dict()
    for key in (
        "seed",
        "signature",
        "delivered_batches",
        "reregisters",
        "stuck_buffers",
        "pending_futures",
    ):
        assert key in payload
