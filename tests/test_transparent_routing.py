"""Tests for transparent Global-layer routing (paper §1.1).

"Clients are free to connect to any Gateway; requests for remote
resource data are routed through to the Global layer for processing by
the gateway that owns the required data."
"""

import pytest

from repro.core.request_manager import QueryMode
from repro.core.security import AccessRule, Principal
from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def fabric():
    clock = VirtualClock()
    network = Network(clock, seed=111)
    a = build_site(network, name="ra", n_hosts=2, agents=("snmp",), seed=1)
    b = build_site(network, name="rb", n_hosts=2, agents=("snmp", "ganglia"), seed=2)
    clock.advance(20.0)
    directory = GMADirectory(network)
    gla = GlobalLayer(a.gateway, directory)
    glb = GlobalLayer(b.gateway, directory)
    return network, a, b, gla, glb


class TestRouting:
    def test_remote_url_routed_via_global_layer(self, fabric):
        network, a, b, gla, _ = fabric
        url = b.url_for("snmp", host=b.host_names()[0])
        result = a.gateway.query(url, "SELECT HostName, SiteName FROM Host")
        assert result.dicts() == [
            {"HostName": b.host_names()[0], "SiteName": "rb"}
        ]
        assert gla.stats["remote_queries"] == 1

    def test_mixed_local_and_remote_consolidated(self, fabric):
        network, a, b, gla, _ = fabric
        urls = [a.url_for("snmp"), b.url_for("snmp")]
        result = a.gateway.query(urls, "SELECT HostName, SiteName FROM Host")
        sites = {r["SiteName"] for r in result.dicts()}
        assert sites == {"ra", "rb"}
        assert result.ok_sources == 2

    def test_remote_statuses_carry_urls(self, fabric):
        network, a, b, gla, _ = fabric
        url = b.url_for("snmp")
        result = a.gateway.query(url, "SELECT HostName FROM Host")
        assert result.statuses[0].url == url
        assert result.statuses[0].ok

    def test_without_global_layer_direct_wan_polling(self):
        """No global layer: remote agents are polled directly (slower,
        bypassing the owning gateway) — the pre-GMA behaviour."""
        clock = VirtualClock()
        network = Network(clock, seed=112)
        a = build_site(network, name="da", n_hosts=1, agents=("snmp",), seed=1)
        b = build_site(network, name="db", n_hosts=1, agents=("snmp",), seed=2)
        clock.advance(10.0)
        result = a.gateway.query(b.url_for("snmp"), "SELECT HostName FROM Host")
        assert result.ok_sources == 1  # direct WAN poll still works

    def test_remote_gateway_down_reported_per_url(self, fabric):
        network, a, b, gla, _ = fabric
        network.set_host_up(b.gateway.host, False)
        urls = [a.url_for("snmp"), b.url_for("snmp")]
        result = a.gateway.query(urls, "SELECT HostName FROM Host")
        assert result.ok_sources == 1
        failed = [s for s in result.statuses if not s.ok]
        assert len(failed) == 1 and "rb" in failed[0].url or failed[0].url.startswith("jdbc")

    def test_unknown_host_fails_locally(self, fabric):
        network, a, b, gla, _ = fabric
        result = a.gateway.query(
            "jdbc:snmp://no-such-host/x", "SELECT HostName FROM Host"
        )
        assert result.failed_sources == 1

    def test_remote_routing_uses_owning_gateways_cache(self, fabric):
        network, a, b, gla, _ = fabric
        url = b.url_for("snmp")
        # Prime the remote gateway's cache via a local client at b.
        b.gateway.query(url, "SELECT HostName FROM Host")
        agent = b.agents["snmp"][0]
        polls = agent.requests_served
        result = a.gateway.query(
            url, "SELECT HostName FROM Host", mode=QueryMode.CACHED_OK
        )
        assert result.ok_sources == 1
        assert agent.requests_served == polls  # served from b's cache

    def test_remote_fgsl_applied_by_owner(self, fabric):
        network, a, b, gla, _ = fabric
        b.gateway.fgsl.enabled = True
        b.gateway.fgsl.add_rule(AccessRule(allow=False, who="role:remote"))
        result = a.gateway.query(b.url_for("snmp"), "SELECT HostName FROM Host")
        assert result.failed_sources == 1
        assert "may not read" in result.statuses[0].error

    def test_local_queries_unaffected_by_fabric(self, fabric):
        network, a, b, gla, _ = fabric
        before = gla.stats["remote_queries"]
        result = a.gateway.query(a.url_for("snmp"), "SELECT HostName FROM Host")
        assert result.ok_sources == 1
        assert gla.stats["remote_queries"] == before
