"""Unit tests for the GLUE schema definitions."""

import pytest

from repro.glue.schema import (
    GlueField,
    GlueGroup,
    GlueSchema,
    STANDARD_SCHEMA,
    standard_schema,
)


class TestFieldAndGroup:
    def test_bad_field_type_rejected(self):
        with pytest.raises(ValueError):
            GlueField(name="x", type="BLOB")

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            GlueGroup("G", (GlueField("a"), GlueField("a")))

    def test_field_lookup(self):
        g = GlueGroup("G", (GlueField("a", "REAL", "MB"),))
        assert g.field("a").unit == "MB"
        with pytest.raises(KeyError):
            g.field("b")

    def test_has_field(self):
        g = GlueGroup("G", (GlueField("a"),))
        assert g.has_field("a") and not g.has_field("b")

    def test_column_types_align_with_names(self):
        g = STANDARD_SCHEMA.group("Processor")
        assert len(g.column_types()) == len(g.field_names())


class TestSchema:
    def test_duplicate_group_rejected(self):
        s = GlueSchema("v", [GlueGroup("G", (GlueField("a"),))])
        with pytest.raises(ValueError):
            s.add_group(GlueGroup("G", (GlueField("b"),)))

    def test_case_insensitive_group_lookup(self):
        assert STANDARD_SCHEMA.group("processor").name == "Processor"

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError):
            STANDARD_SCHEMA.group("Nope")

    def test_has_group(self):
        assert STANDARD_SCHEMA.has_group("MainMemory")
        assert not STANDARD_SCHEMA.has_group("Nope")

    def test_iteration_and_len(self):
        assert len(list(STANDARD_SCHEMA)) == len(STANDARD_SCHEMA)


class TestStandardSchema:
    EXPECTED_GROUPS = {
        "Host",
        "Processor",
        "MainMemory",
        "OperatingSystem",
        "Architecture",
        "FileSystem",
        "NetworkAdapter",
        "Process",
        "NetworkForecast",
        "LogEvent",
        "Job",
        "GatewayMetrics",
    }

    def test_all_expected_groups_present(self):
        assert set(STANDARD_SCHEMA.group_names()) == self.EXPECTED_GROUPS

    def test_every_group_has_host_key(self):
        """GLUE rows always carry host/site/time identity."""
        for group in STANDARD_SCHEMA:
            for key in ("HostName", "SiteName", "Timestamp"):
                assert group.has_field(key), f"{group.name} lacks {key}"

    def test_processor_fields(self):
        g = STANDARD_SCHEMA.group("Processor")
        for f in ("CPUCount", "LoadAverage1Min", "CPUUtilization", "ClockSpeedMHz"):
            assert g.has_field(f)

    def test_memory_units_are_mb(self):
        g = STANDARD_SCHEMA.group("MainMemory")
        assert g.field("RAMSizeMB").unit == "MB"

    def test_standard_schema_factory_returns_fresh_copy(self):
        a, b = standard_schema(), standard_schema()
        assert a is not b
        assert a.group_names() == b.group_names()

    def test_types_are_consistent(self):
        g = STANDARD_SCHEMA.group("Job")
        assert g.field("NodeCount").type == "INTEGER"
        assert g.field("CPUSeconds").type == "REAL"
        assert g.field("JobId").type == "TEXT"
