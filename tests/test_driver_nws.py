"""Unit tests for the JDBC-NWS driver."""

import pytest

from repro.agents.nws import NwsAgent
from repro.drivers.nws_driver import NwsDriver, parse_forecast_line


@pytest.fixture
def agent(network, hosts):
    a = NwsAgent(hosts[0], network, peers=[hosts[1].spec.name])
    network.clock.advance(120.0)
    return a


@pytest.fixture
def conn(network, agent):
    return NwsDriver(network, gateway_host="gateway").connect("jdbc:nws://n0/forecast")


def query(conn, sql):
    return conn.create_statement().execute_query(sql)


class TestParseForecastLine:
    def test_fields_extracted(self):
        line = "RESOURCE=availableCpu TIME=1.5 MEASURED=0.5 FORECAST=0.6 MAE=0.1 METHOD=last_value"
        assert parse_forecast_line(line)["METHOD"] == "last_value"

    def test_tolerates_missing_fields(self):
        assert parse_forecast_line("RESOURCE=x") == {"RESOURCE": "x"}


class TestForecastGroup:
    def test_one_row_per_resource(self, conn):
        rows = query(conn, "SELECT * FROM NetworkForecast").to_dicts()
        resources = {r["Resource"] for r in rows}
        assert "availableCpu" in resources and "currentCpu" in resources
        assert "latencyMs" in resources and "bandwidthMbps" in resources

    def test_peer_host_populated_for_network_resources(self, conn, hosts):
        rows = query(conn, "SELECT Resource, PeerHost FROM NetworkForecast").to_dicts()
        peers = {r["PeerHost"] for r in rows if r["Resource"] == "latencyMs"}
        assert peers == {hosts[1].spec.name}

    def test_cpu_resources_have_no_peer(self, conn):
        rows = query(conn, "SELECT Resource, PeerHost FROM NetworkForecast").to_dicts()
        assert all(
            r["PeerHost"] is None for r in rows if r["Resource"] == "availableCpu"
        )

    def test_forecast_values_numeric(self, conn):
        rows = query(
            conn, "SELECT MeasuredValue, ForecastValue, ForecastError FROM NetworkForecast"
        ).to_dicts()
        for r in rows:
            assert isinstance(r["MeasuredValue"], float)
            assert isinstance(r["ForecastValue"], float)

    def test_method_names_from_bank(self, conn):
        rows = query(conn, "SELECT Method FROM NetworkForecast").to_dicts()
        known_prefixes = ("last_value", "running_mean", "sliding", "exp_smooth")
        assert all(r["Method"].startswith(known_prefixes) for r in rows)

    def test_where_on_resource(self, conn):
        rows = query(
            conn,
            "SELECT Resource FROM NetworkForecast WHERE Resource = 'availableCpu'",
        ).to_dicts()
        assert rows == [{"Resource": "availableCpu"}]

    def test_resource_list_cached_per_connection(self, conn, agent):
        before = agent.requests_served
        query(conn, "SELECT Resource FROM NetworkForecast")
        first_cost = agent.requests_served - before
        before = agent.requests_served
        query(conn, "SELECT Resource FROM NetworkForecast")
        second_cost = agent.requests_served - before
        # Second query skips the RESOURCES round-trip.
        assert second_cost == first_cost - 1

    def test_host_group(self, conn):
        row = query(conn, "SELECT UniqueId FROM Host").to_dicts()[0]
        assert row["UniqueId"] == "n0#nws"
