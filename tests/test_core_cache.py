"""Unit tests for the gateway CacheController."""

import pytest

from repro.core.cache import CacheController, normalise_sql
from repro.simnet.clock import VirtualClock


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def cache(clock):
    return CacheController(clock, ttl=30.0)


class TestNormalise:
    def test_whitespace_collapsed(self):
        assert normalise_sql("SELECT  *\n FROM   x") == "select * from x"

    def test_trailing_semicolon_dropped(self):
        assert normalise_sql("SELECT * FROM x;") == normalise_sql("SELECT * FROM x")

    def test_case_folded(self):
        assert normalise_sql("select * from X") == normalise_sql("SELECT * FROM X")

    def test_string_literal_case_preserved(self):
        # Regression: 'A' and 'a' select different rows, so the keys must
        # not collide (the old normaliser lowercased literals too and one
        # cached result could serve the other query).
        upper = normalise_sql("SELECT * FROM t WHERE Name = 'A'")
        lower = normalise_sql("SELECT * FROM t WHERE Name = 'a'")
        assert upper != lower
        assert upper == "select * from t where name = 'A'"

    def test_literal_whitespace_preserved(self):
        assert (
            normalise_sql("SELECT * FROM t  WHERE s = 'two  words'")
            == "select * from t where s = 'two  words'"
        )

    def test_doubled_quote_escape_stays_inside_literal(self):
        # The FROM after the escaped quote is still inside the literal,
        # so it must keep its case.
        assert (
            normalise_sql("SELECT * FROM t WHERE s = 'it''s FROM'")
            == "select * from t where s = 'it''s FROM'"
        )

    def test_unterminated_literal_kept_verbatim(self):
        assert (
            normalise_sql("SELECT * FROM t WHERE s = 'Open  End")
            == "select * from t where s = 'Open  End"
        )

    def test_idempotent_with_literals(self):
        for sql in (
            "SELECT * FROM t WHERE Name = 'A'  AND  x = 1 ;",
            "SELECT 'A' 'b' FROM t",
            "SELECT * FROM t WHERE a='X'||'y'",
        ):
            once = normalise_sql(sql)
            assert normalise_sql(once) == once


class TestLookupStore:
    def test_miss_then_hit(self, cache):
        assert cache.lookup("u", "SELECT * FROM t") is None
        cache.store("u", "SELECT * FROM t", ["a"], [[1]])
        entry = cache.lookup("u", "select  * from t")
        assert entry is not None and entry.rows == [[1]]
        assert cache.hits == 1 and cache.misses == 1

    def test_expiry(self, cache, clock):
        cache.store("u", "q from t", ["a"], [[1]])
        clock.advance(31.0)
        assert cache.lookup("u", "q from t") is None

    def test_max_age_tightens_ttl(self, cache, clock):
        cache.store("u", "select * from t", ["a"], [[1]])
        clock.advance(10.0)
        assert cache.lookup("u", "select * from t", max_age=5.0) is None
        assert cache.lookup("u", "select * from t", max_age=15.0) is not None

    def test_different_sources_isolated(self, cache):
        cache.store("u1", "q", ["a"], [[1]])
        assert cache.lookup("u2", "q") is None

    def test_store_copies_rows(self, cache):
        rows = [[1]]
        cache.store("u", "q", ["a"], rows)
        rows[0][0] = 99
        assert cache.lookup("u", "q").rows == [[1]]

    def test_age_reported(self, cache, clock):
        entry = cache.store("u", "q", ["a"], [])
        clock.advance(7.0)
        assert entry.age(clock.now()) == pytest.approx(7.0)


class TestInvalidation:
    def test_invalidate_source(self, cache):
        cache.store("u1", "q1", ["a"], [])
        cache.store("u1", "q2", ["a"], [])
        cache.store("u2", "q1", ["a"], [])
        assert cache.invalidate("u1") == 2
        assert cache.lookup("u2", "q1") is not None

    def test_invalidate_all(self, cache):
        cache.store("u1", "q", ["a"], [])
        cache.store("u2", "q", ["a"], [])
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_sweep_evicts_only_expired(self, cache, clock):
        cache.store("u1", "q", ["a"], [])
        clock.advance(20.0)
        cache.store("u2", "q", ["a"], [])
        clock.advance(15.0)  # u1 is 35s old, u2 15s old
        assert cache.sweep() == 1
        assert len(cache) == 1


class TestEntriesFor:
    def test_lists_live_entries_of_source(self, cache, clock):
        cache.store("u", "SELECT * FROM A", ["a"], [])
        cache.store("u", "SELECT * FROM B", ["a"], [])
        clock.advance(31.0)
        cache.store("u", "SELECT * FROM C", ["a"], [])
        live = cache.entries_for("u")
        assert len(live) == 1
        assert "C" in live[0].sql

    def test_hit_ratio(self, cache):
        assert cache.hit_ratio == 0.0
        cache.store("u", "q", ["a"], [])
        cache.lookup("u", "q")
        cache.lookup("u", "other")
        assert cache.hit_ratio == 0.5


class TestLruBound:
    def test_insert_past_capacity_evicts_oldest(self, clock):
        cache = CacheController(clock, ttl=1000.0, max_entries=2)
        cache.store("u", "q1", ["a"], [])
        cache.store("u", "q2", ["a"], [])
        cache.store("u", "q3", ["a"], [])
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup("u", "q1") is None
        assert cache.lookup("u", "q2") is not None
        assert cache.lookup("u", "q3") is not None

    def test_lookup_refreshes_recency(self, clock):
        cache = CacheController(clock, ttl=1000.0, max_entries=2)
        cache.store("u", "q1", ["a"], [])
        cache.store("u", "q2", ["a"], [])
        cache.lookup("u", "q1")          # q1 is now most recently used
        cache.store("u", "q3", ["a"], [])
        assert cache.lookup("u", "q1") is not None
        assert cache.lookup("u", "q2") is None   # evicted instead

    def test_restore_refreshes_recency(self, clock):
        cache = CacheController(clock, ttl=1000.0, max_entries=2)
        cache.store("u", "q1", ["a"], [])
        cache.store("u", "q2", ["a"], [])
        cache.store("u", "q1", ["a"], [])        # re-store moves to back
        cache.store("u", "q3", ["a"], [])
        assert cache.lookup("u", "q1") is not None
        assert cache.lookup("u", "q2") is None

    def test_zero_capacity_means_unbounded(self, clock):
        cache = CacheController(clock, ttl=1000.0, max_entries=0)
        for i in range(500):
            cache.store("u", f"q{i}", ["a"], [])
        assert len(cache) == 500
        assert cache.evictions == 0

    def test_negative_capacity_rejected(self, clock):
        with pytest.raises(ValueError):
            CacheController(clock, max_entries=-1)

    def test_future_stamped_entry_is_a_miss(self, clock):
        # An entry stored by a concurrent sibling branch can carry a
        # timestamp ahead of this branch's private timeline; it must not
        # be served (negative age would defeat the single-flight path).
        cache = CacheController(clock, ttl=1000.0)
        with clock.concurrent() as scope:
            with scope.branch():
                clock.advance(5.0)
                cache.store("u", "q", ["a"], [["v"]])
            with scope.branch():
                clock.advance(1.0)
                assert cache.lookup("u", "q") is None
        # After the join the entry is in the past and serves normally.
        assert cache.lookup("u", "q") is not None
