"""Unit tests for the overload-protection layer (admission, shedding,
brownout, adaptive concurrency) and its breaker interplay."""

import pytest

from repro.core.admission import (
    AdmissionController,
    AdmissionTicket,
    GradientLimiter,
    QueryClass,
)
from repro.core.deadline import Deadline
from repro.core.errors import (
    DeadlineExceededError,
    GridRmError,
    OverloadError,
    PolicyError,
)
from repro.core.gateway import BatchQuery, Gateway
from repro.core.health import HealthTracker
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.core.shed import (
    PressureMonitor,
    PressureState,
    ShedAction,
    ShedLedger,
    shed_action,
)
from repro.simnet.clock import VirtualClock
from repro.testbed import build_testbed


def make_controller(clock=None, **policy_kw):
    clock = clock or VirtualClock()
    policy_kw.setdefault("admission_enabled", True)
    policy = GatewayPolicy(**policy_kw)
    return clock, AdmissionController(clock, policy)


def make_limiter(clock, **kw):
    kw.setdefault("initial", 4)
    kw.setdefault("floor", 1)
    kw.setdefault("ceiling", 8)
    kw.setdefault("tolerance", 2.0)
    kw.setdefault("backoff", 0.5)
    kw.setdefault("window", 4)
    return GradientLimiter(clock, **kw)


class TestQueryClass:
    def test_parse_enum_passthrough(self):
        assert QueryClass.parse(QueryClass.BATCH) is QueryClass.BATCH

    def test_parse_strings(self):
        assert QueryClass.parse("critical") is QueryClass.CRITICAL
        assert QueryClass.parse("Interactive") is QueryClass.INTERACTIVE
        assert QueryClass.parse("BATCH") is QueryClass.BATCH

    def test_parse_none_defaults_interactive(self):
        assert QueryClass.parse(None) is QueryClass.INTERACTIVE

    def test_parse_unknown_rejected(self):
        with pytest.raises(GridRmError, match="query class"):
            QueryClass.parse("urgent")


class TestGradientLimiter:
    def test_probes_upward_when_healthy(self):
        limiter = make_limiter(VirtualClock(), window=4)
        for _ in range(12):
            limiter.observe(0.1)
        assert limiter.limit > 4

    def test_ceiling_clamps_probing(self):
        limiter = make_limiter(VirtualClock(), ceiling=5, window=2)
        for _ in range(40):
            limiter.observe(0.1)
        assert limiter.limit == 5

    def test_congestion_backs_off_multiplicatively(self):
        limiter = make_limiter(
            VirtualClock(), initial=8, ceiling=16, window=4, backoff=0.5
        )
        for _ in range(4):
            limiter.observe(0.1)  # establish the baseline
        before = limiter.limit
        for _ in range(4):
            limiter.observe(0.1, congested=True)
        assert limiter.limit <= max(1, int(before * 0.5) + 1)
        assert limiter.limit < before

    def test_latency_gradient_backs_off_without_errors(self):
        limiter = make_limiter(
            VirtualClock(), initial=8, ceiling=16, window=4, tolerance=2.0
        )
        for _ in range(4):
            limiter.observe(0.1)
        before = limiter.limit
        for _ in range(4):
            limiter.observe(1.0)  # 10x the baseline: congestion signal
        assert limiter.limit < before

    def test_floor_holds_under_sustained_congestion(self):
        limiter = make_limiter(VirtualClock(), floor=2, window=2)
        for _ in range(40):
            limiter.observe(1.0, congested=True)
        assert limiter.limit == 2

    def test_snapshot_shape(self):
        limiter = make_limiter(VirtualClock())
        limiter.observe(0.2)
        snap = limiter.snapshot()
        assert snap["limit"] == 4
        assert snap["pending_samples"] == 1


class TestPressureMonitor:
    def monitor(self, clock, **kw):
        kw.setdefault("queue_capacity", 10)
        kw.setdefault("brownout_enter", 0.3)
        kw.setdefault("shed_enter", 0.8)
        kw.setdefault("min_dwell", 5.0)
        return PressureMonitor(clock, **kw)

    def test_escalates_immediately(self):
        clock = VirtualClock()
        mon = self.monitor(clock)
        assert mon.observe(0, 4) is PressureState.NORMAL
        assert mon.observe(3, 0) is PressureState.BROWNOUT
        assert mon.observe(8, 0) is PressureState.SHED

    def test_deescalation_needs_dwell(self):
        clock = VirtualClock()
        mon = self.monitor(clock)
        mon.observe(8, 0)  # SHED
        clock.advance(1.0)
        # Pressure is gone but the dwell has not elapsed: still SHED.
        assert mon.observe(0, 4) is PressureState.SHED
        clock.advance(10.0)
        assert mon.observe(0, 4) is PressureState.NORMAL

    def test_zero_headroom_with_queue_is_brownout(self):
        clock = VirtualClock()
        mon = self.monitor(clock)
        assert mon.observe(1, 0) is PressureState.BROWNOUT

    def test_retry_after_positive_under_pressure(self):
        clock = VirtualClock()
        mon = self.monitor(clock)
        mon.observe(8, 0)
        assert mon.retry_after() > 0

    def test_transition_callback_and_counter(self):
        clock = VirtualClock()
        seen = []
        mon = self.monitor(clock, on_transition=lambda a, b: seen.append((a, b)))
        mon.observe(8, 0)
        clock.advance(10.0)
        mon.observe(0, 4)
        assert (PressureState.NORMAL, PressureState.SHED) in seen
        assert mon.transitions == len(seen)


class TestShedFateTable:
    def test_normal_always_dispatches(self):
        for qc in QueryClass:
            assert (
                shed_action(PressureState.NORMAL, qc) is ShedAction.DISPATCH
            )

    def test_critical_always_dispatches_or_degrades(self):
        assert (
            shed_action(PressureState.BROWNOUT, QueryClass.CRITICAL)
            is ShedAction.DISPATCH
        )
        assert (
            shed_action(PressureState.SHED, QueryClass.CRITICAL)
            is ShedAction.DISPATCH
        )

    def test_batch_sheds_first(self):
        assert (
            shed_action(PressureState.BROWNOUT, QueryClass.BATCH)
            is ShedAction.STALE_THEN_SHED
        )
        assert (
            shed_action(PressureState.SHED, QueryClass.BATCH) is ShedAction.SHED
        )

    def test_interactive_degrades_before_shedding(self):
        assert (
            shed_action(PressureState.BROWNOUT, QueryClass.INTERACTIVE)
            is ShedAction.STALE_THEN_DISPATCH
        )
        assert (
            shed_action(PressureState.SHED, QueryClass.INTERACTIVE)
            is ShedAction.STALE_THEN_SHED
        )


class TestAdmissionController:
    def test_admit_release_round_trip(self):
        clock, adm = make_controller()
        launch = clock.now()
        ticket = adm.admit(QueryClass.INTERACTIVE)
        assert isinstance(ticket, AdmissionTicket)
        assert ticket.admitted_at == launch
        assert ticket.queued_for == 0.0
        clock.advance(0.25)
        adm.release(ticket)
        # In-flight is judged by completion instants: from the launch
        # instant's point of view the request is still running.
        assert adm.inflight(launch) == 1
        assert adm.inflight(clock.now()) == 0
        snap = adm.snapshot()
        assert snap["admitted"] == 1
        assert snap["limiter"]["pending_samples"] == 1

    def test_queue_overflow_sheds_batch_before_interactive(self):
        clock, adm = make_controller(
            admission_initial_limit=1,
            admission_queue_limit=4,
            admission_batch_queue_share=0.5,
        )
        # Saturate the service slots with work that never finishes soon.
        t = adm.admit(QueryClass.INTERACTIVE)
        adm._ends.append(clock.now() + 1000.0)
        adm.release(t)
        # Fill the queue spans to batch's bound (0.5 * 4 = 2).
        now = clock.now()
        adm._queue_spans.extend([(now, now + 1000.0)] * 2)
        with pytest.raises(OverloadError, match="shed"):
            adm.admit(QueryClass.BATCH)
        assert adm.sheds.counts()["batch"] == 1

    def test_critical_never_queue_shed(self):
        clock, adm = make_controller(
            admission_initial_limit=1, admission_queue_limit=2
        )
        adm._ends.append(clock.now() + 0.5)
        now = clock.now()
        adm._queue_spans.extend([(now, now + 1000.0)] * 10)
        # The queue is far past capacity, yet CRITICAL still queues.
        ticket = adm.admit(QueryClass.CRITICAL)
        assert ticket.query_class is QueryClass.CRITICAL
        assert adm.sheds.counts()["critical"] == 0

    def test_doomed_on_dequeue(self):
        clock, adm = make_controller(admission_initial_limit=1)
        # Observed service times: p50 = 1.0s.
        for _ in range(8):
            t = adm.admit(QueryClass.INTERACTIVE)
            clock.advance(1.0)
            adm.release(t)
        # One slot busy for 2 more seconds; a query with a 1.5s budget
        # will wait ~2s in the queue and emerge with < p50 remaining.
        adm._ends.append(clock.now() + 2.0)
        deadline = Deadline.after(clock, 1.5)
        with pytest.raises(DeadlineExceededError, match="doomed on dequeue"):
            adm.admit(QueryClass.INTERACTIVE, deadline)
        assert adm.snapshot()["doomed"] == 1

    def test_shed_carries_retry_after_and_class(self):
        clock, adm = make_controller()
        adm.monitor.observe(100, 0)  # force SHED state
        with pytest.raises(OverloadError) as exc_info:
            adm.shed(QueryClass.BATCH, "test")
        exc = exc_info.value
        assert exc.retry_after > 0
        assert exc.query_class == "batch"

    def test_allow_retry_and_hedges_follow_pressure(self):
        clock, adm = make_controller()
        assert adm.allow_retry(QueryClass.BATCH)
        assert not adm.suppress_hedges()
        adm.monitor.observe(100, 0)
        assert not adm.allow_retry(QueryClass.BATCH)
        assert adm.allow_retry(QueryClass.CRITICAL)
        assert adm.suppress_hedges()

    def test_disabled_controller_is_transparent(self):
        clock, adm = make_controller(admission_enabled=False)
        assert not adm.enabled
        assert adm.allow_retry(QueryClass.BATCH)
        assert not adm.suppress_hedges()


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"admission_queue_limit": 0},
            {"admission_batch_queue_share": 0.0},
            {"admission_batch_queue_share": 1.5},
            {"admission_initial_limit": 0},
            {"limiter_floor": 0},
            {"limiter_ceiling": 1, "limiter_floor": 2},
            {"limiter_tolerance": 1.0},
            {"limiter_backoff": 1.0},
            {"limiter_backoff": 0.0},
            {"limiter_window": 0},
            {"brownout_enter_pressure": 0.0},
            {"brownout_enter_pressure": 0.9, "shed_enter_pressure": 0.5},
            {"shed_enter_pressure": 1.5},
            {"pressure_min_dwell": -1.0},
            {"default_query_class": "urgent"},
            {"subscription_buffer_limit": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(PolicyError):
            GatewayPolicy(**kw)


class TestBreakerShedInterplay:
    def test_shed_is_never_a_breaker_failure(self):
        """The unit-level contract: a shed records nothing in the
        HealthTracker — a gateway protecting itself is not a failing
        source."""
        clock = VirtualClock()
        policy = GatewayPolicy(admission_enabled=True)
        health = HealthTracker(clock, policy)
        _, adm = make_controller(clock)
        adm.monitor.observe(100, 0)
        with pytest.raises(OverloadError):
            adm.shed(QueryClass.BATCH, "test")
        assert health.scoreboard() == {}

    def test_local_shed_status_no_breaker_penalty(self):
        """End-to-end at one gateway: a SHED-state gateway sheds a batch
        query as a typed per-source status and the breakers stay clean."""
        policy = GatewayPolicy(
            admission_enabled=True, adaptive_concurrency=True
        )
        network, (site,) = build_testbed(
            n_hosts=2, agents=("snmp",), seed=0, policy=policy
        )
        network.clock.advance(60.0)
        gw = site.gateway
        gw.overload.monitor.observe(100, 0)  # force SHED
        assert gw.overload.state is PressureState.SHED
        with pytest.raises(OverloadError):
            gw.query(
                site.source_urls,
                "SELECT * FROM Processor",
                mode=QueryMode.REALTIME,
                query_class="batch",
            )
        board = gw.health.scoreboard()
        assert all(entry["total_failures"] == 0 for entry in board.values())
        assert gw.overload.sheds.counts()["batch"] == 1

    def test_critical_dispatches_even_in_shed_state(self):
        policy = GatewayPolicy(admission_enabled=True)
        network, (site,) = build_testbed(
            n_hosts=2, agents=("snmp",), seed=0, policy=policy
        )
        network.clock.advance(60.0)
        gw = site.gateway
        gw.overload.monitor.observe(100, 0)
        result = gw.query(
            site.source_urls,
            "SELECT * FROM Processor",
            mode=QueryMode.REALTIME,
            query_class="critical",
        )
        assert result.failed_sources == 0
        assert gw.overload.sheds.counts()["critical"] == 0

    def test_brownout_serves_stale_with_degraded_marker(self):
        policy = GatewayPolicy(admission_enabled=True)
        network, (site,) = build_testbed(
            n_hosts=2, agents=("snmp",), seed=0, policy=policy
        )
        network.clock.advance(60.0)
        gw = site.gateway
        # Warm the cache, then force BROWNOUT.
        gw.query(site.source_urls, "SELECT * FROM Processor", mode=QueryMode.REALTIME)
        gw.overload.monitor.observe(2, 0)
        assert gw.overload.state is PressureState.BROWNOUT
        result = gw.query(
            site.source_urls,
            "SELECT * FROM Processor",
            mode=QueryMode.REALTIME,
            query_class="interactive",
        )
        assert result.rows
        assert all(s.from_cache and s.degraded for s in result.statuses)
        assert gw.overload.snapshot()["brownout_served"] == 1


class TestRemoteShed:
    @pytest.fixture
    def fabric(self):
        from repro.gma.directory import GMADirectory
        from repro.gma.global_layer import GlobalLayer
        from repro.simnet.network import Network
        from repro.testbed import build_site

        clock = VirtualClock()
        network = Network(clock, seed=43)
        a = build_site(network, name="site-a", n_hosts=1, agents=("snmp",), seed=1)
        b = build_site(
            network,
            name="site-b",
            n_hosts=1,
            agents=("snmp",),
            seed=2,
            policy=GatewayPolicy(admission_enabled=True),
        )
        clock.advance(20.0)
        directory = GMADirectory(network)
        gla = GlobalLayer(a.gateway, directory)
        GlobalLayer(b.gateway, directory)
        return network, a, b, gla

    def test_remote_shed_propagates_typed(self, fabric):
        network, a, b, gla = fabric
        b.gateway.overload.monitor.observe(100, 0)  # site-b sheds
        with pytest.raises(OverloadError, match="shed"):
            gla.query_remote(
                "site-b",
                "SELECT * FROM Processor",
                mode="realtime",
                query_class="batch",
            )

    def test_remote_shed_is_not_a_breaker_failure(self, fabric):
        network, a, b, gla = fabric
        b.gateway.overload.monitor.observe(100, 0)
        for _ in range(5):
            with pytest.raises(OverloadError):
                gla.query_remote(
                    "site-b",
                    "SELECT * FROM Processor",
                    mode="realtime",
                    query_class="batch",
                )
        entry = a.gateway.health.scoreboard().get("gma://site-b")
        if entry is not None:
            assert entry["total_failures"] == 0
        assert gla.stats["remote_sheds"] == 5
        # The breaker never opened: a real query flows once pressure ends.
        b.gateway.overload.monitor.observe(0, 8)
        network.clock.advance(30.0)
        b.gateway.overload.monitor.observe(0, 8)
        result = gla.query_remote(
            "site-b", "SELECT * FROM Processor", mode="realtime"
        )
        assert result.rows

    def test_remote_critical_not_shed(self, fabric):
        network, a, b, gla = fabric
        b.gateway.overload.monitor.observe(100, 0)
        result = gla.query_remote(
            "site-b",
            "SELECT * FROM Processor",
            mode="realtime",
            query_class="critical",
        )
        assert result.rows


class TestShedLedger:
    def test_counts_by_class(self):
        ledger = ShedLedger()
        ledger.record(QueryClass.BATCH)
        ledger.record(QueryClass.BATCH)
        ledger.record(QueryClass.INTERACTIVE)
        counts = ledger.counts()
        assert counts["batch"] == 2
        assert counts["interactive"] == 1
        assert counts["critical"] == 0
        assert counts["total"] == 3


class TestGatewayWiring:
    def test_stats_expose_overload_snapshot(self):
        policy = GatewayPolicy(admission_enabled=True)
        network, (site,) = build_testbed(
            n_hosts=1, agents=("snmp",), seed=0, policy=policy
        )
        network.clock.advance(60.0)
        stats = site.gateway.stats()
        assert stats["overload"]["enabled"] is True
        assert stats["overload"]["state"] == "normal"

    def test_batch_query_carries_query_class(self):
        policy = GatewayPolicy(admission_enabled=True)
        network, (site,) = build_testbed(
            n_hosts=1, agents=("snmp",), seed=0, policy=policy
        )
        network.clock.advance(60.0)
        gw = site.gateway
        gw.overload.monitor.observe(100, 0)  # SHED
        outcomes = gw.query_batch(
            [
                BatchQuery(
                    urls=site.source_urls,
                    sql="SELECT * FROM Processor",
                    mode=QueryMode.REALTIME,
                    query_class="batch",
                ),
                BatchQuery(
                    urls=site.source_urls,
                    sql="SELECT * FROM MainMemory",
                    mode=QueryMode.REALTIME,
                    query_class="critical",
                ),
            ]
        )
        assert isinstance(outcomes[0], OverloadError)
        assert not isinstance(outcomes[1], Exception)

    def test_pressure_transition_emits_event(self):
        policy = GatewayPolicy(admission_enabled=True)
        network, (site,) = build_testbed(
            n_hosts=1, agents=("snmp",), seed=0, policy=policy
        )
        network.clock.advance(60.0)
        gw = site.gateway
        gw.overload.monitor.observe(100, 0)
        names = [e.name for e in gw.events.recent]
        assert "pressure.shed" in names

    def test_history_mode_bypasses_admission(self):
        policy = GatewayPolicy(admission_enabled=True, history_enabled=True)
        network, (site,) = build_testbed(
            n_hosts=1, agents=("snmp",), seed=0, policy=policy
        )
        network.clock.advance(120.0)
        gw = site.gateway
        # Record some history, then force SHED.
        gw.query(site.source_urls, "SELECT * FROM Processor", mode=QueryMode.REALTIME)
        gw.overload.monitor.observe(100, 0)  # SHED
        # HISTORY answers come from the local store: never shed.
        result = gw.query(
            site.source_urls,
            "SELECT * FROM Processor",
            mode=QueryMode.HISTORY,
            query_class="batch",
        )
        assert result.mode is QueryMode.HISTORY
