"""Unit tests for the SCMS agent."""

import pytest

from repro.agents.scms import ScmsAgent
from repro.drivers.scms_driver import parse_scms_queue, parse_scms_section


@pytest.fixture
def agent(network, hosts):
    return ScmsAgent("cl", hosts, network)


class TestAgent:
    def test_requires_hosts(self, network):
        with pytest.raises(ValueError):
            ScmsAgent("cl", [], network)

    def test_nodes_lists_all(self, network, agent, hosts):
        resp = network.request("gateway", agent.address, "NODES")
        assert resp.splitlines() == [h.spec.name for h in hosts]

    def test_cpu_section_all_nodes(self, network, agent, hosts):
        nodes = parse_scms_section(network.request("gateway", agent.address, "CPU"))
        assert set(nodes) == {h.spec.name for h in hosts}
        for values in nodes.values():
            assert {"ncpu", "mhz", "load1", "idle"} <= set(values)

    def test_cpu_section_single_node(self, network, agent, hosts):
        name = hosts[1].spec.name
        nodes = parse_scms_section(network.request("gateway", agent.address, f"CPU {name}"))
        assert set(nodes) == {name}

    def test_unknown_node_errors(self, network, agent):
        assert network.request("gateway", agent.address, "CPU ghost").startswith("ERROR")

    def test_mem_section(self, network, agent, hosts):
        nodes = parse_scms_section(network.request("gateway", agent.address, "MEM"))
        h = hosts[0]
        assert int(nodes[h.spec.name]["memtotal"]) == int(h.spec.ram_mb)

    def test_node_section_alive_flag(self, network, agent):
        nodes = parse_scms_section(network.request("gateway", agent.address, "NODE"))
        assert all(v["alive"] == "1" for v in nodes.values())

    def test_queue_jobs_parse(self, network, agent):
        network.clock.advance(120.0)
        jobs = parse_scms_queue(network.request("gateway", agent.address, "QUEUE"))
        for job in jobs:
            assert {"jobid", "queue", "owner", "state", "node"} <= set(job)

    def test_unknown_command_errors(self, network, agent):
        assert network.request("gateway", agent.address, "BOGUS").startswith("ERROR")


class TestParsers:
    def test_section_parser_skips_garbage(self):
        text = "n0.key v\nERROR nope\n\nnodot value\nn1.other w"
        out = parse_scms_section(text)
        assert out == {"n0": {"key": "v"}, "n1": {"other": "w"}}

    def test_queue_parser_skips_garbage(self):
        text = "jobid=1 queue=q\nERROR x\n\nbare words here"
        out = parse_scms_queue(text)
        assert out == [{"jobid": "1", "queue": "q"}]
