"""Unit tests for the SNMP substrate: codec, MIB tree, agent."""

import pytest

from repro.agents import snmp as S
from repro.agents.host_model import HostSpec, SimulatedHost
from repro.simnet.network import Address


class TestOidText:
    def test_parse(self):
        assert S.oid_parse("1.3.6.1.2.1.1.3.0") == (1, 3, 6, 1, 2, 1, 1, 3, 0)

    def test_parse_leading_dot(self):
        assert S.oid_parse(".1.3") == (1, 3)

    def test_parse_bad(self):
        with pytest.raises(ValueError):
            S.oid_parse("1.x.3")
        with pytest.raises(ValueError):
            S.oid_parse("")

    def test_str_round_trip(self):
        assert S.oid_str(S.oid_parse("1.3.6.1")) == "1.3.6.1"


class TestCodec:
    def test_integer_round_trip(self):
        for v in (0, 1, 127, 128, 255, 256, 65535, -1, -128, -129, 2**31 - 1):
            data = S.encode_integer(v)
            tag, payload, _ = S._read_tlv(data, 0)
            assert S.decode_value(tag, payload) == v, v

    def test_string_round_trip(self):
        data = S.encode_string("hello λ world")
        tag, payload, _ = S._read_tlv(data, 0)
        assert S.decode_value(tag, payload) == "hello λ world"

    def test_null(self):
        tag, payload, _ = S._read_tlv(S.encode_null(), 0)
        assert S.decode_value(tag, payload) is None

    def test_oid_round_trip_base128(self):
        # Arc > 127 exercises multi-byte base-128 packing.
        oid = (1, 3, 6, 1, 4, 1, 42000, 1, 1)
        data = S.encode_oid(oid)
        tag, payload, _ = S._read_tlv(data, 0)
        assert S.decode_value(tag, payload) == oid

    def test_oid_too_short_rejected(self):
        with pytest.raises(S.SnmpCodecError):
            S.encode_oid((1,))

    def test_long_length_encoding(self):
        big = S.encode_string("x" * 300)
        tag, payload, _ = S._read_tlv(big, 0)
        assert len(payload) == 300

    def test_truncated_input_rejected(self):
        data = S.encode_string("hello")
        with pytest.raises(S.SnmpCodecError):
            S._read_tlv(data[:-2], 0)

    def test_message_round_trip(self):
        msg = S.SnmpMessage(
            version=0,
            community="public",
            pdu_type=S.TAG_GET,
            request_id=99,
            error_status=0,
            error_index=0,
            varbinds=(S.VarBind(S.LA_LOAD_1), S.VarBind(S.SYS_NAME, "n0")),
        )
        back = S.SnmpMessage.decode(msg.encode())
        assert back == msg

    def test_garbage_rejected(self):
        with pytest.raises(S.SnmpCodecError):
            S.SnmpMessage.decode(b"\x99\x01\x00")


class TestMibTree:
    def test_get_constant_and_callable(self):
        mib = S.MibTree()
        mib.put((1, 3, 1), 42)
        mib.put((1, 3, 2), lambda: 43)
        assert mib.get((1, 3, 1)) == 42
        assert mib.get((1, 3, 2)) == 43

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            S.MibTree().get((1, 3))

    def test_next_after_lexicographic(self):
        mib = S.MibTree()
        for oid in [(1, 3, 2), (1, 3, 1, 5), (1, 3, 1)]:
            mib.put(oid, 0)
        assert mib.next_after((1, 3)) == (1, 3, 1)
        assert mib.next_after((1, 3, 1)) == (1, 3, 1, 5)
        assert mib.next_after((1, 3, 2)) is None

    def test_set_requires_writable(self):
        mib = S.MibTree()
        mib.put((1, 1), "ro")
        mib.put((1, 2), "rw", writable=True)
        with pytest.raises(PermissionError):
            mib.set((1, 1), "x")
        mib.set((1, 2), "x")
        assert mib.get((1, 2)) == "x"


@pytest.fixture
def agent(network, host):
    return S.SnmpAgent(host, network)


def get(network, agent, *oids, community="public", pdu=S.TAG_GET):
    msg = S.SnmpMessage(0, community, pdu, 1, 0, 0, tuple(S.VarBind(o) for o in oids))
    raw = network.request("gateway", agent.address, msg.encode())
    return S.SnmpMessage.decode(raw)


class TestAgent:
    def test_get_sysname(self, network, agent):
        resp = get(network, agent, S.SYS_NAME)
        assert resp.error_status == S.ERR_NONE
        assert resp.varbinds[0].value == "n0"

    def test_get_multiple_varbinds(self, network, agent):
        resp = get(network, agent, S.LA_LOAD_1, S.MEM_TOTAL_REAL)
        assert len(resp.varbinds) == 2
        assert all(isinstance(vb.value, int) for vb in resp.varbinds)

    def test_load_scaled_by_100(self, network, agent, host):
        resp = get(network, agent, S.LA_LOAD_1)
        t = network.clock.now()
        expected = int(host.snapshot(t)["cpu"]["load_1"] * 100)
        assert resp.varbinds[0].value == expected

    def test_memory_in_kilobytes(self, network, agent, host):
        resp = get(network, agent, S.MEM_TOTAL_REAL)
        assert resp.varbinds[0].value == int(host.spec.ram_mb * 1024)

    def test_missing_oid_no_such_name(self, network, agent):
        resp = get(network, agent, (1, 3, 9, 9, 9))
        assert resp.error_status == S.ERR_NO_SUCH_NAME
        assert resp.error_index == 1

    def test_bad_community_generr(self, network, agent):
        resp = get(network, agent, S.SYS_NAME, community="wrong")
        assert resp.error_status == S.ERR_GEN_ERR

    def test_getnext_walk_visits_whole_mib(self, network, agent):
        seen = []
        cur = (1, 3)
        while True:
            resp = get(network, agent, cur, pdu=S.TAG_GETNEXT)
            if resp.error_status != S.ERR_NONE:
                break
            cur = resp.varbinds[0].oid
            seen.append(cur)
        assert len(seen) == len(agent.mib)

    def test_set_sysname(self, network, agent):
        msg = S.SnmpMessage(
            0, "public", S.TAG_SET, 2, 0, 0, (S.VarBind(S.SYS_NAME, "renamed"),)
        )
        resp = S.SnmpMessage.decode(
            network.request("gateway", agent.address, msg.encode())
        )
        assert resp.error_status == S.ERR_NONE
        assert get(network, agent, S.SYS_NAME).varbinds[0].value == "renamed"

    def test_set_readonly_rejected(self, network, agent):
        msg = S.SnmpMessage(
            0, "public", S.TAG_SET, 2, 0, 0, (S.VarBind(S.LA_LOAD_1, 0),)
        )
        resp = S.SnmpMessage.decode(
            network.request("gateway", agent.address, msg.encode())
        )
        assert resp.error_status == S.ERR_READ_ONLY

    def test_garbage_request_answers_generr(self, network, agent):
        raw = network.request("gateway", agent.address, b"\xff\xff")
        assert S.SnmpMessage.decode(raw).error_status == S.ERR_GEN_ERR

    def test_uptime_in_timeticks(self, network, agent, host):
        network.clock.advance(10.0)
        resp = get(network, agent, S.SYS_UPTIME)
        expected = int(host.snapshot()["os"]["uptime_s"] * 100)
        assert resp.varbinds[0].value == expected


class TestTraps:
    def test_threshold_trap_sent(self, network, host):
        agent = S.SnmpAgent(
            host, network, port=1161, load_trap_threshold=0.0, trap_check_period=5.0
        )
        got = []
        network.listen(
            Address("gateway", 1162),
            lambda p, s: None,
            datagram_handler=lambda p, s: got.append(S.SnmpMessage.decode(p)),
        )
        agent.add_trap_sink(Address("gateway", 1162))
        network.clock.advance(20.0)
        assert got
        trap = got[0]
        assert trap.pdu_type == S.TAG_TRAP
        assert trap.varbinds[0].oid == S.TRAP_LOAD_HIGH

    def test_no_trap_below_threshold(self, network, host):
        agent = S.SnmpAgent(
            host, network, port=1161, load_trap_threshold=1e9, trap_check_period=5.0
        )
        agent.add_trap_sink(Address("gateway", 1162))
        network.clock.advance(20.0)
        assert agent.traps_sent == 0

    def test_explicit_trap_counts(self, network, host):
        agent = S.SnmpAgent(host, network, port=1161)
        agent.add_trap_sink(Address("gateway", 1162))
        agent.send_trap(S.TRAP_LOAD_HIGH)
        assert agent.traps_sent == 1
