"""Unit tests for SQL execution over in-memory relations."""

import pytest

from repro.sql.errors import SqlExecutionError
from repro.sql.executor import evaluate_expr, evaluate_predicate, execute_select
from repro.sql.parser import parse_select

COLUMNS = ["host", "load", "cpus", "site"]
ROWS = [
    {"host": "a", "load": 0.5, "cpus": 4, "site": "s1"},
    {"host": "b", "load": 1.5, "cpus": 8, "site": "s1"},
    {"host": "c", "load": 2.5, "cpus": 8, "site": "s2"},
    {"host": "d", "load": None, "cpus": 2, "site": "s2"},
]


def run(sql, columns=COLUMNS, rows=ROWS):
    return execute_select(parse_select(sql), columns, rows)


class TestProjection:
    def test_star_preserves_column_order(self):
        r = run("SELECT * FROM m")
        assert r.columns == COLUMNS
        assert len(r) == 4

    def test_single_column(self):
        r = run("SELECT host FROM m")
        assert r.rows == [["a"], ["b"], ["c"], ["d"]]

    def test_computed_column(self):
        r = run("SELECT load * 2 AS dbl FROM m WHERE host = 'a'")
        assert r.columns == ["dbl"]
        assert r.rows == [[1.0]]

    def test_case_insensitive_column_lookup(self):
        r = run("SELECT HOST FROM m WHERE LOAD > 2")
        assert r.rows == [["c"]]

    def test_unknown_column_raises(self):
        with pytest.raises(SqlExecutionError):
            run("SELECT nope FROM m")


class TestWhere:
    def test_comparison(self):
        assert len(run("SELECT * FROM m WHERE load > 1")) == 2

    def test_null_comparison_excludes_row(self):
        # host d has NULL load: not > , not <=.
        assert len(run("SELECT * FROM m WHERE load > 0 OR load <= 0")) == 3

    def test_is_null(self):
        r = run("SELECT host FROM m WHERE load IS NULL")
        assert r.rows == [["d"]]

    def test_is_not_null(self):
        assert len(run("SELECT * FROM m WHERE load IS NOT NULL")) == 3

    def test_in(self):
        assert len(run("SELECT * FROM m WHERE host IN ('a', 'c')")) == 2

    def test_not_in(self):
        assert len(run("SELECT * FROM m WHERE host NOT IN ('a', 'c')")) == 2

    def test_between(self):
        assert len(run("SELECT * FROM m WHERE cpus BETWEEN 3 AND 8")) == 3

    def test_like_percent(self):
        rows = [{"host": "node-01", "load": 1, "cpus": 1, "site": "x"}]
        assert len(run("SELECT * FROM m WHERE host LIKE 'node%'", rows=rows)) == 1

    def test_like_underscore(self):
        rows = [{"host": "n1", "load": 1, "cpus": 1, "site": "x"}]
        assert len(run("SELECT * FROM m WHERE host LIKE 'n_'", rows=rows)) == 1
        assert len(run("SELECT * FROM m WHERE host LIKE 'n__'", rows=rows)) == 0

    def test_like_case_insensitive(self):
        rows = [{"host": "Node", "load": 1, "cpus": 1, "site": "x"}]
        assert len(run("SELECT * FROM m WHERE host LIKE 'node'", rows=rows)) == 1

    def test_and_short_circuit_on_false(self):
        # b AND ... where left is false never errors on the right side.
        assert len(run("SELECT * FROM m WHERE 1 = 2 AND load / 0 > 1")) == 0

    def test_string_number_coercion(self):
        rows = [{"host": "a", "load": "1.5", "cpus": 1, "site": "x"}]
        assert len(run("SELECT * FROM m WHERE load > 1", rows=rows)) == 1

    def test_division_by_zero_yields_null(self):
        # NULL predicate -> row excluded, no crash.
        assert len(run("SELECT * FROM m WHERE load / 0 > 1")) == 0


class TestAggregates:
    def test_count_star(self):
        assert run("SELECT COUNT(*) FROM m").rows == [[4]]

    def test_count_column_skips_nulls(self):
        assert run("SELECT COUNT(load) FROM m").rows == [[3]]

    def test_sum_avg(self):
        r = run("SELECT SUM(load), AVG(load) FROM m")
        assert r.rows[0][0] == pytest.approx(4.5)
        assert r.rows[0][1] == pytest.approx(1.5)

    def test_min_max(self):
        assert run("SELECT MIN(cpus), MAX(cpus) FROM m").rows == [[2, 8]]

    def test_aggregate_on_empty_input(self):
        r = run("SELECT COUNT(*), AVG(load) FROM m WHERE host = 'zzz'")
        assert r.rows == [[0, None]]

    def test_group_by(self):
        r = run("SELECT site, COUNT(*) FROM m GROUP BY site ORDER BY site")
        assert r.rows == [["s1", 2], ["s2", 2]]

    def test_group_by_having(self):
        r = run(
            "SELECT cpus, COUNT(*) n FROM m GROUP BY cpus HAVING COUNT(*) > 1"
        )
        assert r.rows == [[8, 2]]

    def test_count_distinct(self):
        assert run("SELECT COUNT(DISTINCT site) FROM m").rows == [[2]]

    def test_aggregate_arithmetic(self):
        r = run("SELECT MAX(load) - MIN(load) FROM m")
        assert r.rows[0][0] == pytest.approx(2.0)

    def test_star_with_aggregation_rejected(self):
        with pytest.raises(SqlExecutionError):
            run("SELECT * FROM m GROUP BY site")

    def test_sum_non_numeric_raises(self):
        with pytest.raises(SqlExecutionError):
            run("SELECT SUM(host) FROM m")


class TestOrderLimit:
    def test_order_asc(self):
        r = run("SELECT host FROM m WHERE load IS NOT NULL ORDER BY load")
        assert [x[0] for x in r.rows] == ["a", "b", "c"]

    def test_order_desc(self):
        r = run("SELECT host FROM m WHERE load IS NOT NULL ORDER BY load DESC")
        assert [x[0] for x in r.rows] == ["c", "b", "a"]

    def test_nulls_sort_first(self):
        r = run("SELECT host FROM m ORDER BY load")
        assert r.rows[0] == ["d"]

    def test_multi_key_order(self):
        r = run("SELECT host FROM m ORDER BY cpus DESC, host ASC")
        assert [x[0] for x in r.rows] == ["b", "c", "a", "d"]

    def test_order_by_projection_alias(self):
        r = run(
            "SELECT host, load * -1 AS neg FROM m WHERE load IS NOT NULL ORDER BY neg"
        )
        assert [x[0] for x in r.rows] == ["c", "b", "a"]

    def test_order_by_alias_desc(self):
        r = run(
            "SELECT host, cpus * 10 big FROM m ORDER BY big DESC, host ASC"
        )
        assert [x[0] for x in r.rows] == ["b", "c", "a", "d"]

    def test_limit(self):
        assert len(run("SELECT * FROM m LIMIT 2")) == 2

    def test_offset(self):
        r = run("SELECT host FROM m ORDER BY host LIMIT 2 OFFSET 1")
        assert [x[0] for x in r.rows] == ["b", "c"]

    def test_limit_zero(self):
        assert len(run("SELECT * FROM m LIMIT 0")) == 0

    def test_distinct(self):
        r = run("SELECT DISTINCT site FROM m ORDER BY site")
        assert r.rows == [["s1"], ["s2"]]

    def test_distinct_applies_after_projection(self):
        r = run("SELECT DISTINCT cpus FROM m WHERE cpus = 8")
        assert r.rows == [[8]]


class TestEvaluateHelpers:
    def test_evaluate_predicate_none_clause_true(self):
        assert evaluate_predicate(None, {"a": 1})

    def test_evaluate_expr_not(self):
        stmt = parse_select("SELECT * FROM m WHERE NOT flag")
        assert evaluate_predicate(stmt.where, {"flag": False})
        assert not evaluate_predicate(stmt.where, {"flag": True})

    def test_evaluate_expr_not_null_is_null(self):
        stmt = parse_select("SELECT * FROM m WHERE NOT flag")
        assert not evaluate_predicate(stmt.where, {"flag": None})

    def test_select_result_dicts(self):
        r = run("SELECT host, cpus FROM m LIMIT 1")
        assert r.dicts() == [{"host": "a", "cpus": 4}]
