"""Unit tests for the JDBC-SNMP driver's query path."""

import pytest

from repro.agents.snmp import SnmpAgent
from repro.drivers.snmp_driver import SnmpDriver


@pytest.fixture
def agent(network, host):
    return SnmpAgent(host, network)


@pytest.fixture
def conn(network, agent):
    return SnmpDriver(network, gateway_host="gateway").connect("jdbc:snmp://n0/x")


def query(conn, sql):
    return conn.create_statement().execute_query(sql)


class TestProcessor:
    def test_star_row_shape(self, conn, host):
        rows = query(conn, "SELECT * FROM Processor").to_dicts()
        assert len(rows) == 1
        row = rows[0]
        assert row["HostName"] == "n0"
        assert row["CPUCount"] == host.spec.cpu_count

    def test_load_descaled(self, conn, host, network):
        row = query(conn, "SELECT LoadAverage1Min FROM Processor").to_dicts()[0]
        expected = int(host.snapshot(network.clock.now())["cpu"]["load_1"] * 100) / 100.0
        assert row["LoadAverage1Min"] == pytest.approx(expected)

    def test_utilization_derived_from_idle(self, conn):
        row = query(conn, "SELECT CPUIdle, CPUUtilization FROM Processor").to_dicts()[0]
        assert row["CPUUtilization"] == pytest.approx(100.0 - row["CPUIdle"])

    def test_untranslatable_fields_null(self, conn):
        """No SNMP OID carries CPU vendor/model/clock -> NULL (§3.2.3)."""
        row = query(conn, "SELECT Vendor, Model, ClockSpeedMHz FROM Processor").to_dicts()[0]
        assert row == {"Vendor": None, "Model": None, "ClockSpeedMHz": None}

    def test_fine_grained_fetches_only_needed_oids(self, conn, agent):
        before = agent.requests_served
        query(conn, "SELECT CPUCount FROM Processor")
        assert agent.requests_served == before + 1  # single batched GET

    def test_where_filtering_applied(self, conn):
        rs = query(conn, "SELECT HostName FROM Processor WHERE CPUCount > 1000")
        assert len(rs) == 0


class TestOtherGroups:
    def test_memory_unit_conversion_kb_to_mb(self, conn, host):
        row = query(conn, "SELECT RAMSizeMB FROM MainMemory").to_dicts()[0]
        assert row["RAMSizeMB"] == pytest.approx(host.spec.ram_mb)

    def test_os_name_from_sysdescr(self, conn, host):
        row = query(conn, "SELECT Name, Release FROM OperatingSystem").to_dicts()[0]
        assert row["Name"] == host.spec.os_name
        assert row["Release"] == host.spec.os_release

    def test_uptime_descaled_from_timeticks(self, conn, network, host):
        network.clock.advance(50.0)
        row = query(conn, "SELECT UptimeSeconds FROM OperatingSystem").to_dicts()[0]
        expected = host.snapshot()["os"]["uptime_s"]
        assert row["UptimeSeconds"] == pytest.approx(expected, abs=0.01)

    def test_network_adapter_bandwidth_mbps(self, conn, host):
        row = query(conn, "SELECT BandwidthMbps FROM NetworkAdapter").to_dicts()[0]
        assert row["BandwidthMbps"] == pytest.approx(host.spec.nic_bandwidth_mbps)

    def test_host_group(self, conn):
        row = query(conn, "SELECT * FROM Host").to_dicts()[0]
        assert row["Reachable"] is True
        assert row["UniqueId"] == "n0#snmp"
        assert row["AgentName"].startswith("snmp:")

    def test_timestamp_is_virtual_now(self, conn, network):
        network.clock.advance(123.0)
        row = query(conn, "SELECT Timestamp FROM Host").to_dicts()[0]
        assert row["Timestamp"] == pytest.approx(network.clock.now(), abs=1.0)


class TestFileSystemWalk:
    def test_one_row_per_mount(self, conn, host):
        rows = query(conn, "SELECT Name, SizeMB, AvailableSpaceMB FROM FileSystem").to_dicts()
        assert len(rows) == len(host.spec.filesystems)
        by_root = {r["Name"]: r for r in rows}
        for root, _fstype, size_mb in host.spec.filesystems:
            assert by_root[root]["SizeMB"] == pytest.approx(size_mb, abs=1.0)

    def test_available_space_consistent(self, conn, host, network):
        rows = query(conn, "SELECT Name, SizeMB, AvailableSpaceMB FROM FileSystem").to_dicts()
        for r in rows:
            assert 0 <= r["AvailableSpaceMB"] <= r["SizeMB"]

    def test_unobservable_fields_null(self, conn):
        rows = query(conn, "SELECT ReadOnly, Type FROM FileSystem").to_dicts()
        assert all(r == {"ReadOnly": None, "Type": None} for r in rows)

    def test_walk_enumerates_subtree(self, network, agent, host):
        from repro.agents import snmp as wire
        from repro.drivers.snmp_driver import SnmpDriver
        from repro.dbapi.url import JdbcUrl

        driver = SnmpDriver(network, gateway_host="gateway")
        url = JdbcUrl.parse("jdbc:snmp://n0/x")
        entries = driver.walk(url, wire.HR_STORAGE_DESCR)
        assert len(entries) == len(host.spec.filesystems)
        assert [suffix for suffix, _ in entries] == [
            (i + 1,) for i in range(len(entries))
        ]

    def test_walk_of_empty_subtree(self, network, agent):
        from repro.drivers.snmp_driver import SnmpDriver
        from repro.dbapi.url import JdbcUrl

        driver = SnmpDriver(network, gateway_host="gateway")
        entries = driver.walk(JdbcUrl.parse("jdbc:snmp://n0/x"), (1, 3, 9, 9, 9))
        assert entries == []


class TestProcessTable:
    def test_one_row_per_process(self, conn, host, network):
        rows = query(conn, "SELECT PID, Name, State FROM Process").to_dicts()
        snap = host.snapshot(network.clock.now())
        assert len(rows) == len(snap["processes"])

    def test_values_match_host_model(self, conn, host, network):
        rows = query(
            conn, "SELECT PID, Name, CPUPercent, MemoryPercent FROM Process"
        ).to_dicts()
        snap = host.snapshot(network.clock.now())
        by_pid = {p["pid"]: p for p in snap["processes"]}
        for r in rows:
            p = by_pid[r["PID"]]
            assert r["Name"] == p["name"]
            assert r["CPUPercent"] == pytest.approx(p["cpu_percent"], abs=0.1)
            assert r["MemoryPercent"] == pytest.approx(p["mem_percent"], abs=0.1)

    def test_state_decoded(self, conn):
        rows = query(conn, "SELECT State FROM Process").to_dicts()
        assert all(r["State"] in ("R", "S", "D", "Z") for r in rows)

    def test_owner_null(self, conn):
        rows = query(conn, "SELECT Owner FROM Process").to_dicts()
        assert all(r["Owner"] is None for r in rows)

    def test_where_on_cpu(self, conn):
        rows = query(conn, "SELECT PID, CPUPercent FROM Process WHERE CPUPercent > 15").to_dicts()
        assert all(r["CPUPercent"] > 15 for r in rows)

    def test_table_tracks_process_churn(self, conn, network):
        before = {r["PID"] for r in query(conn, "SELECT PID FROM Process").to_dicts()}
        network.clock.advance(120.0)  # several 30s plist windows later
        after = {r["PID"] for r in query(conn, "SELECT PID FROM Process").to_dicts()}
        assert before != after  # jobs came and went


class TestBulkWalk:
    @pytest.fixture
    def driver(self, network):
        from repro.drivers.snmp_driver import SnmpDriver

        return SnmpDriver(network, gateway_host="gateway")

    @pytest.fixture
    def url(self):
        from repro.dbapi.url import JdbcUrl

        return JdbcUrl.parse("jdbc:snmp://n0/x")

    def test_bulk_matches_getnext_walk(self, network, agent, driver, url):
        from repro.agents.snmp import HR_STORAGE_DESCR

        walked = driver.walk(url, HR_STORAGE_DESCR)
        bulked = driver.bulk_walk(url, HR_STORAGE_DESCR, max_repetitions=16)
        assert walked == bulked

    def test_bulk_uses_fewer_round_trips(self, network, agent, driver, url):
        from repro.agents.snmp import HR_STORAGE_DESCR

        network.stats.reset()
        driver.walk(url, HR_STORAGE_DESCR)
        getnext_requests = network.stats.requests
        network.stats.reset()
        driver.bulk_walk(url, HR_STORAGE_DESCR, max_repetitions=16)
        bulk_requests = network.stats.requests
        assert bulk_requests < getnext_requests

    def test_bulk_respects_repetition_chunking(self, network, agent, driver, url):
        """With max_repetitions=1 the bulk walk degenerates to GETNEXT."""
        from repro.agents.snmp import HR_STORAGE_DESCR

        entries = driver.bulk_walk(url, HR_STORAGE_DESCR, max_repetitions=1)
        assert [s for s, _ in entries] == [
            (i + 1,) for i in range(len(entries))
        ]

    def test_bulk_empty_subtree(self, network, agent, driver, url):
        assert driver.bulk_walk(url, (1, 3, 9, 9, 9)) == []

    def test_bad_repetitions_rejected(self, network, agent, driver, url):
        from repro.dbapi.exceptions import SQLException

        with pytest.raises(SQLException):
            driver.bulk_walk(url, (1, 3), max_repetitions=0)

    def test_agent_getbulk_pdu_direct(self, network, agent):
        """The agent answers a raw GETBULK with successive varbinds."""
        from repro.agents import snmp as S

        msg = S.SnmpMessage(
            1, "public", S.TAG_GETBULK, 5, 0, 3, (S.VarBind((1, 3)),)
        )
        resp = S.SnmpMessage.decode(
            network.request("gateway", agent.address, msg.encode())
        )
        assert resp.error_status == S.ERR_NONE
        assert len(resp.varbinds) == 3
        oids = [vb.oid for vb in resp.varbinds]
        assert oids == sorted(oids)


class TestCommunityAuth:
    def test_wrong_community_fails_connect(self, network, host):
        SnmpAgent(host, network, community="secret", port=1161)
        driver = SnmpDriver(network, gateway_host="gateway")
        from repro.dbapi.exceptions import SQLConnectionException

        with pytest.raises(SQLConnectionException):
            driver.connect("jdbc:snmp://n0:1161/x?community=public")

    def test_correct_community_from_url_params(self, network, host):
        SnmpAgent(host, network, community="secret", port=1161)
        driver = SnmpDriver(network, gateway_host="gateway")
        conn = driver.connect("jdbc:snmp://n0:1161/x?community=secret")
        assert query(conn, "SELECT HostName FROM Host").to_dicts()[0]["HostName"] == "n0"
