"""Cross-feature tests: compositions of independently tested subsystems.

Each test exercises a pair of features that could plausibly interact
badly: remote routing x multi-group joins, alerts x multi-group SQL,
archiver x alert hysteresis, servlet x remote URLs, history x joins x
roll-ups.
"""

import pytest

from repro.core.alerts import AlertRule
from repro.core.request_manager import QueryMode
from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def fabric():
    clock = VirtualClock()
    network = Network(clock, seed=121)
    a = build_site(network, name="xa", n_hosts=2, agents=("snmp", "ganglia"), seed=1)
    b = build_site(network, name="xb", n_hosts=2, agents=("snmp", "ganglia"), seed=2)
    clock.advance(20.0)
    directory = GMADirectory(network)
    gla = GlobalLayer(a.gateway, directory)
    glb = GlobalLayer(b.gateway, directory)
    return network, a, b, gla, glb


class TestRemoteJoins:
    def test_multi_group_join_through_global_layer(self, fabric):
        """A join query on a remote site's URL: the remote gateway runs
        the join, the local gateway just forwards."""
        network, a, b, *_ = fabric
        url = b.url_for("ganglia")
        result = a.gateway.query(
            url,
            "SELECT HostName, CPUCount, RAMSizeMB FROM Processor, MainMemory "
            "ORDER BY HostName",
            mode=QueryMode.REALTIME,
        )
        assert len(result.rows) == 2
        for row in result.dicts():
            assert row["CPUCount"] is not None and row["RAMSizeMB"] is not None

    def test_join_mixing_local_and_remote_sources(self, fabric):
        """One join over sources from two sites: each group sub-query
        fans out, remote legs route via GMA, and the join still keys
        rows correctly by HostName."""
        network, a, b, *_ = fabric
        urls = [a.url_for("ganglia"), b.url_for("ganglia")]
        result = a.gateway.query(
            urls,
            "SELECT HostName, SiteName, LoadAverage1Min, RAMAvailableMB "
            "FROM Processor, MainMemory",
            mode=QueryMode.REALTIME,
        )
        sites = {r["SiteName"] for r in result.dicts()}
        assert sites == {"xa", "xb"}
        assert len(result.rows) == 4  # 2 hosts per site, joined 1:1


class TestAlertsOnJoins:
    def test_alert_rule_with_multi_group_predicate(self, fabric):
        """Threshold rules can span groups: memory pressure relative to
        load needs Processor AND MainMemory."""
        network, a, *_ = fabric
        got = []
        a.gateway.events.register_listener(got.append, name_prefix="alert.")
        a.gateway.alerts.add_rule(
            AlertRule(
                name="mem-per-load",
                urls=[a.url_for("ganglia")],
                sql="SELECT HostName, RAMAvailableMB, LoadAverage1Min "
                    "FROM Processor, MainMemory "
                    "WHERE RAMAvailableMB >= 0 AND LoadAverage1Min >= 0",
                period=15.0,
                use_cache=False,
                rearm_after=0.0,
            )
        )
        network.clock.advance(16.0)
        assert len(got) == 2  # both hosts match the always-true predicate
        assert "RAMAvailableMB" in got[0].fields


class TestServletRemote:
    def test_servlet_query_routes_remote_urls(self, fabric):
        """A dashboard hitting gateway A's servlet can name a site-b URL."""
        from repro.web.servlet import GatewayServlet, http_get

        network, a, b, *_ = fabric
        servlet = GatewayServlet(a.gateway, port=8085)
        url = b.url_for("snmp").replace(":", "%3A").replace("/", "%2F")
        code, body = http_get(
            network,
            a.host_names()[0],
            servlet.address,
            f"/query?url={url}&sql=SELECT%20HostName,%20SiteName%20FROM%20Host",
        )
        assert code == 200
        assert "xb" in body


class TestHistoryJoinRollup:
    def test_rollup_over_history_fed_by_joined_polls(self, fabric):
        network, a, *_ = fabric
        gw = a.gateway
        for _ in range(6):
            gw.query(a.url_for("ganglia"), "SELECT * FROM Processor")
            network.clock.advance(10.0)
        rolled = gw.history.rollup(
            "Processor", "LoadAverage1Min", bucket=30.0
        )
        # 6 polls x 2 hosts = 12 samples, distributed over the buckets.
        assert sum(b["n"] for b in rolled) == 12
        assert all(b["min"] <= b["avg"] <= b["max"] for b in rolled)


class TestNaturalJoinLaws:
    from hypothesis import given, strategies as st

    rel = st.lists(
        st.fixed_dictionaries(
            {"k": st.integers(0, 3), "v": st.integers(0, 9)}
        ),
        max_size=6,
    )

    @given(left=rel, right=rel)
    def test_join_size_bounds(self, left, right):
        """|A join B| <= |A| * |B| and every output row's key appears in
        both inputs."""
        from repro.sql.executor import natural_join

        right_renamed = [{"k": r["k"], "w": r["v"]} for r in right]
        columns, rows = natural_join(
            [(["k", "v"], left), (["k", "w"], right_renamed)]
        )
        assert len(rows) <= len(left) * len(right)
        left_keys = {r["k"] for r in left}
        right_keys = {r["k"] for r in right}
        for row in rows:
            assert row["k"] in left_keys and row["k"] in right_keys

    @given(left=rel)
    def test_join_with_self_keys(self, left):
        """Joining a keyed relation with its own key projection preserves
        the rows (key multiplicity permitting)."""
        from repro.sql.executor import natural_join

        keys = [{"k": r["k"]} for r in {r["k"]: r for r in left}.values()]
        columns, rows = natural_join([(["k", "v"], left), (["k"], keys)])
        assert sorted((r["k"], r["v"]) for r in rows) == sorted(
            (r["k"], r["v"]) for r in left
        )
