"""Unit tests for the multi-gateway event archiver."""

import pytest

from repro.core.alerts import AlertRule
from repro.gma.archiver import EventArchiver
from repro.gma.subscription import EventPublisher
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def fabric():
    clock = VirtualClock()
    network = Network(clock, seed=81)
    a = build_site(
        network, name="arc-a", n_hosts=2, agents=("snmp",), seed=1,
        snmp_trap_threshold=0.0,
    )
    b = build_site(
        network, name="arc-b", n_hosts=2, agents=("snmp",), seed=2,
        snmp_trap_threshold=0.0,
    )
    pa = EventPublisher(a.gateway)
    pb = EventPublisher(b.gateway)
    archiver = EventArchiver(network, "archive-box")
    return network, a, b, pa, pb, archiver


class TestArchiving:
    def test_records_events_from_multiple_gateways(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa)
        archiver.follow(pb)
        network.clock.advance(120.0)
        assert archiver.event_count() > 0
        hosts = {r[0] for r in archiver.query("SELECT source_host FROM events").rows}
        assert any(h.startswith("arc-a") for h in hosts)
        assert any(h.startswith("arc-b") for h in hosts)

    def test_sql_over_archive(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa)
        network.clock.advance(120.0)
        result = archiver.query(
            "SELECT name, COUNT(*) FROM events GROUP BY name"
        )
        assert result.rows and result.rows[0][0] == "load.high"

    def test_name_prefix_filter(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, name_prefix="never.")
        network.clock.advance(120.0)
        assert archiver.event_count() == 0

    def test_ring_bound(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.max_rows = 10
        archiver.follow(pa)
        archiver.follow(pb)
        network.clock.advance(300.0)
        assert archiver.event_count() == 10

    def test_reports(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa)
        archiver.follow(pb)
        network.clock.advance(120.0)
        noisy = archiver.noisiest_hosts(3)
        assert noisy and noisy[0][1] >= noisy[-1][1]
        breakdown = archiver.severity_breakdown()
        assert breakdown.get("warning", 0) > 0


class TestLeaseManagement:
    def test_renewal_keeps_feed_alive_past_lease(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, lease=60.0)
        network.clock.advance(200.0)  # > 3 lease periods
        n = archiver.event_count()
        assert n > 0
        assert archiver.stats["renewals"] >= 2
        network.clock.advance(60.0)
        assert archiver.event_count() > n  # still flowing

    def test_stop_unsubscribes(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa)
        network.clock.advance(60.0)
        n = archiver.event_count()
        archiver.stop()
        assert pa.subscriber_count() == 0
        network.clock.advance(120.0)
        assert archiver.event_count() == n

    def test_renewal_survives_publisher_outage(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, lease=60.0)
        network.set_host_up(a.gateway.host, False)
        network.clock.advance(100.0)
        assert archiver.stats["renewal_failures"] >= 1
        network.set_host_up(a.gateway.host, True)
        # Renewals resume once the publisher is back (subscription may
        # have lease-expired server-side; the archiver keeps trying).
        network.clock.advance(100.0)


class TestWithAlertRules:
    def test_alert_events_archived_across_wan(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, name_prefix="alert.")
        a.gateway.alerts.add_rule(
            AlertRule(
                name="always",
                urls=[a.url_for("snmp")],
                sql="SELECT HostName FROM Processor WHERE CPUCount >= 1",
                period=20.0,
                rearm_after=0.0,
                use_cache=False,
            )
        )
        network.clock.advance(60.0)
        result = archiver.query(
            "SELECT COUNT(*) FROM events WHERE name = 'alert.always'"
        )
        assert result.rows[0][0] >= 2


class TestLeaseRecovery:
    """Regressions for the renewal machinery fixed alongside the
    streaming plane: resubscribe-on-missing and timer tightening."""

    def test_resubscribes_when_publisher_forgot_the_lease(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        sid = archiver.follow(pa, lease=60.0)
        network.clock.advance(10.0)
        # Simulate a lapse beyond the tombstone grace: the publisher
        # dropped the subscription while the archiver still holds it.
        pa._subs.pop(sid)
        archiver._renew_all()
        assert archiver.stats["resubscribes"] == 1
        new_sid = archiver._feeds[0].subscription_id
        assert new_sid != sid
        assert pa.subscriber_count() == 1
        # The recovered feed archives events again.
        n = archiver.event_count()
        network.clock.advance(120.0)
        assert archiver.event_count() > n

    def test_later_shorter_lease_tightens_renew_cadence(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, lease=600.0)
        assert archiver._renew_period == 300.0
        # A second feed with a much shorter lease must re-arm the timer
        # at half *its* lease, or it would expire between renewals.
        archiver.follow(pb, lease=60.0)
        assert archiver._renew_period == 30.0
        network.clock.advance(200.0)
        assert archiver.stats["renewals"] >= 2 * (200 // 30 - 1)
        assert pb.subscriber_count() == 1  # never lapsed

    def test_longer_lease_does_not_loosen_cadence(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, lease=60.0)
        archiver.follow(pb, lease=600.0)
        assert archiver._renew_period == 30.0

    def test_stop_resets_timer_state_for_reuse(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, lease=60.0)
        archiver.stop()
        assert archiver._renew_timer is None
        assert archiver._renew_period == 0.0
        # A fresh follow after stop() re-arms from scratch.
        archiver.follow(pb, lease=100.0)
        assert archiver._renew_period == 50.0
        archiver.stop()
