"""Unit tests for the multi-gateway event archiver."""

import pytest

from repro.core.alerts import AlertRule
from repro.gma.archiver import EventArchiver
from repro.gma.subscription import EventPublisher
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def fabric():
    clock = VirtualClock()
    network = Network(clock, seed=81)
    a = build_site(
        network, name="arc-a", n_hosts=2, agents=("snmp",), seed=1,
        snmp_trap_threshold=0.0,
    )
    b = build_site(
        network, name="arc-b", n_hosts=2, agents=("snmp",), seed=2,
        snmp_trap_threshold=0.0,
    )
    pa = EventPublisher(a.gateway)
    pb = EventPublisher(b.gateway)
    archiver = EventArchiver(network, "archive-box")
    return network, a, b, pa, pb, archiver


class TestArchiving:
    def test_records_events_from_multiple_gateways(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa)
        archiver.follow(pb)
        network.clock.advance(120.0)
        assert archiver.event_count() > 0
        hosts = {r[0] for r in archiver.query("SELECT source_host FROM events").rows}
        assert any(h.startswith("arc-a") for h in hosts)
        assert any(h.startswith("arc-b") for h in hosts)

    def test_sql_over_archive(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa)
        network.clock.advance(120.0)
        result = archiver.query(
            "SELECT name, COUNT(*) FROM events GROUP BY name"
        )
        assert result.rows and result.rows[0][0] == "load.high"

    def test_name_prefix_filter(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, name_prefix="never.")
        network.clock.advance(120.0)
        assert archiver.event_count() == 0

    def test_ring_bound(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.max_rows = 10
        archiver.follow(pa)
        archiver.follow(pb)
        network.clock.advance(300.0)
        assert archiver.event_count() == 10

    def test_reports(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa)
        archiver.follow(pb)
        network.clock.advance(120.0)
        noisy = archiver.noisiest_hosts(3)
        assert noisy and noisy[0][1] >= noisy[-1][1]
        breakdown = archiver.severity_breakdown()
        assert breakdown.get("warning", 0) > 0


class TestLeaseManagement:
    def test_renewal_keeps_feed_alive_past_lease(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, lease=60.0)
        network.clock.advance(200.0)  # > 3 lease periods
        n = archiver.event_count()
        assert n > 0
        assert archiver.stats["renewals"] >= 2
        network.clock.advance(60.0)
        assert archiver.event_count() > n  # still flowing

    def test_stop_unsubscribes(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa)
        network.clock.advance(60.0)
        n = archiver.event_count()
        archiver.stop()
        assert pa.subscriber_count() == 0
        network.clock.advance(120.0)
        assert archiver.event_count() == n

    def test_renewal_survives_publisher_outage(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, lease=60.0)
        network.set_host_up(a.gateway.host, False)
        network.clock.advance(100.0)
        assert archiver.stats["renewal_failures"] >= 1
        network.set_host_up(a.gateway.host, True)
        # Renewals resume once the publisher is back (subscription may
        # have lease-expired server-side; the archiver keeps trying).
        network.clock.advance(100.0)


class TestWithAlertRules:
    def test_alert_events_archived_across_wan(self, fabric):
        network, a, b, pa, pb, archiver = fabric
        archiver.follow(pa, name_prefix="alert.")
        a.gateway.alerts.add_rule(
            AlertRule(
                name="always",
                urls=[a.url_for("snmp")],
                sql="SELECT HostName FROM Processor WHERE CPUCount >= 1",
                period=20.0,
                rearm_after=0.0,
                use_cache=False,
            )
        )
        network.clock.advance(60.0)
        result = archiver.query(
            "SELECT COUNT(*) FROM events WHERE name = 'alert.always'"
        )
        assert result.rows[0][0] >= 2
