"""End-to-end integration tests across the whole stack."""

import pytest

from repro.core.request_manager import QueryMode
from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer
from repro.glue.schema import STANDARD_SCHEMA
from repro.glue.validation import validate_row
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site, build_testbed
from repro.web.console import Console


class TestHeterogeneousNormalisation:
    """The paper's core claim: heterogeneous agents, homogeneous view."""

    def test_same_query_works_on_every_processor_source(self, full_site):
        gw = full_site.gateway
        sql = "SELECT HostName, LoadAverage1Min, CPUCount FROM Processor"
        servers = ("snmp", "ganglia", "scms", "sql")
        for kind in servers:
            r = gw.query(full_site.url_for(kind), sql)
            assert r.ok_sources == 1, (kind, r.statuses)
            for row in r.dicts():
                assert isinstance(row["HostName"], str), kind
                assert isinstance(row["LoadAverage1Min"], float), kind

    def test_values_agree_across_agents(self, full_site):
        """SNMP, Ganglia and SCMS observe the SAME host model, so their
        normalised values must (nearly) agree — the homogeneous view is
        real, not cosmetic."""
        gw = full_site.gateway
        host = full_site.host_names()[0]
        sql = f"SELECT CPUCount, LoadAverage1Min FROM Processor WHERE HostName = '{host}'"
        values = {}
        for kind in ("snmp", "ganglia", "scms"):
            r = gw.query(full_site.url_for(kind), sql, mode=QueryMode.REALTIME)
            values[kind] = r.dicts()[0]
        counts = {v["CPUCount"] for v in values.values()}
        assert len(counts) == 1
        loads = [v["LoadAverage1Min"] for v in values.values()]
        assert max(loads) - min(loads) < 0.05  # rounding differences only

    def test_all_star_rows_validate_against_schema(self, full_site):
        gw = full_site.gateway
        for kind, group in [
            ("snmp", "Processor"),
            ("ganglia", "MainMemory"),
            ("scms", "OperatingSystem"),
            ("nws", "NetworkForecast"),
            ("netlogger", "LogEvent"),
            ("sql", "Job"),
        ]:
            r = gw.query(full_site.url_for(kind), f"SELECT * FROM {group}")
            assert r.ok_sources == 1, (kind, group, r.statuses)
            g = STANDARD_SCHEMA.group(group)
            for row in r.dicts():
                issues = validate_row(g, row)
                assert not issues, (kind, group, issues)


class TestPaperWorkflow:
    """The end-to-end story of paper §4: discover, poll, browse, plot."""

    def test_full_lifecycle(self):
        clock = VirtualClock()
        network = Network(clock, seed=77)
        site = build_site(network, name="life", n_hosts=4, agents=("snmp", "ganglia"), seed=7)
        clock.advance(30.0)
        gw = site.gateway
        console = Console(gw)

        # 1. The tree view starts unpolled.
        assert "never polled" in console.tree_view()
        # 2. A user polls the whole site.
        console.poll_all("SELECT * FROM Processor")
        # 3. Another user's refresh sees cached data without agent traffic.
        network.stats.reset()
        tree = console.refresh()
        assert network.stats.requests == 0
        assert "cached: Processor" in tree
        # 4. History accumulates across polls for plotting.
        for _ in range(10):
            clock.advance(15.0)
            console.poll(site.url_for("ganglia"), "SELECT * FROM Processor")
        plot = console.plot("Processor", "LoadAverage1Min", host=site.host_names()[0])
        assert "*" in plot

    def test_trap_appears_as_alert_in_tree(self):
        clock = VirtualClock()
        network = Network(clock, seed=78)
        site = build_site(
            network,
            name="alerts",
            n_hosts=2,
            agents=("snmp",),
            seed=8,
            snmp_trap_threshold=0.0,  # every check fires
        )
        clock.advance(60.0)  # traps flow to the gateway's event manager
        gw = site.gateway
        assert gw.events.stats["translated"] > 0
        from repro.web.console import ICON_EVENT

        assert ICON_EVENT in Console(gw).tree_view()
        # And the events were recorded into history as LogEvents.
        r = gw.query(
            site.source_urls[0], "SELECT COUNT(*) FROM LogEvent", mode=QueryMode.HISTORY
        )


class TestMultiSite:
    def test_two_sites_full_remote_flow(self):
        network, sites = build_testbed(n_sites=3, n_hosts=2, agents=("snmp",), seed=5)
        network.clock.advance(20.0)
        directory = GMADirectory(network)
        layers = [GlobalLayer(s.gateway, directory) for s in sites]
        # Every gateway can see every site.
        for layer in layers:
            assert layer.known_sites() == [s.name for s in sites]
        # a queries c through the global layer.
        result = layers[0].query_remote(
            sites[2].name, "SELECT HostName FROM Host", mode="realtime"
        )
        assert {r["HostName"] for r in result.dicts()} == set(sites[2].host_names())

    def test_remote_cache_suppresses_repeat_wan_traffic(self):
        network, sites = build_testbed(n_sites=2, n_hosts=2, agents=("snmp",), seed=6)
        network.clock.advance(20.0)
        directory = GMADirectory(network)
        gla = GlobalLayer(sites[0].gateway, directory)
        GlobalLayer(sites[1].gateway, directory)
        sql = "SELECT HostName FROM Host"
        t0 = network.clock.now()
        gla.query_remote(sites[1].name, sql)
        cold = network.clock.now() - t0
        t1 = network.clock.now()
        gla.query_remote(sites[1].name, sql)
        warm = network.clock.now() - t1
        assert warm == 0.0 and cold > 0.0

    def test_partition_isolates_site_but_local_queries_work(self):
        network, sites = build_testbed(n_sites=2, n_hosts=2, agents=("snmp",), seed=7)
        network.clock.advance(20.0)
        directory = GMADirectory(network)
        gla = GlobalLayer(sites[0].gateway, directory)
        GlobalLayer(sites[1].gateway, directory)
        site_a_hosts = set(network.hosts(site=sites[0].name)) | {"gma-directory"}
        network.partition(site_a_hosts, set(network.hosts(site=sites[1].name)))
        # Local still fine.
        r = sites[0].gateway.query(sites[0].url_for("snmp"), "SELECT * FROM Host")
        assert r.ok_sources == 1
        # Remote realtime fails (cache may still answer, so disable it).
        from repro.gma.global_layer import RemoteQueryError

        gla.cache_remote = False
        with pytest.raises(RemoteQueryError):
            gla.query_remote(sites[1].name, "SELECT * FROM Host", mode="realtime")


class TestFailoverEndToEnd:
    def test_source_failure_and_recovery_visible_to_client(self):
        clock = VirtualClock()
        network = Network(clock, seed=91)
        site = build_site(network, name="flaky", n_hosts=2, agents=("snmp",), seed=9)
        clock.advance(10.0)
        gw = site.gateway
        url = site.url_for("snmp")
        host = site.host_names()[0]

        assert gw.query(url, "SELECT * FROM Host").ok_sources == 1
        network.set_host_up(host, False)
        r = gw.query(url, "SELECT * FROM Host")
        assert r.failed_sources == 1
        network.set_host_up(host, True)
        assert gw.query(url, "SELECT * FROM Host").ok_sources == 1

    def test_cached_answers_survive_agent_outage(self):
        clock = VirtualClock()
        network = Network(clock, seed=92)
        site = build_site(network, name="cacheout", n_hosts=1, agents=("snmp",), seed=2)
        clock.advance(10.0)
        gw = site.gateway
        url = site.url_for("snmp")
        gw.query(url, "SELECT * FROM Host")
        network.set_host_up(site.host_names()[0], False)
        r = gw.query(url, "SELECT * FROM Host", mode=QueryMode.CACHED_OK)
        assert r.ok_sources == 1 and r.statuses[0].from_cache
