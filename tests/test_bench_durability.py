"""E16 — Durability overhead: WAL-on vs WAL-off record throughput.

The durable history engine promises crash safety for the price of one
encoded frame + CRC per recorded batch and one fsync per group-commit
interval.  The claims to measure:

* **WAL overhead <= 2x**: recording through the WAL costs at most twice
  the pure in-memory path on the workload the gateway actually runs
  (per-source row batches, as a poll round produces);
* **recovery is fast**: rebuilding the engine from segments + WAL replay
  is linear in the recovered rows and takes milliseconds at history-ring
  scale.

Wall-clock timing lives here (tests/, not src/ — the GRM101 lint keeps
``time`` out of the simulation); each sample is a best-of-N minimum to
damp CI noise.  Numbers land in ``BENCH_durability.json`` at the repo
root so the ``crash-smoke`` CI job archives them run over run.
"""

import json
import pathlib
import time

from repro.core.history import HistoryStore
from repro.glue.schema import standard_schema
from repro.storage.engine import HistoryEngine
from repro.storage.simdisk import SimDisk

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_durability.json"

N_ROWS = 6000
BEST_OF = 5

_RESULTS: dict = {}


def _record(key: str, payload: dict) -> None:
    """Accumulate one section of BENCH_durability.json and (re)write it."""
    _RESULTS[key] = payload
    BENCH_JSON.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def proc_row(i: int) -> dict:
    return {
        "HostName": f"n{i % 8}",
        "SiteName": "s",
        "Timestamp": 1.0,
        "CPUCount": 2,
        "LoadAverage1Min": float(i),
        "LoadAverage5Min": 1.0,
        "LoadAverage15Min": 1.0,
        "CPUUtilization": 50.0,
        "CPUIdle": 50.0,
        "CPUUser": 35.0,
        "CPUSystem": 15.0,
    }


def _record_run(engine: HistoryEngine | None, batch: int) -> float:
    """Wall seconds to record N_ROWS rows in ``batch``-row calls."""
    store = HistoryStore(
        standard_schema(), max_rows_per_group=N_ROWS, engine=engine
    )
    batches = [
        [proc_row(i + j) for j in range(batch)] for i in range(0, N_ROWS, batch)
    ]
    t0 = time.perf_counter()
    for i, rows in enumerate(batches):
        store.record("Processor", rows, source_url="u", recorded_at=float(i))
    return time.perf_counter() - t0


def _best(thunk) -> float:
    return min(thunk() for _ in range(BEST_OF))


def test_e16_wal_overhead_within_budget():
    """Durable recording costs <= 2x in-memory on the poll workload."""
    _record_run(None, 1)  # warm caches before timing
    ratios = {}
    for batch in (1, 6):
        off = _best(lambda b=batch: _record_run(None, b))
        on = _best(
            lambda b=batch: _record_run(
                HistoryEngine(SimDisk(), sync_interval=8, max_rows_per_group=N_ROWS),
                b,
            )
        )
        ratios[batch] = {
            "wal_off_s": off,
            "wal_on_s": on,
            "ratio": on / off,
            "rows_per_s_wal_on": N_ROWS / on,
        }
    _record(
        "record_throughput",
        {
            "rows": N_ROWS,
            "fsync_interval": 8,
            "single_row_batches": ratios[1],
            "poll_batches_of_6": ratios[6],
            "wal_overhead_ratio": ratios[6]["ratio"],
        },
    )
    # The poll workload (a ganglia/scms source records one multi-row
    # batch per round) is the acceptance number; single-row batches pay
    # a frame per row and sit near the budget (~1.7-2.2x measured), so
    # they get a sanity bound loose enough for a loaded CI runner.
    assert ratios[6]["ratio"] <= 2.0, ratios
    assert ratios[1]["ratio"] <= 3.5, ratios


def test_e16_recovery_time_linear_and_fast():
    """Recovering the ring-size history takes milliseconds."""
    samples = {}
    for n in (1000, 4000):
        disk = SimDisk()
        engine = HistoryEngine(disk, sync_interval=8, max_rows_per_group=n)
        store = HistoryStore(standard_schema(), max_rows_per_group=n, engine=engine)
        for i in range(0, n, 6):
            store.record(
                "Processor",
                [proc_row(i + j) for j in range(6)],
                source_url="u",
                recorded_at=float(i),
            )
        store.checkpoint()  # half sealed...
        for i in range(n, n + n // 2, 6):
            store.record(
                "Processor",
                [proc_row(i + j) for j in range(6)],
                source_url="u",
                recorded_at=float(i),
            )
        store.sync()  # ...half live in the WAL
        disk.crash(None)

        t0 = time.perf_counter()
        recovered = HistoryEngine(disk, sync_interval=8, max_rows_per_group=n)
        elapsed = time.perf_counter() - t0
        rows = sum(len(recovered.serving_rows(g)) for g in recovered.groups())
        assert rows == n  # ring-bounded, nothing acked lost
        samples[n] = {"recovery_s": elapsed, "rows": rows, "rows_per_s": rows / elapsed}
    _record("recovery_time", samples)
    # Fast in absolute terms at ring scale (generous CI bound).
    assert samples[4000]["recovery_s"] < 2.0, samples
