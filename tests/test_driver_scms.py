"""Unit tests for the JDBC-SCMS driver."""

import pytest

from repro.agents.scms import ScmsAgent
from repro.drivers.scms_driver import ScmsDriver


@pytest.fixture
def agent(network, hosts):
    a = ScmsAgent("cl", hosts, network)
    network.clock.advance(120.0)
    return a


@pytest.fixture
def conn(network, agent, hosts):
    return ScmsDriver(network, gateway_host="gateway").connect(
        f"jdbc:scms://{hosts[0].spec.name}/cl"
    )


def query(conn, sql):
    return conn.create_statement().execute_query(sql)


class TestNodeGroups:
    def test_processor_rows_for_every_node(self, conn, hosts):
        rows = query(conn, "SELECT HostName, CPUCount FROM Processor").to_dicts()
        assert {r["HostName"] for r in rows} == {h.spec.name for h in hosts}
        by_host = {r["HostName"]: r for r in rows}
        for h in hosts:
            assert by_host[h.spec.name]["CPUCount"] == h.spec.cpu_count

    def test_clock_speed_available_unlike_snmp(self, conn, hosts):
        rows = query(conn, "SELECT HostName, ClockSpeedMHz FROM Processor").to_dicts()
        by_host = {r["HostName"]: r for r in rows}
        h = hosts[0]
        assert by_host[h.spec.name]["ClockSpeedMHz"] == pytest.approx(
            h.spec.clock_mhz, abs=1.0
        )

    def test_memory_values(self, conn, hosts):
        rows = query(conn, "SELECT HostName, RAMSizeMB FROM MainMemory").to_dicts()
        by_host = {r["HostName"]: r for r in rows}
        for h in hosts:
            assert by_host[h.spec.name]["RAMSizeMB"] == pytest.approx(
                h.spec.ram_mb, abs=1.0
            )

    def test_os_group(self, conn, hosts):
        rows = query(conn, "SELECT HostName, Name FROM OperatingSystem").to_dicts()
        by_host = {r["HostName"]: r for r in rows}
        assert by_host[hosts[0].spec.name]["Name"] == hosts[0].spec.os_name

    def test_host_group_reachable(self, conn):
        rows = query(conn, "SELECT Reachable FROM Host").to_dicts()
        assert all(r["Reachable"] is True for r in rows)

    def test_utilization_derived(self, conn):
        rows = query(conn, "SELECT CPUIdle, CPUUtilization FROM Processor").to_dicts()
        for r in rows:
            assert r["CPUUtilization"] == pytest.approx(100.0 - r["CPUIdle"], abs=0.01)


class TestJobGroup:
    def test_jobs_have_glue_fields(self, conn):
        rows = query(conn, "SELECT * FROM Job").to_dicts()
        for r in rows:
            assert r["JobId"].startswith("s")
            assert r["State"] in ("running", "queued", "held")
            assert isinstance(r["NodeCount"], int)

    def test_aggregation_over_jobs(self, conn):
        rows = query(
            conn, "SELECT State, COUNT(*) n FROM Job GROUP BY State"
        ).to_dicts()
        assert all(r["n"] >= 1 for r in rows)

    def test_where_on_queue(self, conn):
        rows = query(conn, "SELECT Queue FROM Job WHERE Queue = 'batch'").to_dicts()
        assert all(r["Queue"] == "batch" for r in rows)
