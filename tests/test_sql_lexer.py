"""Unit tests for the SQL lexer."""

import pytest

from repro.sql.errors import SqlParseError
from repro.sql.lexer import Lexer, TokenType


def toks(text):
    return [(t.type, t.value) for t in Lexer(text).tokens()[:-1]]  # drop EOF


class TestKeywordsAndIdents:
    def test_keywords_case_insensitive(self):
        assert toks("select")[0] == (TokenType.KEYWORD, "SELECT")
        assert toks("SeLeCt")[0] == (TokenType.KEYWORD, "SELECT")

    def test_identifiers_preserve_case(self):
        assert toks("LoadAverage1Min")[0] == (TokenType.IDENT, "LoadAverage1Min")

    def test_underscore_identifiers(self):
        assert toks("_host")[0] == (TokenType.IDENT, "_host")

    def test_keyword_prefix_is_ident(self):
        # "selection" starts with "select" but is one identifier.
        assert toks("selection") == [(TokenType.IDENT, "selection")]


class TestNumbers:
    def test_integer(self):
        assert toks("42") == [(TokenType.NUMBER, "42")]

    def test_float(self):
        assert toks("3.14") == [(TokenType.NUMBER, "3.14")]

    def test_leading_dot_float(self):
        assert toks(".5") == [(TokenType.NUMBER, ".5")]

    def test_exponent(self):
        assert toks("1e-3") == [(TokenType.NUMBER, "1e-3")]

    def test_exponent_without_digits_not_consumed(self):
        # "1e" is number 1 followed by identifier e.
        assert toks("1e") == [(TokenType.NUMBER, "1"), (TokenType.IDENT, "e")]


class TestStrings:
    def test_single_quoted(self):
        assert toks("'abc'") == [(TokenType.STRING, "abc")]

    def test_double_quoted(self):
        assert toks('"abc"') == [(TokenType.STRING, "abc")]

    def test_escaped_quote_doubling(self):
        assert toks("'it''s'") == [(TokenType.STRING, "it's")]

    def test_empty_string(self):
        assert toks("''") == [(TokenType.STRING, "")]

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlParseError):
            toks("'oops")


class TestOperators:
    @pytest.mark.parametrize("op", ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%"])
    def test_each_operator(self, op):
        assert toks(op) == [(TokenType.OPERATOR, op)]

    def test_two_char_operators_not_split(self):
        assert toks("a<=b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OPERATOR, "<="),
            (TokenType.IDENT, "b"),
        ]

    def test_punct(self):
        assert toks("(a, b);") == [
            (TokenType.PUNCT, "("),
            (TokenType.IDENT, "a"),
            (TokenType.PUNCT, ","),
            (TokenType.IDENT, "b"),
            (TokenType.PUNCT, ")"),
            (TokenType.PUNCT, ";"),
        ]

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(SqlParseError) as err:
            toks("a @ b")
        assert err.value.position == 2


class TestWhole:
    def test_full_query(self):
        values = [v for _, v in toks("SELECT * FROM Processor WHERE LoadAverage1Min > 1.5")]
        assert values == ["SELECT", "*", "FROM", "Processor", "WHERE", "LoadAverage1Min", ">", "1.5"]

    def test_whitespace_insensitive(self):
        assert toks("a   \n\t b") == [(TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_eof_token_terminates(self):
        all_toks = Lexer("a").tokens()
        assert all_toks[-1].type is TokenType.EOF
