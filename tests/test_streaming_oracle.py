"""Differential oracle for the streaming plane.

The continuous-query path must be *semantically invisible*: the tuples a
subscription delivers on each publish have to be byte-identical to what
a client would get by polling the same SQL against that publish's rows.
The two sides deliberately share no execution code —

* the **streaming side** compiles once through the
  :class:`~repro.core.plans.PlanCache` and evaluates the bound slot plan
  (:mod:`repro.sql.plan`) at the hub on every publish;
* the **oracle side** re-parses and interprets the same SQL with
  :func:`repro.sql.executor.execute_select` over mapping rows —

so any divergence in predicate semantics, projection order, NULL
handling, aggregation, dedup or LIMIT clipping between the compiled and
interpreted engines surfaces as a byte-level mismatch here.

Each seeded case draws a random query (projection / predicate /
aggregate / ORDER BY / DISTINCT / LIMIT mix), a random publish schedule
(row counts, values, NULL injection, shuffled column order), runs both
sides on the virtual clock, and compares ``repr`` of (columns, rows)
per publish — including the no-rows case, where the hub must deliver
nothing at all.  A second check per case registers a ``latest``-flavour
subscription after the schedule and holds its attach replay to the same
oracle over each source's final publish.

Case budget: ``len(SEEDS) * CASES_PER_SEED`` >= 200, enforced by
``test_case_budget``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.plans import PlanCache
from repro.core.policy import GatewayPolicy
from repro.glue.schema import GlueField, GlueGroup, GlueSchema
from repro.gma.streams import StreamConsumer, StreamHub
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.sql.executor import execute_select
from repro.sql.parser import parse_select

SEEDS = range(10)
CASES_PER_SEED = 20

PROBE = GlueGroup(
    name="Probe",
    fields=(
        GlueField("HostName", "TEXT"),
        GlueField("SiteName", "TEXT"),
        GlueField("Load", "REAL"),
        GlueField("Temp", "REAL"),
        GlueField("Slot", "INTEGER"),
    ),
    description="synthetic oracle group",
)

COLUMNS = [f.name for f in PROBE.fields]


def _fresh():
    """One isolated hub + consumer on a fresh virtual network."""
    clock = VirtualClock()
    network = Network(clock, seed=0)
    network.add_host("hub-host", site="oracle")
    schema = GlueSchema("oracle-1", groups=(PROBE,))
    hub = StreamHub(
        network,
        "hub-host",
        plans=PlanCache(schema),
        schema=schema,
        policy=GatewayPolicy(),
    )
    consumer = StreamConsumer(network, "oracle-client")
    return clock, network, hub, consumer


# ----------------------------------------------------------------------
# Seeded query / schedule generators
# ----------------------------------------------------------------------
def _gen_where(rng: random.Random) -> str:
    clauses = [
        "",
        f" WHERE Load > {rng.randint(0, 100) / 10}",
        f" WHERE Slot <= {rng.randint(0, 8)}",
        f" WHERE HostName = 'n{rng.randrange(4)}'",
        f" WHERE Temp < {rng.randint(200, 400) / 10} AND Slot > {rng.randrange(4)}",
        f" WHERE SiteName = 'site-{rng.randrange(2)}' "
        f"OR Load >= {rng.randint(0, 80) / 10}",
        f" WHERE Load IS NOT NULL AND Load < {rng.randint(10, 90) / 10}",
    ]
    return rng.choice(clauses)


def _gen_sql(rng: random.Random) -> str:
    where = _gen_where(rng)
    shape = rng.randrange(8)
    if shape == 0:
        return f"SELECT * FROM Probe{where}"
    if shape in (1, 2):
        cols = rng.sample(COLUMNS, rng.randint(1, len(COLUMNS)))
        return f"SELECT {', '.join(cols)} FROM Probe{where}"
    if shape == 3:
        return (
            "SELECT HostName, Load * 2 AS DoubleLoad, Slot + 1 AS NextSlot "
            f"FROM Probe{where}"
        )
    if shape == 4:
        return (
            "SELECT COUNT(*) AS N, AVG(Load) AS MeanLoad, MAX(Temp) AS Hot "
            f"FROM Probe{where}"
        )
    if shape == 5:
        return (
            "SELECT SiteName, COUNT(*) AS N, MIN(Slot) AS FirstSlot "
            f"FROM Probe{where} GROUP BY SiteName ORDER BY SiteName"
        )
    if shape == 6:
        return (
            f"SELECT HostName, Load FROM Probe{where} "
            f"ORDER BY Load DESC, HostName ASC LIMIT {rng.randint(1, 5)}"
        )
    return f"SELECT DISTINCT SiteName, Slot FROM Probe{where} ORDER BY Slot, SiteName"


def _gen_publish(rng: random.Random) -> tuple[list[str], list[list[object]]]:
    """One publish: shuffled column order, 1-6 rows, ~10% NULL injection."""
    columns = list(COLUMNS)
    rng.shuffle(columns)
    rows = []
    for _ in range(rng.randint(1, 6)):
        values = {
            "HostName": f"n{rng.randrange(4)}",
            "SiteName": f"site-{rng.randrange(2)}",
            "Load": round(rng.uniform(0.0, 10.0), 2),
            "Temp": round(rng.uniform(15.0, 45.0), 1),
            "Slot": rng.randrange(8),
        }
        if rng.random() < 0.1:
            values[rng.choice(("Load", "Temp"))] = None
        rows.append([values[c] for c in columns])
    return columns, rows


def _oracle(sql: str, columns: list[str], rows: list[list[object]]):
    """The interpreted side: re-parse, execute over mapping rows."""
    stmt = parse_select(sql)
    return execute_select(stmt, columns, [dict(zip(columns, r)) for r in rows])


# ----------------------------------------------------------------------
# The oracle proper
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_streaming_matches_polling_oracle(seed: int) -> None:
    rng = random.Random(0xC0FFEE + seed)
    for case in range(CASES_PER_SEED):
        sql = _gen_sql(rng)
        clock, network, hub, consumer = _fresh()
        cq = consumer.register(hub.address, sql, flavour="stream", lease=1e6)
        clock.advance(1.0)

        sources = (f"probe://case/src0", f"probe://case/src1")
        final_publish: dict[str, tuple[list[str], list[list[object]]]] = {}
        for step in range(rng.randint(3, 8)):
            columns, rows = _gen_publish(rng)
            source = sources[step % len(sources)]
            final_publish[source] = (columns, rows)
            before = len(consumer.delivered.get(cq, []))
            hub.publish("Probe", columns, rows, source_url=source)
            clock.advance(1.0)
            delivered = consumer.delivered.get(cq, [])[before:]

            expected = _oracle(sql, columns, rows)
            if not expected.rows:
                # An empty result must push nothing at all.
                assert delivered == [], (
                    f"seed={seed} case={case} sql={sql!r}: hub pushed "
                    f"{delivered!r} where polling returns no rows"
                )
                continue
            assert len(delivered) == 1, (
                f"seed={seed} case={case} sql={sql!r}: expected one batch, "
                f"got {len(delivered)}"
            )
            batch = delivered[0]
            assert batch["source_url"] == source
            assert not batch["replay"]
            got = repr((batch["columns"], batch["rows"]))
            want = repr((list(expected.columns), list(expected.rows)))
            assert got == want, (
                f"seed={seed} case={case} sql={sql!r}: streamed {got} != "
                f"polled {want} for publish {columns!r} {rows!r}"
            )

        # Attach replay (latest flavour): must equal polling each
        # source's final publish, sources in sorted order, empties
        # skipped — the same query, answered from retained state.
        replay_cq = consumer.register(
            hub.address, sql, flavour="latest", lease=1e6
        )
        clock.advance(1.0)
        replayed = consumer.delivered.get(replay_cq, [])
        expected_replay = []
        for source in sorted(final_publish):
            columns, rows = final_publish[source]
            result = _oracle(sql, columns, rows)
            if result.rows:
                expected_replay.append(
                    (source, list(result.columns), list(result.rows))
                )
        # Datagram delivery order across sources is not guaranteed (each
        # send draws its own delay); every batch carries its source_url
        # provenance, so compare per-source.
        got_replay = sorted(
            (b["source_url"], b["columns"], b["rows"]) for b in replayed
        )
        assert all(b["replay"] for b in replayed)
        assert repr(got_replay) == repr(expected_replay), (
            f"seed={seed} case={case} sql={sql!r}: latest replay diverged "
            f"from polling the final publishes"
        )
        hub.close()


def test_case_budget() -> None:
    """The differential oracle covers at least 200 query x schedule cases."""
    assert len(SEEDS) * CASES_PER_SEED >= 200
