"""Unit tests for ListResultSet and its metadata."""

import pytest

from repro.dbapi.exceptions import SQLDataException, SQLException
from repro.dbapi.resultset import ListResultSet, ListResultSetMetaData


@pytest.fixture
def rs():
    return ListResultSet(
        ["host", "load", "cpus", "up"],
        [["a", 0.5, 4, True], ["b", None, 8, False]],
        ["TEXT", "REAL", "INTEGER", "BOOLEAN"],
    )


class TestCursor:
    def test_starts_before_first_row(self, rs):
        with pytest.raises(SQLException):
            rs.get("host")

    def test_next_walks_rows(self, rs):
        assert rs.next() and rs.get("host") == "a"
        assert rs.next() and rs.get("host") == "b"
        assert not rs.next()

    def test_next_after_end_stays_false(self, rs):
        while rs.next():
            pass
        assert not rs.next()

    def test_get_by_index_is_one_based(self, rs):
        rs.next()
        assert rs.get(1) == "a"
        assert rs.get(2) == 0.5

    def test_index_out_of_range(self, rs):
        rs.next()
        with pytest.raises(SQLException):
            rs.get(5)
        with pytest.raises(SQLException):
            rs.get(0)

    def test_unknown_column_name(self, rs):
        rs.next()
        with pytest.raises(SQLException):
            rs.get("nope")

    def test_case_insensitive_name(self, rs):
        rs.next()
        assert rs.get("HOST") == "a"

    def test_closed_rejects_access(self, rs):
        rs.close()
        with pytest.raises(SQLException):
            rs.next()

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(SQLException):
            ListResultSet(["a", "b"], [[1]])


class TestTypedGetters:
    def test_get_string_converts(self, rs):
        rs.next()
        assert rs.get_string("load") == "0.5"

    def test_get_int_from_float(self, rs):
        rs.next()
        assert rs.get_int("load") == 0

    def test_get_int_from_numeric_string(self):
        rs = ListResultSet(["x"], [["42.7"]])
        rs.next()
        assert rs.get_int("x") == 42

    def test_get_int_garbage_raises(self):
        rs = ListResultSet(["x"], [["nope"]])
        rs.next()
        with pytest.raises(SQLDataException):
            rs.get_int("x")

    def test_get_float(self, rs):
        rs.next()
        assert rs.get_float("cpus") == 4.0

    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("Yes", True), ("1", True), ("on", True),
        ("false", False), ("no", False), ("0", False), ("off", False),
    ])
    def test_get_bool_strings(self, raw, expected):
        rs = ListResultSet(["x"], [[raw]])
        rs.next()
        assert rs.get_bool("x") is expected

    def test_get_bool_garbage_raises(self):
        rs = ListResultSet(["x"], [["maybe"]])
        rs.next()
        with pytest.raises(SQLDataException):
            rs.get_bool("x")

    def test_null_propagates_through_getters(self, rs):
        rs.next(); rs.next()
        assert rs.get_float("load") is None
        assert rs.get_string("load") is None

    def test_was_null(self, rs):
        rs.next(); rs.next()
        rs.get("load")
        assert rs.was_null()
        rs.get("host")
        assert not rs.was_null()


class TestMetadata:
    def test_column_count(self, rs):
        assert rs.metadata().column_count() == 4

    def test_column_name_one_based(self, rs):
        assert rs.metadata().column_name(1) == "host"

    def test_column_type(self, rs):
        assert rs.metadata().column_type(2) == "REAL"

    def test_column_index(self, rs):
        assert rs.metadata().column_index("cpus") == 3

    def test_types_default_to_text(self):
        md = ListResultSetMetaData(["a"])
        assert md.column_type(1) == "TEXT"

    def test_types_length_mismatch_rejected(self):
        with pytest.raises(SQLException):
            ListResultSetMetaData(["a", "b"], ["TEXT"])


class TestPythonic:
    def test_iteration_yields_dicts(self, rs):
        rows = list(rs)
        assert rows[0]["host"] == "a"
        assert len(rows) == 2

    def test_to_dicts_does_not_advance(self, rs):
        rs.to_dicts()
        assert rs.next()  # cursor untouched

    def test_raw_rows_copies(self, rs):
        raw = rs.raw_rows()
        raw[0][0] = "mutated"
        assert rs.to_dicts()[0]["host"] == "a"

    def test_len(self, rs):
        assert len(rs) == 2
