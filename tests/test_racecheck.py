"""The dual-run divergence harness and its CLI."""

import pytest

from repro.racecheck import (
    RacecheckReport,
    _bisect_streams,
    _Capture,
    _first_diff_line,
    run_racecheck,
)

# One shared small run: the harness builds four gateways (2 runs x the
# dual capture), so tests that only inspect the report reuse this.
_REPORT = None


def small_report():
    global _REPORT
    if _REPORT is None:
        _REPORT = run_racecheck(seed=0, rounds=6, warmup_rounds=5)
    return _REPORT


class TestHarness:
    def test_standard_scenario_is_clean(self):
        report = small_report()
        assert report.race_findings == []
        assert report.divergence == []
        assert report.ok

    def test_all_three_streams_were_compared(self):
        report = small_report()
        assert report.rounds_compared == 6
        assert report.traces_compared > 0
        assert report.wal_frames_compared > 0

    def test_detector_actually_observed_accesses(self):
        assert small_report().race_accesses > 0

    def test_format_and_as_dict(self):
        report = small_report()
        text = report.format()
        assert "replay identity: OK" in text
        d = report.as_dict()
        assert d["ok"] is True
        assert d["seed"] == 0
        assert d["race_accesses"] == report.race_accesses


class TestBisection:
    def run(self, a, b):
        report = RacecheckReport(seed=0, rounds=len(a.round_digests))
        _bisect_streams(a, b, report)
        return report

    def test_identical_captures_have_no_divergence(self):
        a = _Capture(round_digests=["x", "y"], trace_renders=["t"], wal_frames=["f"])
        b = _Capture(round_digests=["x", "y"], trace_renders=["t"], wal_frames=["f"])
        assert self.run(a, b).divergence == []

    def test_first_diverging_round_named(self):
        a = _Capture(round_digests=["x", "y", "z"])
        b = _Capture(round_digests=["x", "Q", "R"])
        (d,) = self.run(a, b).divergence
        assert d.startswith("round 1:")

    def test_first_diverging_trace_line_named(self):
        a = _Capture(trace_renders=["same\nleft\nrest"])
        b = _Capture(trace_renders=["same\nright\nrest"])
        (d,) = self.run(a, b).divergence
        assert "trace 0 line 2" in d
        assert "'left'" in d and "'right'" in d

    def test_first_diverging_wal_frame_named(self):
        a = _Capture(wal_frames=["f0", "f1", "f2"])
        b = _Capture(wal_frames=["f0", "XX", "f2"])
        (d,) = self.run(a, b).divergence
        assert d.startswith("WAL frame 1:")

    def test_length_mismatches_reported(self):
        a = _Capture(trace_renders=["t"], wal_frames=["f", "g"])
        b = _Capture(trace_renders=["t", "u"], wal_frames=["f"])
        report = self.run(a, b)
        assert any("trace count differs" in d for d in report.divergence)
        assert any("WAL frame count differs" in d for d in report.divergence)

    def test_wal_tail_mismatch_reported(self):
        a = _Capture(wal_tail="clean")
        b = _Capture(wal_tail="torn")
        (d,) = self.run(a, b).divergence
        assert "tail" in d

    def test_divergent_report_is_not_ok(self):
        a = _Capture(round_digests=["x"])
        b = _Capture(round_digests=["y"])
        report = self.run(a, b)
        assert not report.ok
        assert "DIVERGENCE" in report.format()


class TestFirstDiffLine:
    def test_middle_line(self):
        assert _first_diff_line("a\nb\nc", "a\nB\nc") == (2, "b", "B")

    def test_trailing_extra_line(self):
        assert _first_diff_line("a", "a\nb") == (2, "<absent>", "b")


class TestCli:
    def test_racecheck_exits_zero_on_clean_run(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["racecheck", "--rounds", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay identity: OK" in out

    def test_seed_list_runs_each_seed(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["racecheck", "--seeds", "0,1", "--rounds", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed=0" in out and "seed=1" in out


class TestChaosIntegration:
    def test_chaos_race_detect_is_transparent(self):
        from repro.chaos import run_chaos

        plain = run_chaos(seed=3, rounds=6, warmup_rounds=5)
        detected = run_chaos(seed=3, rounds=6, warmup_rounds=5, race_detect=True)
        assert detected.race_findings == []
        assert detected.race_accesses > 0
        # Detection must not perturb the run: same replay signature.
        assert detected.signature == plain.signature
        assert plain.race_accesses == 0


class TestCrashtestIntegration:
    def test_crashtest_race_detect_is_transparent(self):
        from repro.crashtest import run_crashtest

        plain = run_crashtest(seed=1, cycles=2, rounds=3)
        detected = run_crashtest(seed=1, cycles=2, rounds=3, race_detect=True)
        assert detected.race_findings == []
        assert detected.race_accesses > 0
        assert detected.signature == plain.signature
        assert detected.ok
