"""Unit tests for the driver development kit."""

import pytest

from repro.dbapi.exceptions import (
    SQLConnectionException,
    SQLException,
    SQLSyntaxErrorException,
)
from repro.dbapi.url import JdbcUrl
from repro.drivers.base import GridRmDriver, ResponseCache
from repro.drivers.snmp_driver import SnmpDriver
from repro.agents.snmp import SnmpAgent
from repro.sql.parser import parse_select


@pytest.fixture
def driver(network):
    return SnmpDriver(network, gateway_host="gateway")


@pytest.fixture
def agent(network, host):
    return SnmpAgent(host, network)


class TestResponseCache:
    def test_miss_then_hit(self, network):
        cache = ResponseCache(network, ttl=10.0)
        calls = []
        fetch = lambda: calls.append(1) or "value"
        assert cache.get_or_fetch("k", fetch) == "value"
        assert cache.get_or_fetch("k", fetch) == "value"
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_expiry_refetches(self, network):
        cache = ResponseCache(network, ttl=5.0)
        calls = []
        cache.get_or_fetch("k", lambda: calls.append(1))
        network.clock.advance(6.0)
        cache.get_or_fetch("k", lambda: calls.append(1))
        assert len(calls) == 2

    def test_zero_ttl_never_caches(self, network):
        cache = ResponseCache(network, ttl=0.0)
        calls = []
        cache.get_or_fetch("k", lambda: calls.append(1))
        cache.get_or_fetch("k", lambda: calls.append(1))
        assert len(calls) == 2

    def test_negative_ttl_rejected(self, network):
        with pytest.raises(ValueError):
            ResponseCache(network, ttl=-1.0)

    def test_invalidate_specific_and_all(self, network):
        cache = ResponseCache(network, ttl=100.0)
        cache.get_or_fetch("a", lambda: 1)
        cache.get_or_fetch("b", lambda: 2)
        cache.invalidate("a")
        calls = []
        cache.get_or_fetch("a", lambda: calls.append(1))
        cache.get_or_fetch("b", lambda: calls.append(1))
        assert len(calls) == 1
        cache.invalidate()
        cache.get_or_fetch("b", lambda: calls.append(1))
        assert len(calls) == 2

    def test_hit_ratio(self, network):
        cache = ResponseCache(network, ttl=100.0)
        assert cache.hit_ratio == 0.0
        cache.get_or_fetch("k", lambda: 1)
        cache.get_or_fetch("k", lambda: 1)
        assert cache.hit_ratio == 0.5


class TestDriverContract:
    def test_protocol_required(self, network):
        class NoProto(GridRmDriver):
            pass

        with pytest.raises(SQLException):
            NoProto(network)

    def test_accepts_pinned_protocol_without_probe(self, driver):
        url = JdbcUrl.parse("jdbc:snmp://anywhere/x")
        assert driver.accepts_url(url)
        assert driver.stats["probes"] == 0

    def test_rejects_other_protocol(self, driver):
        assert not driver.accepts_url(JdbcUrl.parse("jdbc:nws://h/x"))

    def test_wildcard_probes(self, network, driver, agent):
        url = JdbcUrl.parse("jdbc://n0/x")
        assert driver.accepts_url(url)
        assert driver.stats["probes"] == 1

    def test_wildcard_probe_failure_means_no(self, network, driver):
        network.add_host("empty", site="default")
        assert not driver.accepts_url(JdbcUrl.parse("jdbc://empty/x"))

    def test_connect_wrong_protocol_rejected(self, driver):
        with pytest.raises(SQLConnectionException):
            driver.connect("jdbc:ganglia://n0/x")

    def test_connect_dead_agent_rejected(self, network, driver):
        network.add_host("dead", site="default")
        with pytest.raises(SQLConnectionException):
            driver.connect("jdbc:snmp://dead/x")

    def test_connect_unreachable_host_rejected(self, network, driver, agent):
        network.set_host_up("n0", False)
        with pytest.raises(SQLConnectionException):
            driver.connect("jdbc:snmp://n0/x")


class TestConnectionAndStatement:
    def test_connection_lifecycle(self, driver, agent):
        conn = driver.connect("jdbc:snmp://n0/x")
        assert not conn.is_closed()
        assert conn.is_valid()
        conn.close()
        assert conn.is_closed()
        assert not conn.is_valid()

    def test_statement_on_closed_connection_rejected(self, driver, agent):
        conn = driver.connect("jdbc:snmp://n0/x")
        conn.close()
        with pytest.raises(SQLConnectionException):
            conn.create_statement()

    def test_closed_statement_rejected(self, driver, agent):
        conn = driver.connect("jdbc:snmp://n0/x")
        stmt = conn.create_statement()
        stmt.close()
        with pytest.raises(SQLException):
            stmt.execute_query("SELECT * FROM Host")

    def test_syntax_error_wrapped(self, driver, agent):
        stmt = driver.connect("jdbc:snmp://n0/x").create_statement()
        with pytest.raises(SQLSyntaxErrorException):
            stmt.execute_query("SELEKT garbage")

    def test_unsupported_group_rejected(self, driver, agent):
        stmt = driver.connect("jdbc:snmp://n0/x").create_statement()
        with pytest.raises(SQLException) as err:
            stmt.execute_query("SELECT * FROM Job")
        assert "does not serve group" in str(err.value)

    def test_metadata(self, driver, agent):
        conn = driver.connect("jdbc:snmp://n0/x")
        md = conn.get_metadata()
        assert md.driver_name() == "JDBC-SNMP"
        assert "Processor" in md.get_tables()
        assert md.url().startswith("jdbc:snmp://n0")

    def test_query_timeout_validation(self, driver, agent):
        stmt = driver.connect("jdbc:snmp://n0/x").create_statement()
        with pytest.raises(SQLException):
            stmt.set_query_timeout(0)
        stmt.set_query_timeout(2.0)
        assert stmt.query_timeout == 2.0


class TestFieldsNeeded:
    FIELDS = ["HostName", "LoadAverage1Min", "CPUCount", "CPUIdle"]

    def test_star_needs_all(self, driver):
        sel = parse_select("SELECT * FROM Processor")
        assert driver.fields_needed(sel, self.FIELDS) == self.FIELDS

    def test_projection_only(self, driver):
        sel = parse_select("SELECT CPUCount FROM Processor")
        assert driver.fields_needed(sel, self.FIELDS) == ["CPUCount"]

    def test_where_and_order_included(self, driver):
        sel = parse_select(
            "SELECT HostName FROM Processor WHERE CPUIdle < 50 ORDER BY LoadAverage1Min"
        )
        assert driver.fields_needed(sel, self.FIELDS) == [
            "CPUIdle",
            "HostName",
            "LoadAverage1Min",
        ]

    def test_case_insensitive_normalisation(self, driver):
        sel = parse_select("SELECT cpucount FROM Processor")
        assert driver.fields_needed(sel, self.FIELDS) == ["CPUCount"]

    def test_unknown_columns_ignored(self, driver):
        sel = parse_select("SELECT Bogus FROM Processor")
        assert driver.fields_needed(sel, self.FIELDS) == []
