"""Unit tests for the threshold AlertMonitor (paper Figure 3)."""

import pytest

from repro.core.alerts import AlertRule
from repro.core.events import Event
from repro.testbed import build_site
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network


@pytest.fixture
def rig():
    clock = VirtualClock()
    network = Network(clock, seed=61)
    site = build_site(network, name="al", n_hosts=3, agents=("snmp",), seed=61)
    clock.advance(10.0)
    return network, site, site.gateway


def always_rule(urls, **kw):
    defaults = dict(
        name="load-any",
        urls=urls,
        sql="SELECT HostName, LoadAverage1Min FROM Processor WHERE LoadAverage1Min >= 0",
        period=10.0,
        rearm_after=0.0,
        use_cache=False,
    )
    defaults.update(kw)
    return AlertRule(**defaults)


def never_rule(urls, **kw):
    return always_rule(
        urls,
        name=kw.pop("name", "load-never"),
        sql="SELECT HostName FROM Processor WHERE LoadAverage1Min > 1e9",
        **kw,
    )


class TestRuleValidation:
    def test_bad_sql_rejected_at_definition(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", urls=["jdbc:snmp://h/x"], sql="SELEKT nope")

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", urls=["u"], sql="SELECT a FROM b", period=0)

    def test_empty_urls_rejected(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", urls=[], sql="SELECT a FROM b")

    def test_negative_rearm_rejected(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", urls=["u"], sql="SELECT a FROM b", rearm_after=-1)


class TestFiring:
    def test_violation_emits_event(self, rig):
        network, site, gw = rig
        got = []
        gw.events.register_listener(got.append, name_prefix="alert.")
        gw.alerts.add_rule(always_rule([site.url_for("snmp")]))
        network.clock.advance(10.5)
        assert len(got) == 1
        event = got[0]
        assert event.name == "alert.load-any"
        assert event.native_kind == "gateway-alert"
        assert event.source_host == site.host_names()[0]
        assert "LoadAverage1Min" in event.fields

    def test_no_violation_no_event(self, rig):
        network, site, gw = rig
        got = []
        gw.events.register_listener(got.append, name_prefix="alert.")
        gw.alerts.add_rule(never_rule([site.url_for("snmp")]))
        network.clock.advance(50.0)
        assert got == []
        assert gw.alerts.stats["polls"] >= 4

    def test_rule_fires_per_host(self, rig):
        network, site, gw = rig
        got = []
        gw.events.register_listener(got.append, name_prefix="alert.")
        gw.alerts.add_rule(always_rule(site.source_urls))
        network.clock.advance(10.5)
        assert {e.source_host for e in got} == set(site.host_names())

    def test_alert_recorded_to_history(self, rig):
        network, site, gw = rig
        gw.alerts.add_rule(always_rule([site.url_for("snmp")]))
        network.clock.advance(10.5)
        result = gw.history.query(
            "SELECT EventName FROM LogEvent WHERE EventName = 'alert.load-any'"
        )
        assert len(result.rows) == 1

    def test_severity_configurable(self, rig):
        network, site, gw = rig
        got = []
        gw.events.register_listener(got.append)
        gw.alerts.add_rule(
            always_rule([site.url_for("snmp")], severity="error")
        )
        network.clock.advance(10.5)
        assert got[0].severity == "error"


class TestHysteresis:
    def test_sustained_condition_fires_once(self, rig):
        network, site, gw = rig
        got = []
        gw.events.register_listener(got.append, name_prefix="alert.")
        gw.alerts.add_rule(
            always_rule([site.url_for("snmp")], rearm_after=1e9)
        )
        network.clock.advance(100.0)  # ten polls, condition always true
        assert len(got) == 1
        assert gw.alerts.stats["suppressed"] >= 8

    def test_zero_rearm_fires_every_poll(self, rig):
        network, site, gw = rig
        got = []
        gw.events.register_listener(got.append, name_prefix="alert.")
        gw.alerts.add_rule(always_rule([site.url_for("snmp")], rearm_after=0.0))
        network.clock.advance(50.0)
        assert len(got) == 5

    def test_firing_state_visible(self, rig):
        network, site, gw = rig
        gw.alerts.add_rule(always_rule([site.url_for("snmp")], rearm_after=1e9))
        network.clock.advance(10.5)
        assert gw.alerts.firing() == [("load-any", site.host_names()[0])]


class TestManagement:
    def test_duplicate_rule_rejected(self, rig):
        network, site, gw = rig
        gw.alerts.add_rule(never_rule([site.url_for("snmp")]))
        with pytest.raises(ValueError):
            gw.alerts.add_rule(never_rule([site.url_for("snmp")]))

    def test_remove_rule_stops_polling(self, rig):
        network, site, gw = rig
        gw.alerts.add_rule(never_rule([site.url_for("snmp")]))
        network.clock.advance(20.0)
        polls = gw.alerts.stats["polls"]
        assert gw.alerts.remove_rule("load-never")
        assert not gw.alerts.remove_rule("load-never")
        network.clock.advance(50.0)
        assert gw.alerts.stats["polls"] == polls

    def test_rules_listing(self, rig):
        network, site, gw = rig
        gw.alerts.add_rule(never_rule([site.url_for("snmp")], name="b"))
        gw.alerts.add_rule(never_rule([site.url_for("snmp")], name="a"))
        assert [r.name for r in gw.alerts.rules()] == ["a", "b"]

    def test_cached_polls_limit_intrusion(self, rig):
        network, site, gw = rig
        agent = site.agents["snmp"][0]
        # Two rules against the same source sharing the cache.
        gw.alerts.add_rule(
            always_rule([site.url_for("snmp")], name="r1", use_cache=True)
        )
        gw.alerts.add_rule(
            always_rule([site.url_for("snmp")], name="r2", use_cache=True)
        )
        before = agent.requests_served
        network.clock.advance(10.5)
        # Both rules polled, but the second was served from the cache.
        assert agent.requests_served - before <= 2  # probe + fetch at most
