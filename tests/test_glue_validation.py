"""Unit tests for GLUE row validation."""

from repro.glue.schema import STANDARD_SCHEMA
from repro.glue.validation import validate_row

GROUP = STANDARD_SCHEMA.group("MainMemory")


def full_row(**overrides):
    row = {f.name: None for f in GROUP.fields}
    row.update(
        HostName="n0",
        SiteName="s",
        Timestamp=1.0,
        RAMSizeMB=512.0,
        RAMAvailableMB=100.0,
    )
    row.update(overrides)
    return row


class TestValidate:
    def test_clean_row_has_no_issues(self):
        assert validate_row(GROUP, full_row()) == []

    def test_null_is_always_acceptable(self):
        assert validate_row(GROUP, full_row(RAMSizeMB=None)) == []

    def test_missing_field_reported(self):
        row = full_row()
        del row["CachedMB"]
        issues = validate_row(GROUP, row)
        assert [i.kind for i in issues] == ["missing"]
        assert issues[0].field == "CachedMB"

    def test_unknown_field_reported(self):
        issues = validate_row(GROUP, full_row(Bogus=1))
        assert any(i.kind == "unknown" and i.field == "Bogus" for i in issues)

    def test_wrong_type_reported(self):
        issues = validate_row(GROUP, full_row(RAMSizeMB="lots"))
        assert [i.kind for i in issues] == ["type"]

    def test_bool_is_not_a_real(self):
        issues = validate_row(GROUP, full_row(RAMSizeMB=True))
        assert [i.kind for i in issues] == ["type"]

    def test_int_acceptable_for_real(self):
        assert validate_row(GROUP, full_row(RAMSizeMB=512)) == []

    def test_integer_field_rejects_float(self):
        proc = STANDARD_SCHEMA.group("Processor")
        row = {f.name: None for f in proc.fields}
        row["CPUCount"] = 2.5
        issues = validate_row(proc, row)
        assert any(i.field == "CPUCount" and i.kind == "type" for i in issues)

    def test_boolean_field_rejects_int(self):
        host = STANDARD_SCHEMA.group("Host")
        row = {f.name: None for f in host.fields}
        row["Reachable"] = 1
        issues = validate_row(host, row)
        assert any(i.field == "Reachable" for i in issues)


class TestDriverOutputsValidate:
    """Every driver's translated output must conform to the schema."""

    def test_all_driver_mappings_target_real_groups_and_fields(self):
        from repro.drivers import default_driver_set
        from repro.simnet.clock import VirtualClock
        from repro.simnet.network import Network

        net = Network(VirtualClock())
        for driver in default_driver_set(net):
            mapping = driver.default_mapping()
            for group_name in mapping.groups():
                group = STANDARD_SCHEMA.group(group_name)
                gm = mapping.group_mapping(group_name)
                for rule in gm.rules:
                    assert group.has_field(rule.glue_field), (
                        f"{driver.name()} maps unknown field "
                        f"{group_name}.{rule.glue_field}"
                    )
