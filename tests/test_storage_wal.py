"""Unit tests for the simulated disk and the write-ahead log
(repro.storage.simdisk, repro.storage.wal)."""

import random

import pytest

from repro.simnet.clock import VirtualClock
from repro.storage.simdisk import SimDisk
from repro.storage.wal import (
    TAIL_CLEAN,
    TAIL_CORRUPT,
    TAIL_TORN,
    WriteAheadLog,
    encode_record,
    frame,
    read_frames,
    wal_path,
)


class TestSimDisk:
    def test_append_is_not_durable_until_fsync(self):
        disk = SimDisk()
        disk.create("f")
        disk.append("f", b"abc")
        assert disk.read("f") == b"abc"  # visible to readers
        disk.crash(None)
        assert disk.read("f") == b""  # but gone after power loss

    def test_fsync_makes_appends_durable(self):
        disk = SimDisk()
        disk.create("f")
        disk.append("f", b"abc")
        disk.fsync("f")
        disk.append("f", b"def")
        disk.crash(None)
        assert disk.read("f") == b"abc"

    def test_torn_crash_keeps_strict_partial_prefix_of_first_chunk(self):
        rng = random.Random(7)
        saw_partial = False
        for _ in range(50):
            disk = SimDisk()
            disk.create("f")
            disk.append("f", b"0123456789")
            disk.append("f", b"NEVER")  # later chunks always lost whole
            disk.crash(rng)
            kept = disk.read("f")
            assert b"NEVER" not in kept
            assert 0 <= len(kept) < 10
            assert b"0123456789".startswith(kept)
            saw_partial = saw_partial or 0 < len(kept)
        assert saw_partial

    def test_replace_buffers_until_fsync(self):
        disk = SimDisk()
        disk.create("f")
        disk.append("f", b"old")
        disk.fsync("f")
        disk.replace("f", b"new")
        assert disk.read("f") == b"new"
        disk.crash(None)
        assert disk.read("f") == b"old"  # replace was never synced

    def test_rename_and_delete(self):
        disk = SimDisk()
        disk.create("a")
        disk.append("a", b"x")
        disk.fsync("a")
        disk.rename("a", "b")
        assert not disk.exists("a")
        assert disk.read("b") == b"x"
        disk.delete("b")
        assert not disk.exists("b")
        disk.delete("b")  # idempotent

    def test_list_by_prefix(self):
        disk = SimDisk()
        for p in ("seg/a/1", "seg/b/1", "wal/1"):
            disk.create(p)
        assert disk.list("seg/") == ["seg/a/1", "seg/b/1"]

    def test_latencies_charge_the_virtual_clock(self):
        clock = VirtualClock()
        disk = SimDisk(clock=clock, write_latency=0.001, fsync_latency=0.01)
        disk.create("f")
        disk.append("f", b"x")
        assert clock.now() == pytest.approx(0.001)
        disk.fsync("f")
        assert clock.now() == pytest.approx(0.011)

    def test_flip_bit_corrupts_exactly_one_bit(self):
        disk = SimDisk()
        disk.create("f")
        disk.append("f", b"\x00\x00")
        disk.fsync("f")
        flipped = disk.flip_bit("f", bit=3)
        assert flipped == 3
        data = disk.read("f")
        assert bin(int.from_bytes(data, "big")).count("1") == 1

    def test_flip_bit_on_empty_file_raises(self):
        disk = SimDisk()
        disk.create("f")
        with pytest.raises(ValueError):
            disk.flip_bit("f", rng=random.Random(0))

    def test_append_to_missing_file_raises(self):
        disk = SimDisk()
        with pytest.raises(FileNotFoundError):
            disk.append("missing", b"x")

    def test_stats_track_operations(self):
        disk = SimDisk()
        disk.create("f")
        disk.append("f", b"abcd")
        disk.fsync("f")
        disk.read("f")
        assert disk.stats.writes == 1
        assert disk.stats.bytes_written == 4
        assert disk.stats.fsyncs == 1
        assert disk.stats.reads == 1


class TestFraming:
    def test_round_trip_clean(self):
        data = frame(b"one") + frame(b"two")
        payloads, tail, _ = read_frames(data)
        assert payloads == [b"one", b"two"]
        assert tail == TAIL_CLEAN

    def test_torn_tail_stops_cleanly(self):
        data = frame(b"one") + frame(b"two")[:-3]
        payloads, tail, detail = read_frames(data)
        assert payloads == [b"one"]
        assert tail == TAIL_TORN
        assert detail

    def test_corrupt_crc_stops_with_corrupt(self):
        good = frame(b"one")
        bad = bytearray(frame(b"two"))
        bad[-1] ^= 0xFF  # payload byte no longer matches the CRC
        payloads, tail, _ = read_frames(good + bytes(bad))
        assert payloads == [b"one"]
        assert tail == TAIL_CORRUPT

    def test_corruption_in_middle_hides_later_frames(self):
        data = bytearray(frame(b"one") + frame(b"two") + frame(b"three"))
        data[len(frame(b"one")) + 8] ^= 0x01  # inside frame two's payload
        payloads, tail, _ = read_frames(bytes(data))
        assert payloads == [b"one"]
        assert tail == TAIL_CORRUPT


class TestWriteAheadLog:
    def _wal(self, sync_interval=3):
        disk = SimDisk()
        return disk, WriteAheadLog(disk, sync_interval=sync_interval)

    def test_append_stamps_monotonic_lsns(self):
        _, wal = self._wal()
        lsns = [wal.append({"kind": "row", "group": "G", "row": {}}) for _ in range(4)]
        assert lsns == [1, 2, 3, 4]

    def test_group_commit_syncs_every_interval(self):
        disk, wal = self._wal(sync_interval=3)
        for _ in range(2):
            wal.append({"kind": "row", "group": "G", "row": {}})
        assert wal.synced_lsn == 0
        assert wal.unsynced_records == 2
        wal.append({"kind": "row", "group": "G", "row": {}})
        assert wal.synced_lsn == 3  # the third append triggered fsync
        assert wal.unsynced_records == 0
        assert disk.stats.fsyncs == 1

    def test_explicit_sync_advances_ack_boundary(self):
        _, wal = self._wal(sync_interval=100)
        wal.append({"kind": "row", "group": "G", "row": {}})
        assert wal.synced_lsn == 0
        wal.sync()
        assert wal.synced_lsn == 1

    def test_sync_with_nothing_pending_is_a_noop(self):
        disk, wal = self._wal()
        wal.sync()
        assert disk.stats.fsyncs == 0

    def test_crash_loses_only_unsynced_suffix(self):
        disk, wal = self._wal(sync_interval=2)
        for i in range(5):  # syncs after 2 and 4
            wal.append({"kind": "row", "group": "G", "row": {"i": i}})
        disk.crash(None)
        records, tail, _ = WriteAheadLog.read_records(disk, wal.path)
        assert tail == TAIL_CLEAN
        assert [r["row"]["i"] for r in records] == [0, 1, 2, 3]

    def test_read_records_missing_file_is_empty_clean(self):
        disk = SimDisk()
        records, tail, _ = WriteAheadLog.read_records(disk, wal_path(9))
        assert records == []
        assert tail == TAIL_CLEAN

    def test_read_records_reports_torn_tail(self):
        disk, wal = self._wal(sync_interval=1)
        wal.append({"kind": "row", "group": "G", "row": {"i": 0}})
        # Hand-tear a half-written frame onto the synced prefix.
        disk.append(wal.path, encode_record({"kind": "row"})[:-2])
        disk.fsync(wal.path)
        records, tail, _ = WriteAheadLog.read_records(disk, wal.path)
        assert len(records) == 1
        assert tail == TAIL_TORN

    def test_rotate_starts_fresh_generation(self):
        disk, wal = self._wal(sync_interval=1)
        wal.append({"kind": "row", "group": "G", "row": {}})
        old = wal.rotate()
        assert old == wal_path(1)
        assert wal.gen == 2
        assert wal.path == wal_path(2)
        assert disk.exists(wal.path)
        wal.append({"kind": "row", "group": "G", "row": {}})
        records, tail, _ = WriteAheadLog.read_records(disk, wal.path)
        assert tail == TAIL_CLEAN
        assert len(records) == 1
