"""End-to-end wiring of the analysis passes into the gateway stack."""

import pytest

from repro.core.alerts import AlertRule
from repro.core.errors import QueryValidationError
from repro.core.gateway import Gateway
from repro.core.request_manager import QueryMode
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site
from repro.web.console import Console
from repro.web.servlet import SERVLET_PORT, GatewayServlet, http_get


@pytest.fixture
def rig():
    clock = VirtualClock()
    network = Network(clock, seed=7)
    site = build_site(
        network, name="an", n_hosts=2, agents=("snmp",), seed=7
    )
    clock.advance(30.0)
    return network, site, site.gateway


class TestRequestManagerRejection:
    def test_unknown_attribute_rejected_before_any_connect(self, rig):
        network, site, gw = rig
        connects_before = gw.connection_manager.stats["created"]
        selections_before = gw.driver_manager.stats["selections"]
        with pytest.raises(QueryValidationError) as err:
            gw.query(site.url_for("snmp"), "SELECT Bogus FROM Processor")
        assert [f.rule_id for f in err.value.findings] == ["GRM202"]
        assert gw.connection_manager.stats["created"] == connects_before
        assert gw.driver_manager.stats["selections"] == selections_before
        assert gw.request_manager.stats["validation_rejects"] == 1

    def test_unknown_group_rejected(self, rig):
        _, site, gw = rig
        with pytest.raises(QueryValidationError) as err:
            gw.query(site.url_for("snmp"), "SELECT * FROM NopeGroup")
        assert [f.rule_id for f in err.value.findings] == ["GRM201"]

    def test_type_mismatch_rejected(self, rig):
        _, site, gw = rig
        with pytest.raises(QueryValidationError):
            gw.query(
                site.url_for("snmp"),
                "SELECT HostName FROM Processor WHERE Vendor > 5",
            )

    def test_valid_query_unaffected(self, rig):
        _, site, gw = rig
        r = gw.query(site.url_for("snmp"), "SELECT HostName FROM Host")
        assert r.ok_sources == 1

    def test_history_mode_allows_provenance_columns(self, rig):
        _, site, gw = rig
        url = site.url_for("snmp")
        gw.query(url, "SELECT * FROM Host")  # record some history
        r = gw.query(
            url,
            "SELECT HostName, SourceUrl, RecordedAt FROM Host",
            mode=QueryMode.HISTORY,
        )
        assert r.ok_sources == 1
        # ... but REALTIME does not know those columns.
        with pytest.raises(QueryValidationError):
            gw.query(url, "SELECT HostName, SourceUrl FROM Host")

    def test_runtime_added_group_is_queryable(self, rig):
        _, site, gw = rig
        from repro.glue.schema import GlueField, GlueGroup

        gw.schema_manager.schema.add_group(
            GlueGroup(
                "Weather",
                fields=(GlueField("HostName", "TEXT"), GlueField("TempC", "REAL")),
            )
        )
        with pytest.raises(QueryValidationError) as err:
            gw.query(site.url_for("snmp"), "SELECT Nope FROM Weather")
        # The new group resolves; only the bogus column is reported.
        assert [f.rule_id for f in err.value.findings] == ["GRM202"]


class TestAlertRuleValidation:
    def test_bad_alert_sql_rejected_at_install(self, rig):
        _, site, gw = rig
        with pytest.raises(QueryValidationError):
            gw.alerts.add_rule(
                AlertRule(
                    name="bogus",
                    urls=[site.url_for("snmp")],
                    sql="SELECT * FROM NoSuchGroup",
                )
            )
        assert gw.alerts.rules() == []

    def test_good_alert_sql_accepted(self, rig):
        _, site, gw = rig
        gw.alerts.add_rule(
            AlertRule(
                name="load",
                urls=[site.url_for("snmp")],
                sql=(
                    "SELECT HostName, LoadAverage1Min FROM Processor "
                    "WHERE LoadAverage1Min > 4"
                ),
            )
        )
        assert [r.name for r in gw.alerts.rules()] == ["load"]


class TestGatewayAnalyze:
    def test_clean_gateway_is_clean(self, rig):
        _, _, gw = rig
        report = gw.analyze()
        assert report.findings == []
        assert report.files_scanned == len(gw.registry.drivers())

    def test_unloadable_persisted_spec_is_grm301(self):
        clock = VirtualClock()
        network = Network(clock)
        network.add_host("gw2", site="s")
        store = {"no.such.module:Ghost": "GhostDriver"}
        gw = Gateway(network, "gw2", persistent_store=store)
        assert [f.rule_id for f in gw.startup_findings] == ["GRM301"]
        report = gw.analyze()
        assert "GRM301" in report.rule_ids()
        assert any("no.such.module:Ghost" == f.symbol for f in report.findings)

    def test_invalid_alert_sql_reported_by_analyze(self, rig):
        _, site, gw = rig
        # Installed before validation existed (simulated by going around
        # add_rule): analyze() still surfaces it.
        rule = AlertRule(
            name="legacy",
            urls=[site.url_for("snmp")],
            sql="SELECT Bogus FROM Processor",
        )
        gw.alerts._rules["legacy"] = rule
        report = gw.analyze()
        assert "GRM202" in report.rule_ids()
        assert any(f.path == "<alert:legacy>" for f in report.findings)

    def test_schema_manager_convenience(self, rig):
        _, _, gw = rig
        assert gw.schema_manager.validate_sql("SELECT * FROM Host") == []
        findings = gw.schema_manager.validate_sql("SELECT * FROM Nope")
        assert [f.rule_id for f in findings] == ["GRM201"]


class TestConsoleAndServlet:
    def test_analysis_panel_renders(self, rig):
        _, _, gw = rig
        text = Console(gw).analysis_panel()
        assert text.startswith("Static analysis")
        assert "(clean)" in text

    def test_servlet_analyze_route(self, rig):
        network, _, gw = rig
        network.add_host("client", site=gw.site)
        servlet = GatewayServlet(gw, port=SERVLET_PORT + 1)
        code, body = http_get(network, "client", servlet.address, "/analyze")
        assert code == 200
        assert "Static analysis" in body

    def test_servlet_rejects_invalid_query_cleanly(self, rig):
        network, site, gw = rig
        network.add_host("client2", site=gw.site)
        servlet = GatewayServlet(gw, port=SERVLET_PORT + 2)
        url = site.url_for("snmp").replace(":", "%3A").replace("/", "%2F")
        code, body = http_get(
            network,
            "client2",
            servlet.address,
            f"/query?url={url}&sql=SELECT%20Bogus%20FROM%20Processor",
        )
        assert code == 500
        assert "QueryValidationError" in body
