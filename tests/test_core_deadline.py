"""End-to-end deadlines, retry budgets and hedged requests.

Unit tests for :mod:`repro.core.deadline` / :mod:`repro.core.retry` and
the dispatcher's hedging path, plus integration tests driving them
through a live testbed gateway.
"""

import random

import pytest

from repro.core.deadline import Deadline
from repro.core.dispatch import FanoutDispatcher
from repro.core.errors import DeadlineExceededError, GridRmError, PolicyError
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.core.retry import RetryBudget, RetryPolicy
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Address, Network
from repro.testbed import build_testbed

SQL = "SELECT HostName FROM Host"


def make_site(policy=None, *, n_hosts=2, agents=("snmp",), seed=3):
    network, (site,) = build_testbed(
        n_hosts=n_hosts, agents=agents, seed=seed, policy=policy
    )
    network.clock.advance(5.0)
    return site


class TestDeadline:
    def test_after_requires_positive_budget(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            Deadline.after(clock, 0.0)
        with pytest.raises(ValueError):
            Deadline.after(clock, -1.0)

    def test_remaining_counts_down_never_negative(self):
        clock = VirtualClock()
        d = Deadline.after(clock, 2.0)
        assert d.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert d.remaining() == pytest.approx(0.5)
        clock.advance(5.0)
        assert d.remaining() == 0.0
        assert d.expired()

    def test_check_raises_with_context(self):
        clock = VirtualClock()
        d = Deadline.after(clock, 1.0)
        d.check("step one")  # fine
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as exc:
            d.check("step two")
        assert "step two" in str(exc.value)

    def test_clamp_bounds_hop_timeout_by_remaining_budget(self):
        clock = VirtualClock()
        d = Deadline.after(clock, 1.0)
        assert d.clamp(5.0) == pytest.approx(1.0)
        assert d.clamp(0.2) == pytest.approx(0.2)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            d.clamp(5.0)

    def test_deadline_exceeded_is_gridrm_error(self):
        assert issubclass(DeadlineExceededError, GridRmError)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(attempts=5, base_backoff=0.1, max_backoff=0.4)
        rng = random.Random(0)
        waits = [policy.backoff(a, rng) for a in (1, 2, 3, 4)]
        # Jitter only inflates, never shrinks; the cap always holds.
        assert waits[0] >= 0.1
        assert waits[1] >= 0.2
        assert all(w <= 0.4 for w in waits)
        assert waits[3] == 0.4  # 0.8 raw, capped

    def test_from_gateway_policy_maps_knobs(self):
        gw = GatewayPolicy(
            retry_attempts=3,
            retry_budget=7,
            retry_base_backoff=0.02,
            retry_max_backoff=1.5,
        )
        policy = RetryPolicy.from_gateway_policy(gw)
        assert policy == RetryPolicy(
            attempts=3, budget=7, base_backoff=0.02, max_backoff=1.5
        )


class TestRetryBudget:
    def test_take_spends_then_denies(self):
        budget = RetryBudget(2)
        assert budget.take() and budget.take()
        assert not budget.take()
        assert not budget.take()
        assert budget.spent == 2
        assert budget.denied == 2

    def test_zero_tokens_always_denied(self):
        budget = RetryBudget(0)
        assert not budget.take()
        assert budget.denied == 1


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"default_deadline": -1.0},
            {"retry_attempts": 0},
            {"retry_budget": -1},
            {"retry_base_backoff": 0.0},
            {"retry_base_backoff": 0.5, "retry_max_backoff": 0.1},
            {"hedge_percentile": 0.0},
            {"hedge_percentile": 101.0},
            {"hedge_min_samples": 0},
            {"hedge_min_delay": -0.1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            GatewayPolicy(**kwargs)


class TestDeadlineIntegration:
    def test_serial_expiry_fails_remaining_sources_fast(self):
        # Serial dispatch, two sources: the first eats the whole budget,
        # so the second must be failed *before dispatch* — no agent
        # traffic, no health penalty.
        site = make_site(
            GatewayPolicy(fanout_enabled=False, breaker_failure_threshold=10)
        )
        gw = site.gateway
        h0, h1 = site.host_names()[:2]
        url0, url1 = site.url_for("snmp", host=h0), site.url_for("snmp", host=h1)
        site.network.set_service_time(h0, 5.0)  # slower than any budget

        result = gw.query([url0, url1], SQL, mode=QueryMode.REALTIME, timeout=1.0)
        assert result.failed_sources == 2
        s0, s1 = result.statuses
        assert not s0.ok  # timed out against the clamped budget
        assert s1.error == "deadline exceeded before dispatch"
        assert gw.request_manager.stats["deadline_exceeded"] >= 1
        # The starved source was never touched, so its breaker stays clean.
        assert gw.health.health(url1).total_failures == 0
        # The whole query respected the end-to-end budget (native timeout
        # was clamped to the remaining deadline, not its own 5 s default).
        assert result.elapsed <= 1.0 + 1e-6

    def test_default_deadline_stamped_from_policy(self):
        site = make_site(
            GatewayPolicy(
                fanout_enabled=False,
                default_deadline=1.0,
                breaker_failure_threshold=10,
            )
        )
        gw = site.gateway
        h0, h1 = site.host_names()[:2]
        url0, url1 = site.url_for("snmp", host=h0), site.url_for("snmp", host=h1)
        site.network.set_service_time(h0, 5.0)
        result = gw.query([url0, url1], SQL, mode=QueryMode.REALTIME)
        assert result.statuses[1].error == "deadline exceeded before dispatch"

    def test_generous_deadline_changes_nothing(self):
        site = make_site()
        url = site.url_for("snmp")
        result = site.gateway.query(url, SQL, mode=QueryMode.REALTIME, timeout=60.0)
        assert result.ok_sources == 1 and result.rows

    def test_zero_default_deadline_means_unlimited(self):
        site = make_site(GatewayPolicy(default_deadline=0.0))
        url = site.url_for("snmp")
        result = site.gateway.query(url, SQL, mode=QueryMode.REALTIME)
        assert result.ok_sources == 1


class TestRetryIntegration:
    def _closed_port_site(self, policy):
        site = make_site(policy)
        gw = site.gateway
        url = site.url_for("snmp")
        # Warm the driver cache with one good round-trip, then slam the
        # agent's port shut: every connect now fails deterministically.
        warm = gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert warm.ok_sources == 1
        agent = site.agents["snmp"][0]
        site.network.close(agent.address)
        return site, url

    def test_transient_failures_retried_until_attempts_exhausted(self):
        site, url = self._closed_port_site(
            GatewayPolicy(
                retry_attempts=3, retry_budget=10, breaker_failure_threshold=10
            )
        )
        gw = site.gateway
        result = gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert result.failed_sources == 1
        assert gw.request_manager.stats["retries"] == 2  # attempts 2 and 3

    def test_retry_budget_caps_amplification(self):
        site, url = self._closed_port_site(
            GatewayPolicy(
                retry_attempts=3, retry_budget=1, breaker_failure_threshold=10
            )
        )
        gw = site.gateway
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert gw.request_manager.stats["retries"] == 1
        assert gw.request_manager.stats["retry_giveups"] == 1

    def test_retries_disabled_by_default(self):
        site, url = self._closed_port_site(
            GatewayPolicy(breaker_failure_threshold=10)
        )
        gw = site.gateway
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert gw.request_manager.stats["retries"] == 0

    def test_non_idempotent_driver_never_retried(self):
        site, url = self._closed_port_site(
            GatewayPolicy(
                retry_attempts=3, retry_budget=10, breaker_failure_threshold=10
            )
        )
        gw = site.gateway
        from repro.dbapi.url import JdbcUrl

        driver = gw.driver_manager.cached_driver(JdbcUrl.parse(url))
        assert driver is not None
        driver.idempotent = False
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert gw.request_manager.stats["retries"] == 0

    def test_no_retry_when_deadline_cannot_absorb_backoff(self):
        site, url = self._closed_port_site(
            GatewayPolicy(
                retry_attempts=3,
                retry_budget=10,
                retry_base_backoff=5.0,
                retry_max_backoff=10.0,
                breaker_failure_threshold=10,
            )
        )
        gw = site.gateway
        gw.query(url, SQL, mode=QueryMode.REALTIME, timeout=2.0)
        assert gw.request_manager.stats["retries"] == 0
        assert gw.request_manager.stats["retry_giveups"] >= 1


class TestHedging:
    def _dispatcher(self, **overrides):
        kwargs = {
            "hedge_enabled": True,
            "hedge_min_samples": 1,
            "hedge_min_delay": 0.0,
            "hedge_percentile": 95.0,
        }
        kwargs.update(overrides)
        policy = GatewayPolicy(**kwargs)
        clock = VirtualClock()
        return clock, FanoutDispatcher(clock, policy)

    def _seed_window(self, clock, dispatcher, latency=0.1, n=4):
        # hedge=False while seeding: with identical samples the p95 sits
        # exactly on the observed latency, and float noise must not let
        # the warm-up flights themselves fire hedges.
        for _ in range(n):
            dispatcher.run_flight(
                "src", SQL, lambda: (clock.advance(latency), "warm")[1], hedge=False
            )

    def test_hedge_wins_against_straggler(self):
        clock, dispatcher = self._dispatcher()
        self._seed_window(clock, dispatcher)

        calls = []

        def fetch():
            calls.append(clock.now())
            if len(calls) == 1:
                clock.advance(1.0)
                return "primary"
            clock.advance(0.01)
            return "hedge"

        t0 = clock.now()
        value = dispatcher.run_flight("src", SQL, fetch)
        assert value == "hedge"
        stats = dispatcher.stats
        assert stats.hedges_fired == 1
        assert stats.hedges_won == 1
        assert stats.hedges_cancelled == 1
        # Winner's completion: hedge delay (~p95 of 0.1s) + 0.01, far
        # under the 1 s straggler; the saving is the difference.
        assert clock.now() - t0 < 0.2
        assert stats.hedge_time_saved == pytest.approx(1.0 - (clock.now() - t0))

    def test_primary_wins_when_hedge_is_slower(self):
        clock, dispatcher = self._dispatcher()
        self._seed_window(clock, dispatcher)

        calls = []

        def fetch():
            calls.append(clock.now())
            clock.advance(1.0 if len(calls) == 1 else 2.0)
            return f"attempt-{len(calls)}"

        t0 = clock.now()
        value = dispatcher.run_flight("src", SQL, fetch)
        assert value == "attempt-1"
        assert dispatcher.stats.hedges_fired == 1
        assert dispatcher.stats.hedges_won == 0
        assert dispatcher.stats.hedges_cancelled == 1
        assert clock.now() - t0 == pytest.approx(1.0)

    def test_hedge_rescues_failed_primary(self):
        clock, dispatcher = self._dispatcher()
        self._seed_window(clock, dispatcher)

        calls = []

        def fetch():
            calls.append(clock.now())
            if len(calls) == 1:
                clock.advance(1.0)
                raise GridRmError("primary died")
            clock.advance(0.01)
            return "hedge"

        assert dispatcher.run_flight("src", SQL, fetch) == "hedge"
        assert dispatcher.stats.hedges_won == 1

    def test_both_fail_raises_at_later_failure(self):
        clock, dispatcher = self._dispatcher()
        self._seed_window(clock, dispatcher)

        calls = []

        def fetch():
            calls.append(clock.now())
            clock.advance(1.0)
            raise GridRmError(f"attempt {len(calls)}")

        t0 = clock.now()
        with pytest.raises(GridRmError):
            dispatcher.run_flight("src", SQL, fetch)
        # The caller waited for the surviving sibling: delay + 1 s.
        assert clock.now() - t0 > 1.0

    def test_fast_answer_never_hedges(self):
        clock, dispatcher = self._dispatcher()
        self._seed_window(clock, dispatcher)

        def fetch():
            clock.advance(0.001)
            return "fast"

        assert dispatcher.run_flight("src", SQL, fetch) == "fast"
        assert dispatcher.stats.hedges_fired == 0

    def test_cold_source_never_hedged(self):
        clock, dispatcher = self._dispatcher(hedge_min_samples=8)
        self._seed_window(clock, dispatcher, n=3)  # below min_samples

        def fetch():
            clock.advance(5.0)
            return "slow"

        assert dispatcher.run_flight("src", SQL, fetch) == "slow"
        assert dispatcher.stats.hedges_fired == 0

    def test_hedge_disabled_by_policy(self):
        clock, dispatcher = self._dispatcher(hedge_enabled=False)
        self._seed_window(clock, dispatcher)

        def fetch():
            clock.advance(5.0)
            return "slow"

        dispatcher.run_flight("src", SQL, fetch)
        assert dispatcher.stats.hedges_fired == 0

    def test_caller_opt_out_for_non_idempotent_fetch(self):
        clock, dispatcher = self._dispatcher()
        self._seed_window(clock, dispatcher)

        def fetch():
            clock.advance(5.0)
            return "slow"

        dispatcher.run_flight("src", SQL, fetch, hedge=False)
        assert dispatcher.stats.hedges_fired == 0

    def test_hedge_delay_reads_latency_percentile(self):
        clock, dispatcher = self._dispatcher(hedge_min_delay=0.0)
        assert dispatcher.hedge_delay("src") is None  # no history yet
        self._seed_window(clock, dispatcher, latency=0.1)
        assert dispatcher.hedge_delay("src") == pytest.approx(0.1)

    def test_min_delay_floors_the_timer(self):
        clock, dispatcher = self._dispatcher(hedge_min_delay=0.5)
        self._seed_window(clock, dispatcher, latency=0.001)
        assert dispatcher.hedge_delay("src") == 0.5


class TestGmaWirePropagation:
    """The budget crosses the GMA wire as a relative ``deadline_budget``."""

    @pytest.fixture
    def fabric(self):
        from repro.gma.directory import GMADirectory
        from repro.gma.global_layer import GlobalLayer
        from repro.testbed import build_site

        clock = VirtualClock()
        network = Network(clock, seed=41)
        a = build_site(network, name="site-a", n_hosts=2, agents=("snmp",), seed=1)
        b = build_site(network, name="site-b", n_hosts=2, agents=("snmp",), seed=2)
        clock.advance(20.0)
        directory = GMADirectory(network)
        gla = GlobalLayer(a.gateway, directory)
        GlobalLayer(b.gateway, directory)
        return network, a, b, gla

    def test_remote_query_within_budget_succeeds(self, fabric):
        network, _, b, gla = fabric
        deadline = Deadline.after(network.clock, 30.0)
        result = gla.query_remote(
            "site-b", SQL, mode="realtime", deadline=deadline
        )
        assert {r["HostName"] for r in result.dicts()} == set(b.host_names())
        assert not deadline.expired()

    def test_expired_budget_fails_before_any_wire_traffic(self, fabric):
        network, _, _, gla = fabric
        deadline = Deadline.after(network.clock, 0.001)
        network.clock.advance(0.002)
        requests_before = network.stats.requests
        with pytest.raises(DeadlineExceededError):
            gla.query_remote("site-b", SQL, mode="realtime", deadline=deadline)
        assert network.stats.requests == requests_before

    def test_producer_rejects_exhausted_budget_on_arrival(self, fabric):
        # Defensive wire-level check: a payload claiming no budget left
        # (e.g. from a client whose clamp raced the send) is refused
        # before the producer touches its gateway.
        network, a, b, _ = fabric
        from repro.gma.producer import PRODUCER_PORT

        producer_addr = Address(b.gateway.host, PRODUCER_PORT)
        response = network.request(
            a.gateway.host,
            producer_addr,
            {
                "op": "query",
                "sql": SQL,
                "mode": "realtime",
                "from_site": "site-a",
                "deadline_budget": 0.0,
            },
        )
        assert response["ok"] is False
        assert "no budget left" in response["error"]

    def test_tight_budget_clamps_native_timeout(self, fabric):
        # A budget smaller than the WAN round-trip: the consumer clamps
        # the native timeout to the remaining budget, so the remote query
        # fails at the deadline rather than the transport's own 5 s.
        network, _, _, gla = fabric
        from repro.gma.global_layer import RemoteQueryError

        deadline = Deadline.after(network.clock, 0.01)  # < one WAN RTT
        t0 = network.clock.now()
        with pytest.raises((RemoteQueryError, DeadlineExceededError)):
            gla.query_remote("site-b", SQL, mode="realtime", deadline=deadline)
        # Never waited past the end-to-end deadline, let alone 5 s.
        assert network.clock.now() - t0 <= 0.15
