"""Compile-time GLUE query validation (the R-GMA-style static check)."""

import pytest

from repro.analysis.query_check import literal_compatible, validate_sql
from repro.glue.schema import standard_schema


@pytest.fixture(scope="module")
def schema():
    return standard_schema()


def ids(findings):
    return sorted(f.rule_id for f in findings)


class TestGroups:
    def test_known_group_clean(self, schema):
        assert validate_sql("SELECT * FROM Processor", schema) == []

    def test_unknown_group_is_grm201(self, schema):
        findings = validate_sql("SELECT * FROM NoSuchGroup", schema)
        assert ids(findings) == ["GRM201"]
        assert "NoSuchGroup" in findings[0].message

    def test_group_lookup_case_insensitive(self, schema):
        assert validate_sql("SELECT HostName FROM processor", schema) == []

    def test_unknown_group_suppresses_attribute_noise(self, schema):
        # Columns can't be resolved without the group; one clear finding
        # beats one per column.
        findings = validate_sql(
            "SELECT Anything, Whatever FROM NoSuchGroup", schema
        )
        assert ids(findings) == ["GRM201"]

    def test_join_checks_every_table(self, schema):
        findings = validate_sql(
            "SELECT HostName FROM Processor, Bogus", schema
        )
        assert ids(findings) == ["GRM201"]


class TestAttributes:
    def test_unknown_attribute_is_grm202(self, schema):
        findings = validate_sql("SELECT Bogus FROM Processor", schema)
        assert ids(findings) == ["GRM202"]
        assert "Bogus" in findings[0].message

    def test_unknown_attribute_in_where(self, schema):
        findings = validate_sql(
            "SELECT HostName FROM Processor WHERE NotAField = 1", schema
        )
        assert ids(findings) == ["GRM202"]

    def test_join_attributes_resolve_across_groups(self, schema):
        sql = (
            "SELECT HostName, LoadAverage1Min, RAMAvailableMB "
            "FROM Processor, MainMemory"
        )
        assert validate_sql(sql, schema) == []

    def test_extra_fields_passthrough(self, schema):
        sql = "SELECT HostName, SourceUrl FROM Processor"
        assert ids(validate_sql(sql, schema)) == ["GRM202"]
        assert (
            validate_sql(
                sql, schema, extra_fields=("SourceUrl", "RecordedAt")
            )
            == []
        )

    def test_duplicate_unknown_reported_once(self, schema):
        sql = "SELECT Bogus FROM Processor WHERE Bogus = 1 ORDER BY Bogus"
        assert ids(validate_sql(sql, schema)) == ["GRM202"]


class TestPredicateTypes:
    def test_text_vs_integer_is_grm203(self, schema):
        findings = validate_sql(
            "SELECT HostName FROM Processor WHERE Vendor > 5", schema
        )
        assert ids(findings) == ["GRM203"]
        assert "Vendor" in findings[0].message

    def test_integer_vs_text_literal(self, schema):
        findings = validate_sql(
            "SELECT HostName FROM Processor WHERE CPUCount = 'many'", schema
        )
        assert ids(findings) == ["GRM203"]

    def test_numeric_family_is_compatible(self, schema):
        # INTEGER/REAL/TIMESTAMP collapse to one comparable class.
        assert (
            validate_sql(
                "SELECT HostName FROM Processor WHERE CPUCount > 1.5", schema
            )
            == []
        )

    def test_null_comparison_passthrough(self, schema):
        assert (
            validate_sql(
                "SELECT HostName FROM Host WHERE HostName = NULL", schema
            )
            == []
        )

    def test_between_checked(self, schema):
        findings = validate_sql(
            "SELECT HostName FROM Processor "
            "WHERE Vendor BETWEEN 1 AND 9",
            schema,
        )
        assert ids(findings) == ["GRM203", "GRM203"]

    def test_in_list_checked(self, schema):
        findings = validate_sql(
            "SELECT HostName FROM Processor WHERE CPUCount IN ('a', 'b')",
            schema,
        )
        assert ids(findings) == ["GRM203", "GRM203"]

    def test_column_vs_column_not_flagged(self, schema):
        assert (
            validate_sql(
                "SELECT HostName FROM MainMemory "
                "WHERE RAMAvailableMB < RAMSizeMB",
                schema,
            )
            == []
        )


class TestSqlEntryPoint:
    def test_unparseable_sql_is_grm200(self, schema):
        findings = validate_sql("SELEKT nonsense", schema)
        assert ids(findings) == ["GRM200"]

    def test_path_is_threaded_into_findings(self, schema):
        findings = validate_sql(
            "SELECT * FROM Nope", schema, path="<alert:overload>"
        )
        assert findings[0].path == "<alert:overload>"


class TestLiteralCompatible:
    def test_none_always_compatible(self):
        assert literal_compatible("TEXT", None)
        assert literal_compatible("INTEGER", None)

    def test_text_rejects_numbers(self):
        assert literal_compatible("TEXT", "abc")
        assert not literal_compatible("TEXT", 5)

    def test_numeric_family(self):
        assert literal_compatible("INTEGER", 1.5)
        assert literal_compatible("REAL", 3)
        assert literal_compatible("TIMESTAMP", 12.0)
        assert not literal_compatible("REAL", "soon")
