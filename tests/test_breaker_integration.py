"""End-to-end circuit-breaker tests: the gateway's behaviour around dead
sources, stale-result degradation, recovery, and partitioned remote sites.

These are the acceptance scenarios for per-source health tracking:

a. a dead source's steady-state cost collapses once its breaker trips
   (no connect attempts, ``connect_failures`` stops growing);
b. the source returns to CLOSED within the configured backoff after it
   heals;
c. ``serve_stale_on_open=True`` answers from the stale query cache with
   ``degraded=True`` instead of raising;
d. a partitioned remote site stops adding its timeout to every
   Global-layer multi-site query.
"""

import pytest

from repro.core.health import BreakerState
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.gma.directory import GMADirectory
from repro.gma.global_layer import GlobalLayer
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site

SQL = "SELECT HostName FROM Host"


def make_site(policy=None, name="bs", n_hosts=2, agents=("snmp",), seed=3):
    clock = VirtualClock()
    network = Network(clock, seed=seed)
    site = build_site(
        network, name=name, n_hosts=n_hosts, agents=agents, seed=seed, policy=policy
    )
    clock.advance(5.0)
    return site


def trip_source(site, url, *, n, mode=QueryMode.REALTIME):
    """Issue ``n`` realtime queries against a (dead) source."""
    results = []
    for _ in range(n):
        results.append(site.gateway.query(url, SQL, mode=mode))
    return results


class TestDeadSourceFastFail:
    def test_breaker_stops_connect_attempts(self):
        site = make_site(
            GatewayPolicy(
                breaker_failure_threshold=3,
                breaker_base_backoff=60.0,
                breaker_max_backoff=120.0,
            )
        )
        gw = site.gateway
        url = site.url_for("snmp", host=site.host_names()[0])
        site.fail_host(site.host_names()[0])

        failing = trip_source(site, url, n=3)
        assert all(r.failed_sources == 1 for r in failing)
        assert all(r.elapsed > 0 for r in failing)  # paid native timeouts
        failures_at_trip = gw.driver_manager.stats["connect_failures"]
        assert failures_at_trip >= 3
        assert gw.health.state(url) is BreakerState.OPEN

        short_circuited = trip_source(site, url, n=5)
        # Steady state: no source traffic, no time, no new failures.
        assert gw.driver_manager.stats["connect_failures"] == failures_at_trip
        assert all(r.elapsed == 0 for r in short_circuited)
        assert all(r.degraded for r in short_circuited)
        assert gw.request_manager.stats["breaker_short_circuits"] == 5

    def test_healed_source_recovers_within_backoff(self):
        site = make_site(
            GatewayPolicy(
                breaker_failure_threshold=2,
                breaker_base_backoff=30.0,
                breaker_max_backoff=60.0,
            )
        )
        gw = site.gateway
        host = site.host_names()[0]
        url = site.url_for("snmp", host=host)
        site.fail_host(host)
        trip_source(site, url, n=2)
        assert gw.health.state(url) is BreakerState.OPEN

        site.heal_host(host)
        # The jittered wait never exceeds breaker_max_backoff, so by then
        # the probe window is guaranteed open.
        site.clock.advance(gw.policy.breaker_max_backoff)
        result = gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert result.ok_sources == 1 and not result.degraded
        assert result.rows
        assert gw.health.state(url) is BreakerState.CLOSED
        assert gw.health.stats["recoveries"] == 1


class TestStaleServing:
    def _tripped_site_with_cache(self, serve_stale):
        site = make_site(
            GatewayPolicy(
                breaker_failure_threshold=2,
                breaker_base_backoff=300.0,
                breaker_max_backoff=600.0,
                serve_stale_on_open=serve_stale,
            )
        )
        gw = site.gateway
        host = site.host_names()[0]
        url = site.url_for("snmp", host=host)
        warm = gw.query(url, SQL, mode=QueryMode.REALTIME)  # fills the cache
        assert warm.ok_sources == 1
        site.fail_host(host)
        # Let the cache entry expire so only the *stale* path can answer.
        site.clock.advance(gw.policy.query_cache_ttl + 1)
        trip_source(site, url, n=2)
        assert gw.health.state(url) is BreakerState.OPEN
        return site, url, warm

    def test_open_breaker_serves_stale_flagged_degraded(self):
        site, url, warm = self._tripped_site_with_cache(serve_stale=True)
        gw = site.gateway
        for mode in (QueryMode.REALTIME, QueryMode.CACHED_OK):
            result = gw.query(url, SQL, mode=mode)
            assert result.rows == warm.rows
            (status,) = result.statuses
            assert status.ok and status.from_cache and status.degraded
            assert result.degraded
        assert gw.request_manager.stats["stale_served"] == 2

    def test_serve_stale_disabled_fails_fast(self):
        site, url, _ = self._tripped_site_with_cache(serve_stale=False)
        result = site.gateway.query(url, SQL, mode=QueryMode.REALTIME)
        (status,) = result.statuses
        assert not status.ok and status.degraded
        assert "circuit open" in status.error
        assert result.elapsed == 0
        assert site.gateway.request_manager.stats["stale_served"] == 0


class TestObservability:
    def _site_with_open_breaker(self):
        site = make_site(
            GatewayPolicy(breaker_failure_threshold=2, breaker_base_backoff=50.0)
        )
        host = site.host_names()[0]
        url = site.url_for("snmp", host=host)
        site.fail_host(host)
        trip_source(site, url, n=2)
        return site, url, host

    def test_transitions_emitted_as_events(self):
        site, url, host = self._site_with_open_breaker()
        gw = site.gateway
        opened = [e for e in gw.events.recent if e.name == "breaker.open"]
        assert opened and opened[-1].fields["source"] == url
        assert opened[-1].source_host == host
        assert opened[-1].severity == "error"
        assert gw.events.stats["internal"] >= 1

        site.heal_host(host)
        site.clock.advance(gw.policy.breaker_max_backoff)
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        names = [e.name for e in gw.events.recent]
        assert "breaker.half_open" in names and "breaker.closed" in names

    def test_transitions_recorded_in_history(self):
        site, url, host = self._site_with_open_breaker()
        sel = site.gateway.history.query(
            "SELECT EventName FROM LogEvent", source_url=f"event://{host}"
        )
        assert ["breaker.open"] in sel.rows

    def test_scoreboard_in_gateway_stats(self):
        site, url, _ = self._site_with_open_breaker()
        health = site.gateway.stats()["health"]
        assert health["open"] == 1
        assert health["trips"] == 1
        assert health["scoreboard"][url]["state"] == "open"
        assert health["scoreboard"][url]["consecutive_failures"] == 2

    def test_console_tree_and_health_panel(self):
        from repro.web.console import Console, ICON_QUARANTINED

        site, url, _ = self._site_with_open_breaker()
        console = Console(site.gateway)
        tree = console.tree_view()
        assert ICON_QUARANTINED in tree
        assert "breaker: OPEN" in tree
        panel = console.health_panel()
        assert f"{url}: quarantined" in panel
        assert "breaker.open" in panel

    def test_servlet_health_route(self):
        from repro.web.servlet import GatewayServlet, http_get

        site, url, _ = self._site_with_open_breaker()
        servlet = GatewayServlet(site.gateway)
        code, body = http_get(
            site.network, site.host_names()[1], servlet.address, "/health"
        )
        assert code == 200
        assert "quarantined" in body

    def test_cli_health_command(self, capsys):
        from repro.cli import main

        assert main(["health", "--hosts", "2", "--agents", "snmp"]) == 0
        out = capsys.readouterr().out
        assert "Source health" in out
        assert "up" in out

    def test_cli_health_command_with_failure(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "health",
                    "--hosts",
                    "2",
                    "--agents",
                    "snmp",
                    "--fail",
                    "site-a-n00",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "quarantined" in out


class TestRemoteSiteBreaker:
    @pytest.fixture
    def fabric(self):
        clock = VirtualClock()
        network = Network(clock, seed=21)
        policy = GatewayPolicy(
            breaker_failure_threshold=2,
            breaker_base_backoff=100.0,
            breaker_max_backoff=200.0,
        )
        a = build_site(
            network, name="bra", n_hosts=2, agents=("snmp",), seed=1, policy=policy
        )
        b = build_site(network, name="brb", n_hosts=2, agents=("snmp",), seed=2)
        clock.advance(10.0)
        directory = GMADirectory(network)
        gla = GlobalLayer(a.gateway, directory)
        GlobalLayer(b.gateway, directory)
        return network, a, b, gla

    def test_partitioned_site_stops_costing_timeouts(self, fabric):
        network, a, b, gla = fabric
        remote_url = b.url_for("snmp", host=b.host_names()[0])
        urls = [a.url_for("snmp", host=a.host_names()[0]), remote_url]

        warm = a.gateway.query(urls, SQL, mode=QueryMode.REALTIME)
        assert warm.ok_sources == 2
        network.set_host_up(b.gateway.host, False)
        network.clock.advance(a.gateway.policy.query_cache_ttl + 1)

        # Until the breaker trips, every multi-site query eats the remote
        # timeout on top of the local work.
        failing = [
            a.gateway.query(urls, SQL, mode=QueryMode.REALTIME) for _ in range(2)
        ]
        assert all(r.failed_sources == 1 for r in failing)
        slow = min(r.elapsed for r in failing)
        assert a.gateway.health.state("gma://brb") is BreakerState.OPEN

        degraded = a.gateway.query(urls, SQL, mode=QueryMode.REALTIME)
        # Local source answered live; the remote came degraded from the
        # stale remote-answer cache without waiting on the partition.
        assert degraded.ok_sources == 2
        assert degraded.degraded
        assert degraded.elapsed < slow / 2
        assert gla.stats["remote_short_circuits"] == 1
        assert gla.stats["remote_stale_served"] == 1

    def test_partitioned_site_fails_fast_without_stale(self, fabric):
        network, a, b, gla = fabric
        a.gateway.policy.serve_stale_on_open = False
        remote_url = b.url_for("snmp", host=b.host_names()[0])
        network.set_host_up(b.gateway.host, False)
        for _ in range(2):
            a.gateway.query(remote_url, SQL, mode=QueryMode.REALTIME)
        t0 = network.clock.now()
        result = a.gateway.query(remote_url, SQL, mode=QueryMode.REALTIME)
        assert network.clock.now() == t0  # fast fail: no timeout paid
        (status,) = result.statuses
        assert not status.ok and status.degraded
        assert "circuit open for site 'brb'" in status.error

    def test_remote_site_recovers_after_heal(self, fabric):
        network, a, b, gla = fabric
        remote_url = b.url_for("snmp", host=b.host_names()[0])
        network.set_host_up(b.gateway.host, False)
        for _ in range(2):
            a.gateway.query(remote_url, SQL, mode=QueryMode.REALTIME)
        assert a.gateway.health.state("gma://brb") is BreakerState.OPEN

        network.set_host_up(b.gateway.host, True)
        network.clock.advance(a.gateway.policy.breaker_max_backoff)
        result = a.gateway.query(remote_url, SQL, mode=QueryMode.REALTIME)
        assert result.ok_sources == 1 and not result.degraded
        assert a.gateway.health.state("gma://brb") is BreakerState.CLOSED


class TestPartitionHealVsHalfOpenProbe:
    """A network partition racing the breaker's HALF_OPEN re-probe.

    The chaos plane heals partitions on a clock schedule, so the heal can
    land either side of the breaker's probe window — both orderings must
    converge without inconsistent breaker state.
    """

    def _partitioned_site(self):
        site = make_site(
            GatewayPolicy(
                breaker_failure_threshold=2,
                breaker_base_backoff=30.0,
                breaker_max_backoff=60.0,
            )
        )
        gw = site.gateway
        host = site.host_names()[0]
        url = site.url_for("snmp", host=host)
        site.network.partition(
            {gw.host, site.host_names()[1]}, {host}
        )
        trip_source(site, url, n=2)
        assert gw.health.state(url) is BreakerState.OPEN
        return site, url, host

    def test_heal_lands_before_probe_window(self):
        site, url, host = self._partitioned_site()
        gw = site.gateway
        site.network.heal()  # partition heals while the breaker is OPEN
        site.clock.advance(gw.policy.breaker_max_backoff)
        result = gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert result.ok_sources == 1 and not result.degraded
        assert gw.health.state(url) is BreakerState.CLOSED
        assert gw.health.stats["recoveries"] == 1

    def test_probe_fires_while_still_partitioned(self):
        site, url, host = self._partitioned_site()
        gw = site.gateway
        entry = gw.health.health(url)
        first_backoff = entry.current_backoff

        # The probe window opens but the partition has NOT healed: the
        # HALF_OPEN probe fails, re-trips the breaker and doubles the
        # backoff.
        site.clock.advance(gw.policy.breaker_max_backoff)
        probe = gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert probe.failed_sources == 1
        entry = gw.health.health(url)
        assert gw.health.state(url) is BreakerState.OPEN
        assert entry.trips == 2
        assert entry.current_backoff > first_backoff  # exponential growth
        assert entry.current_backoff <= gw.policy.breaker_max_backoff

        # Now the heal lands; the next probe window closes the breaker.
        site.network.heal()
        site.clock.advance(gw.policy.breaker_max_backoff)
        result = gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert result.ok_sources == 1
        assert gw.health.state(url) is BreakerState.CLOSED
        # Consecutive-failure and trip counters stay coherent through the
        # race (same invariants the chaos soak checks).
        entry = gw.health.health(url)
        assert entry.consecutive_failures == 0
        assert entry.total_failures >= 3
        assert gw.health.stats["recoveries"] == 1

    def test_heal_racing_probe_instant_is_benign(self):
        # The adversarial interleaving: the heal is scheduled on the
        # clock for the *exact* instant the probe window opens (as the
        # chaos plane's auto-heal can do).  Whichever callback runs
        # first, the query after that instant must observe a consistent
        # breaker and the source must eventually recover.
        site, url, host = self._partitioned_site()
        gw = site.gateway
        entry = gw.health.health(url)
        site.clock.call_at(entry.open_until, site.network.heal)
        site.clock.advance(gw.policy.breaker_max_backoff)
        result = gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert result.ok_sources == 1 and not result.degraded
        assert gw.health.state(url) is BreakerState.CLOSED
