"""Trace-invariant harness: every query trace must be structurally sound.

The tracer threads one span per hop through the same path the deadline
already travels (gateway → request manager → dispatcher → connection
pool → driver selection → native round-trip → GMA wire).  Whatever the
scenario — clean fan-out, retries against a dead agent, hedged requests,
deadline expiry, cross-site routing — the resulting span trees must
satisfy the invariants in :mod:`repro.obs.invariants`:

* every span is closed, with ``end >= start``;
* child intervals nest within their parent's (cancelled hedge losers
  exempt: their branch timeline legitimately outlives the winner's);
* of N hedge spans under one attempt, exactly N-1 are cancelled;
* a source span's ``attempts`` attribute equals its attempt-span count;
* a deadline-exceeded span names the spending hop in its error.

The same checker runs inside the chaos soak (``ChaosReport.
trace_violations``), so the invariants hold under injected faults too,
and the golden-trace test pins the rendering: one seeded scenario must
render byte-identical across runs.
"""

import pytest

from repro.core.dispatch import FanoutDispatcher
from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.obs import Tracer, check_trace, check_tracer
from repro.obs.trace import Span
from repro.simnet.clock import VirtualClock
from repro.testbed import build_site, build_testbed

SQL = "SELECT HostName FROM Host"


def make_site(policy=None, *, n_hosts=2, agents=("snmp",), seed=3):
    network, (site,) = build_testbed(
        n_hosts=n_hosts, agents=agents, seed=seed, policy=policy
    )
    network.clock.advance(5.0)
    return site


def assert_clean(tracer):
    violations = check_tracer(tracer)
    assert violations == [], "\n".join(violations)


# ----------------------------------------------------------------------
# The invariant checker itself (unit level)
# ----------------------------------------------------------------------
class TestChecker:
    def _trace(self):
        tracer = Tracer(VirtualClock())
        with tracer.start_trace("query"):
            with tracer.span("execute"):
                pass
        return tracer.last()

    def test_clean_trace_passes(self):
        assert check_trace(self._trace()) == []

    def test_unclosed_span_flagged(self):
        trace = self._trace()
        trace.spans[1].end = None
        assert any("never closed" in v for v in check_trace(trace))

    def test_reversed_interval_flagged(self):
        trace = self._trace()
        trace.spans[1].end = trace.spans[1].start - 1.0
        assert any("ends before" in v for v in check_trace(trace))

    def test_child_escaping_parent_flagged(self):
        trace = self._trace()
        root = trace.root
        child = trace.spans[1]
        child.end = root.end + 5.0
        assert any("outlives parent" in v for v in check_trace(trace))

    def test_cancelled_child_may_outlive_parent(self):
        trace = self._trace()
        child = trace.spans[1]
        child.end = trace.root.end + 5.0
        child.cancel()
        assert check_trace(trace) == []

    def test_hedge_accounting_flagged(self):
        tracer = Tracer(VirtualClock())
        with tracer.start_trace("query"):
            with tracer.span("attempt", index=1):
                with tracer.span("hedge", index=0):
                    pass
                with tracer.span("hedge", index=1):
                    pass
        # Neither hedge cancelled: exactly-one-loser violated.
        assert any("hedge" in v for v in check_tracer(tracer))

    def test_attempt_count_mismatch_flagged(self):
        tracer = Tracer(VirtualClock())
        with tracer.start_trace("query"):
            with tracer.span("source", url="u") as span:
                with tracer.span("attempt", index=1):
                    pass
                span.annotate(attempts=3)
        assert any("attempts" in v for v in check_tracer(tracer))

    def test_deadline_span_must_name_spender(self):
        tracer = Tracer(VirtualClock())
        with tracer.start_trace("query"):
            with tracer.span("source", url="u") as span:
                span.status = "deadline_exceeded"
                span.error = ""
        assert any("deadline" in v for v in check_tracer(tracer))


# ----------------------------------------------------------------------
# Live-gateway scenarios
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_clean_fanout_query(self):
        site = make_site(n_hosts=3)
        gw = site.gateway
        result = gw.query(site.source_urls, SQL, mode=QueryMode.REALTIME)
        assert result.trace_id
        trace = gw.tracer.get(result.trace_id)
        assert trace is not None
        assert trace.root.name == "query"
        names = {s.name for s in trace.spans}
        assert {"query", "execute", "source", "attempt", "native"} <= names
        assert_clean(gw.tracer)

    def test_every_span_closed_even_after_failure(self):
        site = make_site(GatewayPolicy(breaker_failure_threshold=10))
        gw = site.gateway
        url = site.url_for("snmp")
        gw.query(url, SQL, mode=QueryMode.REALTIME)  # warm driver cache
        site.network.close(site.agents["snmp"][0].address)
        result = gw.query(url, SQL, mode=QueryMode.REALTIME)
        assert result.failed_sources == 1
        for trace in gw.tracer.traces():
            assert all(s.closed for s in trace.spans)
        assert_clean(gw.tracer)

    def test_span_count_equals_retry_attempts(self):
        site = make_site(
            GatewayPolicy(
                retry_attempts=3, retry_budget=10, breaker_failure_threshold=10
            )
        )
        gw = site.gateway
        url = site.url_for("snmp")
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        site.network.close(site.agents["snmp"][0].address)
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        trace = gw.tracer.last()
        source = trace.find_span("source")
        attempts = [s for s in trace.spans if s.name == "attempt"]
        assert source.attrs["attempts"] == 3
        assert len(attempts) == 3
        assert [s.attrs["index"] for s in attempts] == [1, 2, 3]
        assert_clean(gw.tracer)

    def test_cache_hit_annotated(self):
        site = make_site()
        gw = site.gateway
        url = site.url_for("snmp")
        gw.query(url, SQL, mode=QueryMode.REALTIME)
        gw.query(url, SQL, mode=QueryMode.CACHED_OK)
        trace = gw.tracer.last()
        assert trace.find_span("source").attrs["cache"] == "hit"
        assert_clean(gw.tracer)

    def test_deadline_exceeded_names_spending_span(self):
        site = make_site(n_hosts=3)
        gw = site.gateway
        # A budget big enough to dispatch the first source but not the
        # rest (serial dispatch: fan-out disabled).
        policy = GatewayPolicy(fanout_enabled=False)
        site2 = make_site(policy, n_hosts=3)
        gw = site2.gateway
        result = gw.query(
            site2.source_urls, SQL, mode=QueryMode.REALTIME, timeout=0.0011
        )
        assert any("deadline" in (s.error or "") for s in result.statuses)
        trace = gw.tracer.last()
        blamed = [s for s in trace.spans if s.status == "deadline_exceeded"]
        assert blamed, "no span blamed for the blown deadline"
        assert all(s.error for s in blamed)
        assert_clean(gw.tracer)

    def test_trace_disabled_by_policy(self):
        site = make_site(GatewayPolicy(tracing_enabled=False))
        gw = site.gateway
        result = gw.query(site.url_for("snmp"), SQL, mode=QueryMode.REALTIME)
        assert result.trace_id == ""
        assert gw.tracer.traces() == []

    def test_trace_retention_bounded(self):
        site = make_site(GatewayPolicy(trace_max_traces=4))
        gw = site.gateway
        url = site.url_for("snmp")
        for _ in range(7):
            gw.query(url, SQL, mode=QueryMode.CACHED_OK)
        assert len(gw.tracer.traces()) == 4
        assert gw.tracer.get("q1") is None  # evicted
        assert gw.tracer.get("q7") is not None


# ----------------------------------------------------------------------
# Hedged losers
# ----------------------------------------------------------------------
class TestHedgeSpans:
    def _dispatcher(self):
        clock = VirtualClock()
        policy = GatewayPolicy(
            hedge_enabled=True,
            hedge_min_samples=1,
            hedge_min_delay=0.0,
            hedge_percentile=95.0,
        )
        tracer = Tracer(clock)
        return clock, tracer, FanoutDispatcher(clock, policy, tracer=tracer)

    def test_losing_hedge_marked_cancelled(self):
        clock, tracer, dispatcher = self._dispatcher()
        dispatcher._note_latency("src", 0.1)

        def fetch():
            clock.advance(1.0)
            return "slow-primary"

        with tracer.start_trace("query"):
            with tracer.span("attempt", index=1):
                dispatcher.run_flight("src", SQL, fetch)
        assert dispatcher.stats.hedges_fired == 1
        trace = tracer.last()
        hedges = [s for s in trace.spans if s.name == "hedge"]
        assert len(hedges) == 2
        assert sum(1 for h in hedges if h.status == "cancelled") == 1
        assert_clean(tracer)

    def test_no_hedge_no_hedge_spans(self):
        clock, tracer, dispatcher = self._dispatcher()
        dispatcher._note_latency("src", 0.1)
        with tracer.start_trace("query"):
            dispatcher.run_flight("src", SQL, lambda: "fast")
        assert dispatcher.stats.hedges_fired == 0
        assert all(s.name != "hedge" for s in tracer.last().spans)
        assert_clean(tracer)


# ----------------------------------------------------------------------
# Cross-site (GMA) traces
# ----------------------------------------------------------------------
class TestRemoteTraces:
    def _fabric(self):
        from repro.gma.directory import GMADirectory
        from repro.gma.global_layer import GlobalLayer
        from repro.simnet.network import Network

        clock = VirtualClock()
        network = Network(clock, seed=41)
        a = build_site(network, name="site-a", n_hosts=2, agents=("snmp",), seed=1)
        b = build_site(network, name="site-b", n_hosts=2, agents=("snmp",), seed=2)
        clock.advance(20.0)
        directory = GMADirectory(network)
        GlobalLayer(a.gateway, directory)
        GlobalLayer(b.gateway, directory)
        return a, b

    def test_remote_query_reparents_at_remote_site(self):
        a, b = self._fabric()
        remote_url = str(b.gateway.sources()[0].url)
        result = a.gateway.query(remote_url, SQL, mode=QueryMode.REALTIME)
        assert result.ok_sources >= 1
        local = a.gateway.tracer.get(result.trace_id)
        wire = local.find_span("wire")
        assert wire is not None and wire.attrs["remote_trace"]
        remote = b.gateway.tracer.get(wire.attrs["remote_trace"])
        assert remote is not None
        # The remote trace records where in the caller's trace it hangs.
        assert remote.root.attrs["remote_trace"] == local.trace_id
        assert remote.root.attrs["remote_span"] == wire.parent_id
        assert_clean(a.gateway.tracer)
        assert_clean(b.gateway.tracer)


# ----------------------------------------------------------------------
# Chaos soak: the invariants hold under injected faults
# ----------------------------------------------------------------------
class TestChaosSoak:
    def test_invariants_under_standard_chaos(self):
        from repro.chaos import run_chaos

        report = run_chaos(seed=5, rounds=8, warmup_rounds=4, period=10.0)
        assert report.traces_checked == 12
        assert report.trace_violations == [], "\n".join(report.trace_violations)

    def test_invariants_with_hedging_off(self):
        from repro.chaos import run_chaos

        report = run_chaos(
            seed=5, rounds=8, warmup_rounds=4, period=10.0, hedging=False
        )
        assert report.trace_violations == []


# ----------------------------------------------------------------------
# Golden trace: the rendering is deterministic
# ----------------------------------------------------------------------
class TestGoldenTrace:
    def _render(self):
        site = make_site(n_hosts=2, seed=42)
        gw = site.gateway
        result = gw.query(site.source_urls, SQL, mode=QueryMode.REALTIME)
        return gw.tracer.get(result.trace_id).render()

    def test_byte_identical_across_runs(self):
        first = self._render()
        second = self._render()
        assert first == second
        assert first.startswith("trace q1 · query ·")

    def test_handbuilt_trace_renders_exactly(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.start_trace("query", sql=SQL) as root:
            with tracer.span("execute", sources=1):
                with tracer.span("source", url="jdbc:snmp://h0/system"):
                    clock.advance(0.25)
            root.annotate(rows=1)
        assert tracer.last().render() == (
            "trace q1 · query · 0.250000s\n"
            "query [+0.000000s → +0.250000s] rows=1 sql=SELECT HostName FROM Host\n"
            "└─ execute [+0.000000s → +0.250000s] sources=1\n"
            "   └─ source [+0.000000s → +0.250000s] url=jdbc:snmp://h0/system\n"
        )


# ----------------------------------------------------------------------
# Span basics
# ----------------------------------------------------------------------
class TestSpan:
    def test_setitem_and_annotate(self):
        span = Span(1, "s", None, 0.0)
        span["a"] = 1
        span.annotate(b=2)
        assert span.attrs == {"a": 1, "b": 2}

    def test_fail_records_error_and_status(self):
        span = Span(1, "s", None, 0.0)
        span.fail(ValueError("boom"))
        assert span.status == "error" and "boom" in span.error

    def test_exception_inside_span_recorded_and_closed(self):
        tracer = Tracer(VirtualClock())
        with pytest.raises(RuntimeError):
            with tracer.start_trace("query"):
                with tracer.span("source"):
                    raise RuntimeError("agent exploded")
        trace = tracer.last()
        source = trace.find_span("source")
        assert source.closed and source.status == "error"
        assert trace.root.status == "error"
        assert check_trace(trace) == []
