"""The GRM50x determinism sanitizer rules, and registry coverage."""

import ast
import re

import pytest

from repro.analysis.determinism import DETERMINISM_RULE_IDS
from repro.analysis.races import RACE_RULE_DOCS, RACE_RULE_IDS
from repro.analysis.rules import ModuleContext, all_rules, rule_table, rules_by_id


def run_rule(rule_id, source):
    module = ModuleContext(path="<test>", source=source, tree=ast.parse(source))
    (rule,) = rules_by_id([rule_id])
    return list(rule.check(module))


def rule_ids(rule_id, source):
    return [f.rule_id for f in run_rule(rule_id, source)]


class TestRegistryCoverage:
    """Every GRMxxx id: unique, documented, reachable."""

    def test_ids_are_well_formed_and_unique(self):
        ids = [r.rule_id for r in all_rules()]
        assert len(ids) == len(set(ids))
        for rid in ids:
            assert re.fullmatch(r"GRM\d{3}", rid), rid

    def test_every_rule_is_documented(self):
        for rid, severity, title in rule_table():
            assert title.strip(), f"{rid} has no title"
            assert severity in ("error", "warning", "info")

    def test_determinism_family_registered(self):
        registered = {r.rule_id for r in all_rules()}
        assert set(DETERMINISM_RULE_IDS) <= registered

    def test_race_ids_documented_and_disjoint_from_static(self):
        static = {r.rule_id for r in all_rules()}
        assert not static & set(RACE_RULE_IDS)
        for rid in RACE_RULE_IDS:
            assert re.fullmatch(r"GRM\d{3}", rid), rid
            assert RACE_RULE_DOCS[rid].strip()

    def test_every_determinism_rule_is_reachable(self):
        # One golden positive per rule proves the check body runs.
        positives = {
            "GRM501": "import time\nt = time.monotonic_ns()\n",
            "GRM502": "import random\nx = random.random()\n",
            "GRM503": "s = {1, 2}\nfor x in s:\n    print(x)\n",
            "GRM504": "k = id(object())\n",
            "GRM505": "import os\nb = os.urandom(8)\n",
        }
        assert set(positives) == set(DETERMINISM_RULE_IDS)
        for rid, src in positives.items():
            assert rule_ids(rid, src) == [rid]


class TestExtendedWallClock:
    def test_long_tail_accessors_flagged(self):
        src = (
            "import time, os\n"
            "a = time.process_time()\n"
            "b = time.localtime()\n"
            "c = os.times()\n"
        )
        assert rule_ids("GRM501", src) == ["GRM501"] * 3

    def test_date_today_flagged(self):
        src = "from datetime import date\nd = date.today()\n"
        assert rule_ids("GRM501", src) == ["GRM501"]

    def test_virtual_clock_calls_pass(self):
        src = "t = clock.now()\nclock.advance(3.0)\n"
        assert run_rule("GRM501", src) == []

    def test_allowlist_escape_same_line(self):
        src = "import time\nt = time.monotonic_ns()  # grm: allow-wallclock\n"
        assert run_rule("GRM501", src) == []

    def test_allowlist_escape_preceding_comment(self):
        src = (
            "import time\n"
            "# grm: allow-wallclock -- profiling only, not simulation input\n"
            "t = time.process_time()\n"
        )
        assert run_rule("GRM501", src) == []

    def test_wrong_tag_does_not_escape(self):
        src = "import time\nt = time.monotonic_ns()  # grm: allow-random\n"
        assert rule_ids("GRM501", src) == ["GRM501"]


class TestUnseededRandom:
    def test_module_level_call_flagged(self):
        assert rule_ids("GRM502", "import random\nx = random.choice(xs)\n") == [
            "GRM502"
        ]

    def test_import_alias_tracked(self):
        src = "import random as rnd\nx = rnd.random()\n"
        assert rule_ids("GRM502", src) == ["GRM502"]

    def test_from_import_flagged(self):
        src = "from random import choice, shuffle\n"
        assert rule_ids("GRM502", src) == ["GRM502"]

    def test_unseeded_constructor_flagged(self):
        assert rule_ids("GRM502", "import random\nr = random.Random()\n") == [
            "GRM502"
        ]
        assert rule_ids(
            "GRM502", "from random import Random\nr = Random()\n"
        ) == ["GRM502"]

    def test_seeded_constructor_passes(self):
        assert run_rule("GRM502", "import random\nr = random.Random(42)\n") == []
        assert run_rule(
            "GRM502", "from random import Random\nr = Random(seed)\n"
        ) == []

    def test_system_random_left_to_grm505(self):
        src = "import random\nr = random.SystemRandom()\n"
        assert run_rule("GRM502", src) == []
        assert rule_ids("GRM505", src) == ["GRM505"]

    def test_allowlist_escape(self):
        src = "import random\nx = random.random()  # grm: allow-random\n"
        assert run_rule("GRM502", src) == []


class TestSetIterationOrder:
    def test_for_loop_over_set_literal(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert rule_ids("GRM503", src) == ["GRM503"]

    def test_for_loop_over_tracked_set_name(self):
        src = "seen = set()\nfor x in seen:\n    print(x)\n"
        assert rule_ids("GRM503", src) == ["GRM503"]

    def test_set_algebra_tracked(self):
        src = "both = set(a) | set(b)\nout = [x for x in both]\n"
        assert rule_ids("GRM503", src) == ["GRM503"]

    def test_join_and_list_sinks(self):
        src = "s = {1}\na = list(s)\nb = ','.join(s)\n"
        assert rule_ids("GRM503", src) == ["GRM503"] * 2

    def test_set_pop_flagged(self):
        src = "s = {1, 2}\nx = s.pop()\n"
        assert rule_ids("GRM503", src) == ["GRM503"]

    def test_sorted_wrapper_passes(self):
        src = "s = {1, 2}\nfor x in sorted(s):\n    print(x)\n"
        assert run_rule("GRM503", src) == []

    def test_order_insensitive_sinks_pass(self):
        src = (
            "s = {1, 2}\n"
            "n = len(s)\n"
            "t = sum(v for v in s)\n"
            "m = max(s)\n"
            "ok = any(v > 1 for v in s)\n"
        )
        assert run_rule("GRM503", src) == []

    def test_reassigned_name_is_forgotten(self):
        src = "s = {1}\ns = [1]\nfor x in s:\n    print(x)\n"
        assert run_rule("GRM503", src) == []

    def test_list_iteration_passes(self):
        src = "xs = [1, 2]\nfor x in xs:\n    print(x)\n"
        assert run_rule("GRM503", src) == []

    def test_function_scopes_are_independent(self):
        src = (
            "def a():\n"
            "    s = {1}\n"
            "    return list(s)\n"
            "def b():\n"
            "    s = [1]\n"
            "    return list(s)\n"
        )
        assert rule_ids("GRM503", src) == ["GRM503"]

    def test_allowlist_escape(self):
        src = "s = {1}\nfor x in s:  # grm: allow-set-order\n    print(x)\n"
        assert run_rule("GRM503", src) == []


class TestIdentityOrder:
    def test_plain_id_call_flagged(self):
        assert rule_ids("GRM504", "k = id(obj)\n") == ["GRM504"]

    def test_id_as_sort_key(self):
        assert rule_ids("GRM504", "out = sorted(xs, key=id)\n") == ["GRM504"]

    def test_hash_inside_lambda_key(self):
        src = "out = sorted(xs, key=lambda o: (hash(o), o))\n"
        assert rule_ids("GRM504", src) == ["GRM504"]

    def test_stable_keys_pass(self):
        src = "out = sorted(xs, key=len)\nout2 = sorted(xs, key=lambda o: o.name)\n"
        assert run_rule("GRM504", src) == []

    def test_allowlist_escape(self):
        src = "k = id(obj)  # grm: allow-id-order\n"
        assert run_rule("GRM504", src) == []


class TestEntropySource:
    @pytest.mark.parametrize(
        "src",
        [
            "import os\nb = os.urandom(16)\n",
            "import uuid\nu = uuid.uuid4()\n",
            "import uuid\nu = uuid.uuid1()\n",
            "import random\nr = random.SystemRandom()\n",
            "import secrets\n",
            "from secrets import token_hex\n",
            "from os import urandom\n",
            "from uuid import uuid4\n",
        ],
    )
    def test_entropy_sources_flagged(self, src):
        assert rule_ids("GRM505", src) == ["GRM505"]

    def test_seed_derived_values_pass(self):
        src = "import uuid\nu = uuid.UUID(int=rng.getrandbits(128))\n"
        assert run_rule("GRM505", src) == []

    def test_allowlist_escape(self):
        src = "import os\nb = os.urandom(16)  # grm: allow-entropy\n"
        assert run_rule("GRM505", src) == []


class TestInjectionAcceptance:
    """ISSUE acceptance: a deliberately injected wall-clock call in a
    source tree is caught by the lint side of the sanitizer."""

    def test_injected_wall_clock_call_is_caught(self, tmp_path):
        from repro.analysis.linter import lint_paths

        bad = tmp_path / "driver_patch.py"
        bad.write_text(
            "import time\n"
            "def fetch_group(self, group):\n"
            "    started = time.monotonic_ns()\n"
            "    return started\n"
        )
        report = lint_paths([str(tmp_path)])
        assert "GRM501" in {f.rule_id for f in report.findings}

    def test_repo_src_has_no_unallowlisted_grm5xx(self):
        from repro.analysis.linter import lint_paths, render_flat

        report = lint_paths(["src"], rules=rules_by_id(list(DETERMINISM_RULE_IDS)))
        assert report.findings == [], render_flat(report)
