"""Unit tests for the ConnectionManager pool (paper §3.1.2)."""

import pytest

from repro.agents.snmp import SnmpAgent
from repro.core.connection_manager import ConnectionManager
from repro.core.driver_manager import GridRmDriverManager
from repro.core.policy import GatewayPolicy
from repro.dbapi.registry import DriverRegistry
from repro.drivers.snmp_driver import SnmpDriver


@pytest.fixture
def agents(network, hosts):
    return [SnmpAgent(h, network) for h in hosts]


def make_cm(network, policy=None):
    policy = policy or GatewayPolicy()
    registry = DriverRegistry()
    dm = GridRmDriverManager(registry, policy)
    dm.register(SnmpDriver(network, gateway_host="gateway"))
    return ConnectionManager(dm, network.clock, policy)


URL = "jdbc:snmp://n0/x"


class TestPooling:
    def test_release_then_acquire_reuses(self, network, agents):
        cm = make_cm(network)
        conn = cm.acquire(URL)
        cm.release(conn)
        again = cm.acquire(URL)
        assert again is conn
        assert cm.stats["reused"] == 1 and cm.stats["created"] == 1

    def test_pooling_avoids_connect_cost(self, network, agents):
        cm = make_cm(network)
        cm.release(cm.acquire(URL))
        t0 = network.clock.now()
        cm.release(cm.acquire(URL))
        assert network.clock.now() == t0  # no network traffic at all

    def test_unpooled_always_creates(self, network, agents):
        cm = make_cm(network, GatewayPolicy(pool_enabled=False))
        c1 = cm.acquire(URL)
        cm.release(c1)
        assert c1.is_closed()
        c2 = cm.acquire(URL)
        assert c2 is not c1
        assert cm.stats["created"] == 2

    def test_pool_capacity_closes_extras(self, network, agents):
        cm = make_cm(network, GatewayPolicy(pool_max_per_source=1))
        c1, c2 = cm.acquire(URL), cm.acquire(URL)
        cm.release(c1)
        cm.release(c2)
        assert cm.idle_count(URL) == 1
        assert c2.is_closed()
        assert cm.stats["evicted_capacity"] == 1

    def test_pools_keyed_per_source(self, network, agents):
        cm = make_cm(network)
        a = cm.acquire("jdbc:snmp://n0/x")
        b = cm.acquire("jdbc:snmp://n1/x")
        cm.release(a)
        cm.release(b)
        assert cm.idle_count("jdbc:snmp://n0/x") == 1
        assert cm.idle_count("jdbc:snmp://n1/x") == 1
        assert cm.idle_count() == 2

    def test_released_closed_connection_not_pooled(self, network, agents):
        cm = make_cm(network)
        conn = cm.acquire(URL)
        conn.close()
        cm.release(conn)
        assert cm.idle_count(URL) == 0

    def test_close_all(self, network, agents):
        cm = make_cm(network)
        conns = [cm.acquire(URL) for _ in range(3)]
        for c in conns:
            cm.release(c)
        assert cm.close_all() == 3
        assert cm.idle_count() == 0


class TestPoolIsolation:
    def test_pools_isolated_per_protocol_on_same_endpoint(self, network, hosts):
        """Regression: two agents on the same host with default ports and
        identical paths must NOT share pooled connections — a Ganglia
        session handed to a jdbc:scms:// query would answer with the
        wrong driver entirely."""
        from repro.agents.ganglia import GangliaAgent
        from repro.agents.scms import ScmsAgent
        from repro.drivers.ganglia_driver import GangliaDriver
        from repro.drivers.scms_driver import ScmsDriver

        GangliaAgent("cl", hosts, network)
        ScmsAgent("cl", hosts, network)
        policy = GatewayPolicy()
        dm = GridRmDriverManager(DriverRegistry(), policy)
        dm.register(GangliaDriver(network, gateway_host="gateway"))
        dm.register(ScmsDriver(network, gateway_host="gateway"))
        cm = ConnectionManager(dm, network.clock, policy)

        host = hosts[0].spec.name
        g_url = f"jdbc:ganglia://{host}/cluster"
        s_url = f"jdbc:scms://{host}/cluster"
        g_conn = cm.acquire(g_url)
        cm.release(g_conn)
        s_conn = cm.acquire(s_url)
        assert s_conn is not g_conn
        assert s_conn.driver.name() == "JDBC-SCMS"
        assert g_conn.driver.name() == "JDBC-Ganglia"


class TestRevalidation:
    def test_fresh_idle_reused_without_probe(self, network, agents):
        cm = make_cm(network)
        driver = cm.driver_manager.driver_by_name("JDBC-SNMP")
        cm.release(cm.acquire(URL))
        probes = driver.stats["probes"]
        cm.acquire(URL)
        assert driver.stats["probes"] == probes

    def test_stale_idle_revalidated(self, network, agents):
        cm = make_cm(network, GatewayPolicy(pool_idle_ttl=10.0))
        driver = cm.driver_manager.driver_by_name("JDBC-SNMP")
        cm.release(cm.acquire(URL))
        network.clock.advance(11.0)
        probes = driver.stats["probes"]
        conn = cm.acquire(URL)
        assert driver.stats["probes"] == probes + 1
        assert not conn.is_closed()
        assert cm.stats["revalidated"] == 1

    def test_stale_invalid_replaced(self, network, agents):
        cm = make_cm(network, GatewayPolicy(pool_idle_ttl=10.0))
        first = cm.acquire(URL)
        cm.release(first)
        network.clock.advance(11.0)
        network.close(agents[0].address)  # agent gone
        # Revalidation fails; a new connect is attempted and also fails.
        from repro.core.errors import DataSourceError

        with pytest.raises(DataSourceError):
            cm.acquire(URL)
        assert first.is_closed()
        assert cm.stats["evicted_invalid"] == 1


class TestContextManager:
    def test_happy_path_releases(self, network, agents):
        cm = make_cm(network)
        with cm.connection(URL) as conn:
            assert not conn.is_closed()
        assert cm.idle_count(URL) == 1

    def test_exception_discards(self, network, agents):
        cm = make_cm(network)
        with pytest.raises(RuntimeError):
            with cm.connection(URL):
                raise RuntimeError("query blew up")
        assert cm.idle_count(URL) == 0
