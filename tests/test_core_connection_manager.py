"""Unit tests for the ConnectionManager pool (paper §3.1.2)."""

import pytest

from repro.agents.snmp import SnmpAgent
from repro.core.connection_manager import ConnectionManager
from repro.core.driver_manager import GridRmDriverManager
from repro.core.policy import GatewayPolicy
from repro.dbapi.registry import DriverRegistry
from repro.drivers.snmp_driver import SnmpDriver


@pytest.fixture
def agents(network, hosts):
    return [SnmpAgent(h, network) for h in hosts]


def make_cm(network, policy=None):
    policy = policy or GatewayPolicy()
    registry = DriverRegistry()
    dm = GridRmDriverManager(registry, policy)
    dm.register(SnmpDriver(network, gateway_host="gateway"))
    return ConnectionManager(dm, network.clock, policy)


URL = "jdbc:snmp://n0/x"


class TestPooling:
    def test_release_then_acquire_reuses(self, network, agents):
        cm = make_cm(network)
        conn = cm.acquire(URL)
        cm.release(conn)
        again = cm.acquire(URL)
        assert again is conn
        assert cm.stats["reused"] == 1 and cm.stats["created"] == 1

    def test_pooling_avoids_connect_cost(self, network, agents):
        cm = make_cm(network)
        cm.release(cm.acquire(URL))
        t0 = network.clock.now()
        cm.release(cm.acquire(URL))
        assert network.clock.now() == t0  # no network traffic at all

    def test_unpooled_always_creates(self, network, agents):
        cm = make_cm(network, GatewayPolicy(pool_enabled=False))
        c1 = cm.acquire(URL)
        cm.release(c1)
        assert c1.is_closed()
        c2 = cm.acquire(URL)
        assert c2 is not c1
        assert cm.stats["created"] == 2

    def test_pool_capacity_closes_extras(self, network, agents):
        cm = make_cm(network, GatewayPolicy(pool_max_per_source=1))
        c1, c2 = cm.acquire(URL), cm.acquire(URL)
        cm.release(c1)
        cm.release(c2)
        assert cm.idle_count(URL) == 1
        assert c2.is_closed()
        assert cm.stats["evicted_capacity"] == 1

    def test_pools_keyed_per_source(self, network, agents):
        cm = make_cm(network)
        a = cm.acquire("jdbc:snmp://n0/x")
        b = cm.acquire("jdbc:snmp://n1/x")
        cm.release(a)
        cm.release(b)
        assert cm.idle_count("jdbc:snmp://n0/x") == 1
        assert cm.idle_count("jdbc:snmp://n1/x") == 1
        assert cm.idle_count() == 2

    def test_released_closed_connection_not_pooled(self, network, agents):
        cm = make_cm(network)
        conn = cm.acquire(URL)
        conn.close()
        cm.release(conn)
        assert cm.idle_count(URL) == 0

    def test_close_all(self, network, agents):
        cm = make_cm(network)
        conns = [cm.acquire(URL) for _ in range(3)]
        for c in conns:
            cm.release(c)
        assert cm.close_all() == 3
        assert cm.idle_count() == 0

    def test_close_all_counts_only_open_entries(self, network, agents):
        """An entry something else already closed under us is drained
        but not reported as closed by the shutdown sweep."""
        cm = make_cm(network)
        conns = [cm.acquire(URL) for _ in range(3)]
        for c in conns:
            cm.release(c)
        conns[0].close()
        assert cm.close_all() == 2
        assert cm.idle_count() == 0
        assert all(c.is_closed() for c in conns)


class TestPoolIsolation:
    def test_pools_isolated_per_protocol_on_same_endpoint(self, network, hosts):
        """Regression: two agents on the same host with default ports and
        identical paths must NOT share pooled connections — a Ganglia
        session handed to a jdbc:scms:// query would answer with the
        wrong driver entirely."""
        from repro.agents.ganglia import GangliaAgent
        from repro.agents.scms import ScmsAgent
        from repro.drivers.ganglia_driver import GangliaDriver
        from repro.drivers.scms_driver import ScmsDriver

        GangliaAgent("cl", hosts, network)
        ScmsAgent("cl", hosts, network)
        policy = GatewayPolicy()
        dm = GridRmDriverManager(DriverRegistry(), policy)
        dm.register(GangliaDriver(network, gateway_host="gateway"))
        dm.register(ScmsDriver(network, gateway_host="gateway"))
        cm = ConnectionManager(dm, network.clock, policy)

        host = hosts[0].spec.name
        g_url = f"jdbc:ganglia://{host}/cluster"
        s_url = f"jdbc:scms://{host}/cluster"
        g_conn = cm.acquire(g_url)
        cm.release(g_conn)
        s_conn = cm.acquire(s_url)
        assert s_conn is not g_conn
        assert s_conn.driver.name() == "JDBC-SCMS"
        assert g_conn.driver.name() == "JDBC-Ganglia"


class TestRevalidation:
    def test_fresh_idle_reused_without_probe(self, network, agents):
        cm = make_cm(network)
        driver = cm.driver_manager.driver_by_name("JDBC-SNMP")
        cm.release(cm.acquire(URL))
        probes = driver.stats["probes"]
        cm.acquire(URL)
        assert driver.stats["probes"] == probes

    def test_stale_idle_revalidated(self, network, agents):
        cm = make_cm(network, GatewayPolicy(pool_idle_ttl=10.0))
        driver = cm.driver_manager.driver_by_name("JDBC-SNMP")
        cm.release(cm.acquire(URL))
        network.clock.advance(11.0)
        probes = driver.stats["probes"]
        conn = cm.acquire(URL)
        assert driver.stats["probes"] == probes + 1
        assert not conn.is_closed()
        assert cm.stats["revalidated"] == 1

    def test_stale_invalid_replaced(self, network, agents):
        cm = make_cm(network, GatewayPolicy(pool_idle_ttl=10.0))
        first = cm.acquire(URL)
        cm.release(first)
        network.clock.advance(11.0)
        network.close(agents[0].address)  # agent gone
        # Revalidation fails; a new connect is attempted and also fails.
        from repro.core.errors import DataSourceError

        with pytest.raises(DataSourceError):
            cm.acquire(URL)
        assert first.is_closed()
        assert cm.stats["evicted_invalid"] == 1


def make_health_cm(network, policy=None):
    from repro.core.health import HealthTracker

    policy = policy or GatewayPolicy(
        breaker_failure_threshold=2,
        breaker_base_backoff=30.0,
        breaker_max_backoff=60.0,
    )
    registry = DriverRegistry()
    health = HealthTracker(network.clock, policy)
    dm = GridRmDriverManager(registry, policy, health=health)
    dm.register(SnmpDriver(network, gateway_host="gateway"))
    return ConnectionManager(dm, network.clock, policy, health=health), health


class TestReleaseValidation:
    def test_release_quarantined_source_closes(self, network, agents):
        cm, health = make_health_cm(network)
        conn = cm.acquire(URL)
        health.record_failure(URL)
        health.record_failure(URL)  # trips the breaker
        cm.release(conn)
        assert conn.is_closed()
        assert cm.idle_count(URL) == 0
        assert cm.stats["quarantined"] == 1

    def test_release_after_failure_probes_and_evicts_dead(self, network, agents):
        cm, health = make_health_cm(network)
        conn = cm.acquire(URL)
        health.record_failure(URL)  # one failure: not tripped, but suspect
        network.set_host_up("n0", False)
        cm.release(conn)
        assert conn.is_closed()
        assert cm.idle_count(URL) == 0
        assert cm.stats["evicted_unhealthy"] == 1

    def test_release_after_failure_pools_if_probe_passes(self, network, agents):
        cm, health = make_health_cm(network)
        conn = cm.acquire(URL)
        health.record_failure(URL)
        cm.release(conn)  # the validation probe succeeds: pool it
        assert not conn.is_closed()
        assert cm.idle_count(URL) == 1

    def test_healthy_release_skips_probe(self, network, agents):
        """The zero-traffic pooling fast path survives: a healthy source
        pays no validation probe on release."""
        cm, health = make_health_cm(network)
        cm.release(cm.acquire(URL))
        t0 = network.clock.now()
        cm.release(cm.acquire(URL))
        assert network.clock.now() == t0

    def test_acquire_skips_pool_while_quarantined(self, network, agents):
        from repro.core.errors import SourceQuarantinedError

        cm, health = make_health_cm(network)
        cm.release(cm.acquire(URL))
        assert cm.idle_count(URL) == 1
        health.record_failure(URL)
        health.record_failure(URL)
        with pytest.raises(SourceQuarantinedError):
            cm.acquire(URL)

    def test_quarantine_drains_idle_pool(self, network, agents):
        cm, health = make_health_cm(network)
        a, b = cm.acquire(URL), cm.acquire(URL)
        cm.release(a)
        cm.release(b)
        assert cm.quarantine(URL) == 2
        assert a.is_closed() and b.is_closed()
        assert cm.idle_count(URL) == 0
        assert cm.quarantine("gma://some-site") == 0  # non-JDBC keys are fine


class TestPoolChurn:
    def test_interleaved_churn_preserves_invariants(self, network, agents):
        """Property-style stress: random acquire/release/discard traffic
        with host failures injected must never hand out a closed
        connection, corrupt idle counts, or move stats backwards."""
        import random

        policy = GatewayPolicy(
            pool_max_per_source=2,
            breaker_failure_threshold=3,
            breaker_base_backoff=10.0,
            breaker_max_backoff=20.0,
        )
        cm, health = make_health_cm(network, policy)
        rng = random.Random(1234)
        urls = [f"jdbc:snmp://n{i}/x" for i in range(4)]
        held = []
        prev_stats = dict(cm.stats)
        acquired = released = failures = 0

        from repro.core.errors import DataSourceError

        for step in range(300):
            op = rng.random()
            url = rng.choice(urls)
            if op < 0.10:  # toggle a host's liveness
                host = url.split("//")[1].split("/")[0]
                network.set_host_up(host, rng.random() < 0.5)
            elif op < 0.55:  # acquire
                try:
                    conn = cm.acquire(url)
                except DataSourceError:
                    failures += 1
                else:
                    assert not conn.is_closed(), "pool handed out a closed conn"
                    held.append(conn)
                    acquired += 1
            elif held and op < 0.85:  # release
                cm.release(held.pop(rng.randrange(len(held))))
                released += 1
            elif held:  # discard
                cm.discard(held.pop(rng.randrange(len(held))))
            if op < 0.05:
                network.clock.advance(rng.uniform(0.0, 15.0))
            # Invariants, every step:
            for url_key in urls:
                assert 0 <= cm.idle_count(url_key) <= policy.pool_max_per_source
            assert cm.idle_count() == sum(cm.idle_count(u) for u in urls)
            for key, value in cm.stats.items():
                assert value >= prev_stats[key], f"stat {key} went backwards"
            prev_stats = dict(cm.stats)

        assert acquired >= 30 and released >= 10 and failures > 0
        assert cm.stats["acquires"] == acquired + failures
        # Pooled connections left idle are all still open.
        for entries in cm._idle.values():
            for entry in entries:
                assert not entry.connection.is_closed()
        idle_total = cm.idle_count()
        assert cm.close_all() == idle_total  # every idle entry was open
        assert cm.idle_count() == 0


class TestContextManager:
    def test_happy_path_releases(self, network, agents):
        cm = make_cm(network)
        with cm.connection(URL) as conn:
            assert not conn.is_closed()
        assert cm.idle_count(URL) == 1

    def test_exception_discards(self, network, agents):
        cm = make_cm(network)
        with pytest.raises(RuntimeError):
            with cm.connection(URL):
                raise RuntimeError("query blew up")
        assert cm.idle_count(URL) == 0
