"""Unit tests for session management."""

import pytest

from repro.core.errors import SessionError
from repro.core.security import Principal
from repro.core.sessions import SessionManager
from repro.simnet.clock import VirtualClock

USER = Principal.with_roles("u", "user")


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def sm(clock):
    return SessionManager(clock, ttl=100.0)


class TestLifecycle:
    def test_open_and_validate(self, sm):
        s = sm.open(USER)
        assert sm.validate(s.token).principal is USER

    def test_tokens_unique(self, sm):
        assert sm.open(USER).token != sm.open(USER).token

    def test_unknown_token_rejected(self, sm):
        with pytest.raises(SessionError):
            sm.validate("nope")

    def test_close(self, sm):
        s = sm.open(USER)
        assert sm.close(s.token)
        assert not sm.close(s.token)
        with pytest.raises(SessionError):
            sm.validate(s.token)

    def test_invalid_ttl_rejected(self, clock):
        with pytest.raises(ValueError):
            SessionManager(clock, ttl=0.0)


class TestExpiry:
    def test_expires_after_idle_ttl(self, sm, clock):
        s = sm.open(USER)
        clock.advance(101.0)
        with pytest.raises(SessionError):
            sm.validate(s.token)

    def test_validation_touches_idle_timer(self, sm, clock):
        s = sm.open(USER)
        clock.advance(90.0)
        sm.validate(s.token)
        clock.advance(90.0)
        sm.validate(s.token)  # still alive: touched at t=90

    def test_sweep_removes_expired(self, sm, clock):
        sm.open(USER)
        sm.open(USER)
        clock.advance(101.0)
        live = sm.open(USER)
        assert sm.sweep() == 2
        assert sm.active_count() == 1
        sm.validate(live.token)
