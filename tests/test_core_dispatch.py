"""Unit tests for the concurrent fan-out dispatcher."""

from __future__ import annotations

import pytest

from repro.core.dispatch import FanoutDispatcher
from repro.core.errors import GridRmError
from repro.core.policy import GatewayPolicy
from repro.simnet.clock import VirtualClock


@pytest.fixture
def clock():
    return VirtualClock()


def dispatcher(clock, **policy_kwargs):
    return FanoutDispatcher(clock, GatewayPolicy(**policy_kwargs))


def work(clock, duration, value):
    def run():
        clock.advance(duration)
        return value

    return run


class TestRun:
    def test_outcomes_in_thunk_order(self, clock):
        d = dispatcher(clock)
        outcomes = d.run(
            [work(clock, 3.0, "a"), work(clock, 1.0, "b"), work(clock, 2.0, "c")]
        )
        assert [o.value for o in outcomes] == ["a", "b", "c"]
        assert [o.elapsed for o in outcomes] == [3.0, 1.0, 2.0]

    def test_elapsed_is_max_of_branches(self, clock):
        d = dispatcher(clock)
        d.run([work(clock, 3.0, None), work(clock, 5.0, None), work(clock, 1.0, None)])
        assert clock.now() == 5.0
        assert d.stats.fanouts == 1
        assert d.stats.branches == 3

    def test_serial_when_fanout_disabled(self, clock):
        d = dispatcher(clock, fanout_enabled=False)
        d.run([work(clock, 3.0, None), work(clock, 5.0, None)])
        assert clock.now() == 8.0
        assert d.stats.fanouts == 0
        assert d.stats.serial_runs == 1

    def test_single_thunk_runs_serially(self, clock):
        d = dispatcher(clock)
        outcomes = d.run([work(clock, 2.0, "only")])
        assert outcomes[0].value == "only"
        assert d.stats.fanouts == 0

    def test_empty_run(self, clock):
        assert dispatcher(clock).run([]) == []

    def test_branch_error_captured_not_raised(self, clock):
        d = dispatcher(clock)

        def boom():
            clock.advance(1.0)
            raise GridRmError("nope")

        outcomes = d.run([boom, work(clock, 2.0, "ok")])
        assert isinstance(outcomes[0].error, GridRmError)
        assert not outcomes[0].ok
        assert outcomes[1].value == "ok"
        assert clock.now() == 2.0  # the failing branch did not abort the scope

    def test_programming_error_propagates(self, clock):
        d = dispatcher(clock)
        with pytest.raises(TypeError):
            d.run([lambda: int("x", None), work(clock, 1.0, "never")])


class TestSingleFlight:
    def test_join_shares_in_flight_value(self, clock):
        d = dispatcher(clock)
        calls = []

        def fetch():
            calls.append(clock.now())
            clock.advance(2.0)
            return "rows"

        with clock.concurrent() as scope:
            with scope.branch():
                assert d.join_flight("src", "SELECT 1") is None
                d.run_flight("src", "SELECT 1", fetch)
            with scope.branch():
                flight = d.join_flight("src", "SELECT 1")
                assert flight is not None
                assert flight.value == "rows"
                # The joiner waited for the shared flight to land.
                assert clock.now() == flight.completed_at
        assert calls == [0.0]  # one real fetch
        assert d.stats.singleflight_joins == 1

    def test_join_shares_in_flight_failure(self, clock):
        d = dispatcher(clock)

        def fetch():
            clock.advance(1.0)
            raise GridRmError("agent down")

        with clock.concurrent() as scope:
            with scope.branch():
                with pytest.raises(GridRmError):
                    d.run_flight("src", "SELECT 1", fetch)
            with scope.branch():
                flight = d.join_flight("src", "SELECT 1")
                assert flight is not None
                assert isinstance(flight.error, GridRmError)

    def test_landed_flight_not_joinable(self, clock):
        d = dispatcher(clock)
        d.run_flight("src", "SELECT 1", work(clock, 1.0, "rows"))
        # Serial caller: the flight completed in the past.
        assert d.join_flight("src", "SELECT 1") is None

    def test_normalised_sql_keys_match(self, clock):
        d = dispatcher(clock)
        with clock.concurrent() as scope:
            with scope.branch():
                d.run_flight("src", "SELECT * FROM Host", work(clock, 1.0, "rows"))
            with scope.branch():
                assert d.join_flight("src", "select  *  from host;") is not None

    def test_different_sources_do_not_coalesce(self, clock):
        d = dispatcher(clock)
        with clock.concurrent() as scope:
            with scope.branch():
                d.run_flight("src-a", "SELECT 1", work(clock, 1.0, "rows"))
            with scope.branch():
                assert d.join_flight("src-b", "SELECT 1") is None

    def test_disabled_by_policy(self, clock):
        d = dispatcher(clock, singleflight_enabled=False)
        with clock.concurrent() as scope:
            with scope.branch():
                d.run_flight("src", "SELECT 1", work(clock, 1.0, "rows"))
            with scope.branch():
                assert d.join_flight("src", "SELECT 1") is None


class TestConcurrencyCap:
    def test_cap_queues_excess_requests(self, clock):
        d = dispatcher(clock, max_concurrent_per_source=2)
        starts = []

        def fetch(i):
            def run():
                starts.append(clock.now())
                clock.advance(4.0)
                return i

            return run

        with clock.concurrent() as scope:
            for i in range(3):
                with scope.branch():
                    # Distinct SQL per branch: no single-flight, so the
                    # third request must wait for a slot.
                    d.run_flight("src", f"SELECT {i}", fetch(i))
        assert starts == [0.0, 0.0, 4.0]
        assert clock.now() == 8.0
        assert d.stats.cap_waits == 1
        assert d.stats.cap_wait_time == 4.0

    def test_unlimited_when_cap_zero(self, clock):
        d = dispatcher(clock, max_concurrent_per_source=0)
        with clock.concurrent() as scope:
            for i in range(6):
                with scope.branch():
                    d.run_flight("src", f"SELECT {i}", work(clock, 4.0, i))
        assert clock.now() == 4.0
        assert d.stats.cap_waits == 0

    def test_inflight_counts_live_requests(self, clock):
        d = dispatcher(clock, max_concurrent_per_source=0)
        with clock.concurrent() as scope:
            with scope.branch():
                d.run_flight("src", "SELECT 1", work(clock, 5.0, None))
            with scope.branch():
                assert d.inflight("src") == 1
        # After the join everything has landed.
        assert d.inflight("src") == 0
