"""Unit tests for the networked SQL data source."""

import pytest

from repro.agents.sqlagent import SqlAgent, seed_site_database
from repro.sql.database import Database


@pytest.fixture
def db(network, hosts):
    return seed_site_database(hosts, network, refresh_period=30.0)


@pytest.fixture
def agent(network, db):
    return SqlAgent(db, network, "n0")


class TestSeededDatabase:
    def test_hosts_table_populated(self, db, hosts):
        result = db.query("SELECT name FROM hosts ORDER BY name")
        assert [r[0] for r in result.rows] == [h.spec.name for h in hosts]

    def test_hosts_refreshed_periodically(self, network, db):
        before = db.query("SELECT MAX(updated) FROM hosts").rows[0][0]
        network.clock.advance(65.0)
        after = db.query("SELECT MAX(updated) FROM hosts").rows[0][0]
        assert after > before

    def test_jobs_accumulate(self, network, db):
        network.clock.advance(1000.0)
        n = db.query("SELECT COUNT(*) FROM jobs").rows[0][0]
        assert n > 0

    def test_host_row_matches_spec(self, db, hosts):
        h = hosts[0]
        row = db.query(
            f"SELECT cpus, ram_mb FROM hosts WHERE name = '{h.spec.name}'"
        ).rows[0]
        assert row == [h.spec.cpu_count, h.spec.ram_mb]


class TestAgentProtocol:
    def test_select_ok(self, network, agent):
        kind, cols, rows = network.request(
            "gateway", agent.address, "SELECT name FROM hosts ORDER BY name LIMIT 1"
        )
        assert kind == "ok"
        assert cols == ["name"]
        assert len(rows) == 1

    def test_read_only_blocks_dml(self, network, agent):
        kind, msg = network.request("gateway", agent.address, "DELETE FROM hosts")
        assert kind == "error" and "read-only" in msg

    def test_sql_error_reported(self, network, agent):
        kind, msg = network.request("gateway", agent.address, "SELECT * FROM nope")
        assert kind == "error"

    def test_parse_error_reported(self, network, agent):
        kind, msg = network.request("gateway", agent.address, "SELEKT *")
        assert kind == "error"

    def test_writable_agent_accepts_dml(self, network, hosts):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        agent = SqlAgent(db, network, "n1", port=6543, read_only=False)
        kind, n = network.request(
            "gateway", agent.address, "INSERT INTO t (a) VALUES (1)"
        )
        assert (kind, n) == ("count", 1)

    def test_request_counter(self, network, agent):
        network.request("gateway", agent.address, "SELECT COUNT(*) FROM hosts")
        assert agent.requests_served == 1
