"""Unit tests for the SchemaManager."""

import pytest

from repro.core.schema_manager import SchemaManager
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping


@pytest.fixture
def sm():
    return SchemaManager()


def make_mapping(name="m"):
    return SchemaMapping(name, [GroupMapping("Host", [MappingRule("HostName", "h")])])


class TestMappings:
    def test_default_returned_without_override(self, sm):
        default = make_mapping()
        assert sm.mapping_for("d", default=default) is default

    def test_missing_default_raises(self, sm):
        with pytest.raises(KeyError):
            sm.mapping_for("d")

    def test_override_wins(self, sm):
        override = make_mapping("override")
        sm.set_mapping("d", override)
        assert sm.mapping_for("d", default=make_mapping()) is override

    def test_clear_reverts_to_default(self, sm):
        sm.set_mapping("d", make_mapping())
        assert sm.clear_mapping("d")
        default = make_mapping()
        assert sm.mapping_for("d", default=default) is default

    def test_clear_missing_returns_false(self, sm):
        assert not sm.clear_mapping("d")

    def test_overridden_drivers_listed(self, sm):
        sm.set_mapping("b", make_mapping())
        sm.set_mapping("a", make_mapping())
        assert sm.overridden_drivers() == ["a", "b"]


class TestVersioning:
    def test_set_bumps_version(self, sm):
        v0 = sm.version
        sm.set_mapping("d", make_mapping())
        assert sm.version == v0 + 1

    def test_clear_bumps_version(self, sm):
        sm.set_mapping("d", make_mapping())
        v = sm.version
        sm.clear_mapping("d")
        assert sm.version == v + 1

    def test_noop_clear_keeps_version(self, sm):
        v = sm.version
        sm.clear_mapping("nope")
        assert sm.version == v


class TestConnectionConsistency:
    def test_statement_picks_up_runtime_mapping_change(self, network, host):
        """Paper Figure 5: statements re-check the schema cache."""
        from repro.agents.snmp import SnmpAgent
        from repro.drivers.snmp_driver import SnmpDriver
        from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping

        SnmpAgent(host, network)
        driver = SnmpDriver(network, gateway_host="gateway")
        manager = SchemaManager()
        conn = driver.connect(
            "jdbc:snmp://n0/x", {"schema_manager": manager, "schema": manager.schema}
        )
        rows = conn.create_statement().execute_query("SELECT HostName FROM Host").to_dicts()
        assert rows[0]["HostName"] == "n0"
        # Install an override that renames hosts; the SAME connection must
        # see it on its next statement.
        override = SchemaMapping(
            "JDBC-SNMP",
            [
                GroupMapping(
                    "Host",
                    [MappingRule("HostName", "_host", transform=lambda v: f"renamed-{v}")],
                )
            ],
        )
        manager.set_mapping("JDBC-SNMP", override)
        rows = conn.create_statement().execute_query("SELECT HostName FROM Host").to_dicts()
        assert rows[0]["HostName"] == "renamed-n0"
