"""Unit tests for the JDBC-SQL driver and its WHERE pushdown."""

import pytest

from repro.agents.sqlagent import SqlAgent, seed_site_database
from repro.dbapi.exceptions import SQLException
from repro.drivers.sql_driver import SqlDriver


@pytest.fixture
def agent(network, hosts):
    db = seed_site_database(hosts, network)
    network.clock.advance(600.0)
    return SqlAgent(db, network, "n3")


@pytest.fixture
def driver(network):
    return SqlDriver(network, gateway_host="gateway")


@pytest.fixture
def conn(driver, agent):
    return driver.connect("jdbc:sql://n3/sitedb")


def query(conn, sql):
    return conn.create_statement().execute_query(sql)


class TestTranslation:
    def test_host_group(self, conn, hosts):
        rows = query(conn, "SELECT HostName, SiteName FROM Host").to_dicts()
        assert {r["HostName"] for r in rows} == {h.spec.name for h in hosts}

    def test_processor_partial_mapping(self, conn, hosts):
        rows = query(
            conn, "SELECT HostName, CPUCount, LoadAverage1Min FROM Processor"
        ).to_dicts()
        by_host = {r["HostName"]: r for r in rows}
        assert by_host[hosts[0].spec.name]["CPUCount"] == hosts[0].spec.cpu_count
        assert isinstance(by_host[hosts[0].spec.name]["LoadAverage1Min"], float)

    def test_unmapped_fields_null(self, conn):
        rows = query(conn, "SELECT CPUIdle FROM Processor").to_dicts()
        assert all(r["CPUIdle"] is None for r in rows)

    def test_jobs_from_accounting_table(self, conn):
        rows = query(conn, "SELECT JobId, Owner, State FROM Job").to_dicts()
        assert rows
        assert all(r["JobId"].startswith("db") for r in rows)

    def test_unserved_group_rejected(self, conn):
        with pytest.raises(SQLException):
            query(conn, "SELECT * FROM MainMemory")


class TestPushdown:
    def test_mappable_where_pushed(self, driver, conn):
        before = SqlDriver.pushdowns
        query(conn, "SELECT HostName FROM Processor WHERE CPUCount >= 2")
        assert SqlDriver.pushdowns == before + 1

    def test_pushed_results_match_local_filtering(self, conn):
        pushed = query(
            conn, "SELECT HostName FROM Processor WHERE CPUCount >= 2"
        ).to_dicts()
        everything = query(conn, "SELECT HostName, CPUCount FROM Processor").to_dicts()
        expected = sorted(r["HostName"] for r in everything if r["CPUCount"] >= 2)
        assert sorted(r["HostName"] for r in pushed) == expected

    def test_unmappable_where_falls_back(self, driver, conn):
        before = SqlDriver.pushdowns
        rows = query(
            conn, "SELECT HostName FROM Processor WHERE CPUIdle IS NULL"
        ).to_dicts()
        assert SqlDriver.pushdowns == before  # no pushdown
        assert rows  # CPUIdle is always NULL here, so all hosts match

    def test_pushdown_reduces_bytes_on_selective_query(self, conn, network):
        network.stats.reset()
        query(conn, "SELECT JobId FROM Job WHERE Owner = 'nobody-matches'")
        selective = network.stats.bytes_sent
        network.stats.reset()
        query(conn, "SELECT JobId FROM Job")
        full = network.stats.bytes_sent
        assert selective < full


class TestErrors:
    def test_native_error_surfaces(self, network, hosts):
        """An agent DB missing expected tables produces an SQLException."""
        from repro.sql.database import Database

        empty = Database()
        empty.create_table("hosts", [("name", "TEXT")])
        SqlAgent(empty, network, "n2", port=7777)
        driver = SqlDriver(network, gateway_host="gateway")
        conn = driver.connect("jdbc:sql://n2:7777/x")
        with pytest.raises(SQLException):
            query(conn, "SELECT JobId FROM Job")
