"""Unit tests for the GMA Global layer: directory, producer, consumer."""

import pytest

from repro.core.policy import GatewayPolicy
from repro.core.request_manager import QueryMode
from repro.core.security import AccessRule
from repro.gma.consumer import GatewayConsumer, RemoteQueryFailure
from repro.gma.directory import DirectoryClient, GMADirectory
from repro.gma.global_layer import GlobalLayer, RemoteQueryError
from repro.gma.records import ProducerRecord
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Network
from repro.testbed import build_site


@pytest.fixture
def fabric():
    clock = VirtualClock()
    network = Network(clock, seed=41)
    a = build_site(network, name="site-a", n_hosts=2, agents=("snmp",), seed=1)
    b = build_site(network, name="site-b", n_hosts=2, agents=("snmp", "ganglia"), seed=2)
    clock.advance(20.0)
    directory = GMADirectory(network)
    gla = GlobalLayer(a.gateway, directory)
    glb = GlobalLayer(b.gateway, directory)
    return network, directory, a, b, gla, glb


class TestDirectory:
    def test_producers_registered(self, fabric):
        _, directory, *_ = fabric
        assert {p.site for p in directory.producers()} == {"site-a", "site-b"}

    def test_lookup_site_via_client(self, fabric):
        network, directory, a, *_ = fabric
        client = DirectoryClient(network, a.gateway.host, directory.address)
        hits = client.lookup_site("site-b")
        assert len(hits) == 1 and hits[0].gateway_host == "site-b-gw"

    def test_unregister(self, fabric):
        _, directory, a, b, gla, glb = fabric
        gla.unregister()
        assert {p.site for p in directory.producers()} == {"site-b"}

    def test_reregister_overwrites(self, fabric):
        _, directory, a, _, gla, _ = fabric
        gla.register()
        assert len([p for p in directory.producers() if p.site == "site-a"]) == 1

    def test_malformed_request_answered(self, fabric):
        network, directory, a, *_ = fabric
        resp = network.request(a.gateway.host, directory.address, "garbage")
        assert resp[0] == "error"

    def test_record_groups_published(self, fabric):
        _, directory, *_ = fabric
        record = directory.producers()[0]
        assert "Processor" in record.groups


class TestRemoteQueries:
    def test_query_remote_site(self, fabric):
        network, _, a, b, gla, _ = fabric
        result = gla.query_remote(
            "site-b", "SELECT HostName FROM Host", mode="realtime"
        )
        assert {r["HostName"] for r in result.dicts()} == set(b.host_names())

    def test_remote_urls_narrow_query(self, fabric):
        network, _, a, b, gla, _ = fabric
        url = b.url_for("snmp", host=b.host_names()[0])
        result = gla.query_remote("site-b", "SELECT HostName FROM Host", urls=[url], mode="realtime")
        assert len(result.rows) == 1

    def test_unknown_site_fails(self, fabric):
        _, _, _, _, gla, _ = fabric
        with pytest.raises(RemoteQueryError):
            gla.query_remote("site-z", "SELECT * FROM Host")

    def test_dead_remote_gateway_fails(self, fabric):
        network, _, a, b, gla, _ = fabric
        network.set_host_up(b.gateway.host, False)
        with pytest.raises(RemoteQueryError):
            gla.query_remote("site-b", "SELECT * FROM Host", mode="realtime")

    def test_remote_error_surfaces(self, fabric):
        _, _, _, _, gla, _ = fabric
        with pytest.raises(RemoteQueryError):
            gla.query_remote("site-b", "SELEKT broken")

    def test_gateway_to_gateway_cache(self, fabric):
        network, _, a, b, gla, _ = fabric
        sql = "SELECT HostName FROM Host"
        gla.query_remote("site-b", sql)
        network.stats.reset()
        result = gla.query_remote("site-b", sql)
        assert gla.stats["remote_cache_hits"] == 1
        assert network.stats.requests == 0  # served locally
        assert result.rows

    def test_cache_disabled(self, fabric):
        network, directory, a, b, _, _ = fabric
        gl = GlobalLayer(a.gateway, directory, producer_port=8311, cache_remote=False)
        sql = "SELECT HostName FROM Host"
        gl.query_remote("site-b", sql)
        gl.query_remote("site-b", sql)
        assert gl.stats["remote_cache_hits"] == 0

    def test_known_sites(self, fabric):
        _, _, _, _, gla, _ = fabric
        assert gla.known_sites() == ["site-a", "site-b"]


class TestProducerEndpoint:
    def test_groups_op(self, fabric):
        network, _, a, b, *_ = fabric
        from repro.gma.producer import PRODUCER_PORT
        from repro.simnet.network import Address

        resp = network.request(
            a.gateway.host, Address(b.gateway.host, PRODUCER_PORT), {"op": "groups"}
        )
        assert resp["ok"] and "Processor" in resp["groups"]

    def test_sources_op(self, fabric):
        network, _, a, b, *_ = fabric
        from repro.gma.producer import PRODUCER_PORT
        from repro.simnet.network import Address

        resp = network.request(
            a.gateway.host, Address(b.gateway.host, PRODUCER_PORT), {"op": "sources"}
        )
        assert resp["ok"] and len(resp["urls"]) == len(b.source_urls)

    def test_malformed_request(self, fabric):
        network, _, a, b, *_ = fabric
        from repro.gma.producer import PRODUCER_PORT
        from repro.simnet.network import Address

        resp = network.request(
            a.gateway.host, Address(b.gateway.host, PRODUCER_PORT), "junk"
        )
        assert not resp["ok"]

    def test_remote_security_enforced_by_owning_gateway(self):
        """Paper §2: security decisions defer to the owning gateway."""
        clock = VirtualClock()
        network = Network(clock, seed=5)
        a = build_site(network, name="open", n_hosts=1, agents=("snmp",))
        b = build_site(
            network,
            name="locked",
            n_hosts=1,
            agents=("snmp",),
            policy=GatewayPolicy(security_enabled=True),
        )
        clock.advance(10.0)
        # The locked gateway denies the "remote" role everything.
        b.gateway.fgsl.add_rule(AccessRule(allow=False, who="role:remote"))
        directory = GMADirectory(network)
        gla = GlobalLayer(a.gateway, directory)
        GlobalLayer(b.gateway, directory)
        with pytest.raises(RemoteQueryError) as err:
            gla.query_remote("locked", "SELECT * FROM Host", mode="realtime")
        assert "may not read" in str(err.value)
