"""Unit tests for site reports over history."""

import pytest

from repro.web.reports import (
    AvailabilityTracker,
    availability_report,
    capacity_report,
    utilisation_report,
)


@pytest.fixture
def polled_site(site):
    """Site with several Processor/MainMemory/FileSystem samples recorded."""
    gw = site.gateway
    snmp_urls = [u for u in site.source_urls if u.startswith("jdbc:snmp")]
    for _ in range(4):
        gw.query(snmp_urls, "SELECT * FROM Processor")
        gw.query(snmp_urls, "SELECT * FROM MainMemory")
        gw.query(snmp_urls, "SELECT * FROM FileSystem")
        site.clock.advance(15.0)
    return site


class TestUtilisation:
    def test_one_entry_per_host(self, polled_site):
        report = utilisation_report(polled_site.gateway)
        assert [e.host for e in report] == polled_site.host_names()

    def test_statistics_consistent(self, polled_site):
        for entry in utilisation_report(polled_site.gateway):
            assert entry.samples == 4
            assert entry.load_min <= entry.load_avg <= entry.load_max
            assert entry.util_avg is not None and 0 <= entry.util_avg <= 100

    def test_since_narrows_window(self, polled_site):
        cut = polled_site.clock.now() - 20.0
        report = utilisation_report(polled_site.gateway, since=cut)
        assert all(e.samples <= 2 for e in report)

    def test_empty_history(self, site):
        assert utilisation_report(site.gateway) == []

    def test_format_line(self, polled_site):
        line = utilisation_report(polled_site.gateway)[0].format()
        assert "load" in line and "cpu" in line


class TestCapacity:
    def test_totals_match_specs(self, polled_site):
        summary = capacity_report(polled_site.gateway)
        hosts = polled_site.hosts
        assert summary.hosts == len(hosts)
        assert summary.total_cpus == sum(h.spec.cpu_count for h in hosts)
        assert summary.total_ram_mb == pytest.approx(
            sum(h.spec.ram_mb for h in hosts), rel=0.01
        )
        expected_disk = sum(
            size for h in hosts for (_r, _t, size) in h.spec.filesystems
        )
        assert summary.total_disk_mb == pytest.approx(expected_disk, rel=0.01)

    def test_free_bounded_by_total(self, polled_site):
        summary = capacity_report(polled_site.gateway)
        assert 0 <= summary.free_ram_mb <= summary.total_ram_mb
        assert 0 <= summary.free_disk_mb <= summary.total_disk_mb

    def test_latest_sample_wins(self, polled_site):
        """Capacity must use each host's newest sample, not an average."""
        gw = polled_site.gateway
        before = capacity_report(gw)
        polled_site.clock.advance(600.0)
        urls = [u for u in polled_site.source_urls if u.startswith("jdbc:snmp")]
        gw.query(urls, "SELECT * FROM MainMemory")
        after = capacity_report(gw)
        assert after.total_ram_mb == before.total_ram_mb  # static hardware

    def test_empty_history(self, site):
        summary = capacity_report(site.gateway)
        assert summary.hosts == 0 and summary.total_cpus == 0


class TestAvailability:
    def test_counts_poll_outcomes(self, site):
        gw = site.gateway
        tracker = AvailabilityTracker(gw, sample_period=5.0)
        url = site.url_for("snmp")
        gw.query(url, "SELECT * FROM Host")
        site.clock.advance(6.0)
        site.network.set_host_up(site.host_names()[0], False)
        gw.query(url, "SELECT * FROM Host")
        site.clock.advance(6.0)
        report = availability_report(tracker)
        entry = next(e for e in report if e.url == url)
        assert entry.polls == 2 and entry.ok == 1
        assert entry.ratio == 0.5

    def test_unpolled_sources_absent(self, site):
        tracker = AvailabilityTracker(site.gateway, sample_period=5.0)
        site.clock.advance(20.0)
        assert tracker.report() == []

    def test_same_poll_not_double_counted(self, site):
        gw = site.gateway
        tracker = AvailabilityTracker(gw, sample_period=5.0)
        gw.query(site.url_for("snmp"), "SELECT * FROM Host")
        site.clock.advance(30.0)  # many sample ticks, one poll
        entry = tracker.report()[0]
        assert entry.polls == 1

    def test_format(self, site):
        gw = site.gateway
        tracker = AvailabilityTracker(gw, sample_period=5.0)
        gw.query(site.url_for("snmp"), "SELECT * FROM Host")
        site.clock.advance(6.0)
        assert "100.0%" in tracker.report()[0].format()
