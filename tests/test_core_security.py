"""Unit tests for the CGSL and FGSL security layers."""

import pytest

from repro.core.errors import SecurityError
from repro.core.security import (
    ANONYMOUS,
    AccessRule,
    CoarseGrainedSecurity,
    FineGrainedSecurity,
    Principal,
)

ALICE = Principal.with_roles("alice", "admin", "user")
BOB = Principal.with_roles("bob", "user")
EVE = Principal.with_roles("eve", "student")


class TestCoarseGrained:
    def test_query_open_by_default(self):
        cgsl = CoarseGrainedSecurity()
        assert cgsl.permits(EVE, "query")

    def test_admin_restricted_to_admin_role(self):
        cgsl = CoarseGrainedSecurity()
        assert cgsl.permits(ALICE, "admin")
        assert not cgsl.permits(BOB, "admin")

    def test_check_raises(self):
        cgsl = CoarseGrainedSecurity()
        with pytest.raises(SecurityError):
            cgsl.check(BOB, "admin")

    def test_grant_by_name(self):
        cgsl = CoarseGrainedSecurity()
        cgsl.grant("admin", "bob")
        assert cgsl.permits(BOB, "admin")

    def test_revoke(self):
        cgsl = CoarseGrainedSecurity()
        cgsl.grant("admin", "bob")
        cgsl.revoke("admin", "bob")
        assert not cgsl.permits(BOB, "admin")

    def test_restrict_replaces(self):
        cgsl = CoarseGrainedSecurity()
        cgsl.restrict("query", "role:user")
        assert cgsl.permits(BOB, "query")
        assert not cgsl.permits(EVE, "query")

    def test_disabled_allows_everything(self):
        cgsl = CoarseGrainedSecurity(enabled=False)
        assert cgsl.permits(EVE, "admin")

    def test_unknown_operation_rejected(self):
        with pytest.raises(SecurityError):
            CoarseGrainedSecurity().permits(BOB, "frobnicate")


class TestFineGrained:
    def test_default_allow(self):
        fgsl = FineGrainedSecurity()
        assert fgsl.permits(EVE, "h1", "Processor")

    def test_default_deny_mode(self):
        fgsl = FineGrainedSecurity(default_allow=False)
        assert not fgsl.permits(EVE, "h1", "Processor")

    def test_first_match_wins(self):
        fgsl = FineGrainedSecurity()
        fgsl.add_rules(
            [
                AccessRule(allow=False, who="role:student", group_pattern="Job"),
                AccessRule(allow=True, who="*"),
            ]
        )
        assert not fgsl.permits(EVE, "h1", "Job")
        assert fgsl.permits(EVE, "h1", "Processor")
        assert fgsl.permits(BOB, "h1", "Job")

    def test_host_pattern_wildcards(self):
        fgsl = FineGrainedSecurity(default_allow=False)
        fgsl.add_rule(AccessRule(allow=True, who="*", host_pattern="site-a-*"))
        assert fgsl.permits(EVE, "site-a-n01", "Processor")
        assert not fgsl.permits(EVE, "site-b-n01", "Processor")

    def test_principal_name_rule(self):
        fgsl = FineGrainedSecurity(default_allow=False)
        fgsl.add_rule(AccessRule(allow=True, who="bob"))
        assert fgsl.permits(BOB, "h", "G")
        assert not fgsl.permits(EVE, "h", "G")

    def test_disabled_allows_everything(self):
        fgsl = FineGrainedSecurity(enabled=False, default_allow=False)
        assert fgsl.permits(EVE, "h", "G")

    def test_check_raises_with_context(self):
        fgsl = FineGrainedSecurity(default_allow=False)
        with pytest.raises(SecurityError) as err:
            fgsl.check(EVE, "h1", "Job")
        assert "Job" in str(err.value) and "h1" in str(err.value)

    def test_anonymous_principal_has_role(self):
        assert "anonymous" in ANONYMOUS.roles
