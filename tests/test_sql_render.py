"""Unit tests for SQL AST rendering (render = parse^-1 semantically)."""

import pytest

from repro.sql.executor import execute_select
from repro.sql.parser import parse_select
from repro.sql.render import render_expr, render_select, rewrite_columns

ROWS = [
    {"a": 1, "b": "x", "c": None},
    {"a": 2, "b": "y", "c": 5},
    {"a": 3, "b": "xx", "c": 7},
]


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT * FROM t",
        "SELECT a, b AS bee FROM t",
        "SELECT DISTINCT a FROM t WHERE a > 1",
        "SELECT * FROM t WHERE a IN (1, 2) AND b LIKE 'x%'",
        "SELECT * FROM t WHERE a BETWEEN 1 AND 2 OR c IS NULL",
        "SELECT * FROM t WHERE NOT (a = 1) ORDER BY a DESC LIMIT 2 OFFSET 1",
        "SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 0",
        "SELECT a FROM t WHERE b = 'it''s'",
    ],
)
def test_render_round_trip_semantics(sql):
    """Rendered text re-parses and produces identical results."""
    original = parse_select(sql)
    rendered = render_select(original)
    reparsed = parse_select(rendered)
    r1 = execute_select(original, ["a", "b", "c"], ROWS)
    r2 = execute_select(reparsed, ["a", "b", "c"], ROWS)
    assert r1.columns == r2.columns
    assert r1.rows == r2.rows


class TestRenderExpr:
    def test_null_true_false(self):
        w = parse_select("SELECT * FROM t WHERE a = NULL OR b = TRUE").where
        text = render_expr(w)
        assert "NULL" in text and "TRUE" in text

    def test_string_quotes_escaped(self):
        w = parse_select("SELECT * FROM t WHERE b = 'o''k'").where
        assert "'o''k'" in render_expr(w)


class TestRewriteColumns:
    def test_full_rewrite(self):
        w = parse_select("SELECT * FROM t WHERE Glue1 > 5 AND Glue2 = 'x'").where
        out = rewrite_columns(w, {"Glue1": "n1", "Glue2": "n2"})
        text = render_expr(out)
        assert "n1" in text and "n2" in text and "Glue" not in text

    def test_unmapped_column_blocks_rewrite(self):
        w = parse_select("SELECT * FROM t WHERE Glue1 > 5 AND Unknown = 1").where
        assert rewrite_columns(w, {"Glue1": "n1"}) is None

    def test_literal_only_expression_passes(self):
        w = parse_select("SELECT * FROM t WHERE 1 = 1").where
        assert rewrite_columns(w, {}) is not None

    def test_in_and_between_rewritten(self):
        w = parse_select("SELECT * FROM t WHERE G IN (1,2) AND G BETWEEN 0 AND 9").where
        out = rewrite_columns(w, {"G": "g"})
        assert out is not None and "g" in render_expr(out)

    def test_aggregate_blocks_rewrite(self):
        w = parse_select("SELECT * FROM t WHERE COUNT(*) > 1").where
        assert rewrite_columns(w, {}) is None
