#!/usr/bin/env python
"""Using GridRM as a scheduler's information service.

The paper's introduction motivates the homogeneous view with "high-level
tools for tasks such as intelligent system monitoring, scheduling,
load-balancing, and task-migration".  This example is that downstream
tool: a toy job scheduler that places work on the least-loaded adequate
host across two sites, consuming GridRM instead of speaking five agent
protocols itself.

It also shows why the cache policy matters to such tools: the scheduler
polls every placement decision, but with CACHED_OK mode the agents see a
bounded probe rate no matter how hot the job queue is.

Run:  python examples/scheduler_integration.py
"""

from dataclasses import dataclass

from repro import GMADirectory, GlobalLayer, QueryMode, build_testbed


@dataclass
class Job:
    name: str
    min_cpus: int
    min_ram_mb: float


JOBS = [
    Job("render-frames", min_cpus=2, min_ram_mb=512),
    Job("index-logs", min_cpus=1, min_ram_mb=256),
    Job("mc-simulation", min_cpus=4, min_ram_mb=1024),
    Job("nightly-backup", min_cpus=1, min_ram_mb=256),
    Job("matrix-solve", min_cpus=2, min_ram_mb=1024),
    Job("web-crawl", min_cpus=1, min_ram_mb=512),
]


class GridScheduler:
    """Places jobs by querying GridRM's homogeneous view."""

    def __init__(self, layers):
        self.layers = layers  # {site_name: GlobalLayer}
        self.placements: dict[str, int] = {}

    def candidate_hosts(self):
        """(site, host, cpus, ram, load) for every host on every site."""
        rows = []
        for site_name, layer in self.layers.items():
            proc = layer.gateway.query_all_sources(
                "SELECT HostName, CPUCount, LoadAverage1Min FROM Processor",
                mode=QueryMode.CACHED_OK,
            )
            mem = layer.gateway.query_all_sources(
                "SELECT HostName, RAMSizeMB FROM MainMemory",
                mode=QueryMode.CACHED_OK,
            )
            ram_by_host = {
                r["HostName"]: r["RAMSizeMB"]
                for r in mem.dicts()
                if r["RAMSizeMB"] is not None
            }
            for r in proc.dicts():
                host, cpus, load = r["HostName"], r["CPUCount"], r["LoadAverage1Min"]
                if None in (host, cpus, load):
                    continue
                rows.append((site_name, host, cpus, ram_by_host.get(host, 0.0), load))
        return rows

    def place(self, job: Job):
        # Penalise hosts we already loaded up this round.
        def effective_load(row):
            _, host, cpus, _, load = row
            return (load + 0.7 * self.placements.get(host, 0)) / cpus

        fits = [
            row
            for row in self.candidate_hosts()
            if row[2] >= job.min_cpus and row[3] >= job.min_ram_mb
        ]
        if not fits:
            return None
        best = min(fits, key=effective_load)
        self.placements[best[1]] = self.placements.get(best[1], 0) + 1
        return best


def main() -> None:
    network, sites = build_testbed(
        n_sites=2, n_hosts=4, agents=("snmp", "ganglia"), seed=5
    )
    network.clock.advance(60.0)
    directory = GMADirectory(network)
    layers = {s.name: GlobalLayer(s.gateway, directory) for s in sites}
    scheduler = GridScheduler(layers)

    print("=== placing the job queue across both sites ===")
    for job in JOBS:
        choice = scheduler.place(job)
        if choice is None:
            print(f"   {job.name:15s} -> NO HOST FITS "
                  f"(needs {job.min_cpus} cpus, {job.min_ram_mb} MB)")
            continue
        site, host, cpus, ram, load = choice
        print(
            f"   {job.name:15s} -> {host} @ {site} "
            f"(cpus={cpus}, ram={ram:.0f}MB, load={load:.2f})"
        )
        network.clock.advance(5.0)  # decisions are seconds apart

    print("\n=== agent intrusion stayed bounded thanks to CACHED_OK ===")
    for site in sites:
        gw = site.gateway
        stats = gw.request_manager.stats
        print(
            f"   {site.name}: {stats['queries']} scheduler queries, "
            f"only {stats['realtime_fetches']} agent polls, "
            f"{stats['cache_served']} served from cache"
        )


if __name__ == "__main__":
    main()
