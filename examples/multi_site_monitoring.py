#!/usr/bin/env python
"""Multi-site monitoring through the GMA Global layer (paper Figure 1).

Three Grid sites, each with its own gateway and agents, joined by a GMA
directory.  A client connected to site-a transparently reads site-c's
resources; the gateway-to-gateway cache then answers repeats without any
WAN traffic — the scalability mechanism of paper §4.

Run:  python examples/multi_site_monitoring.py
"""

from repro import Console, GMADirectory, GlobalLayer, build_testbed


def main() -> None:
    network, sites = build_testbed(
        n_sites=3, n_hosts=3, agents=("snmp", "ganglia"), seed=2
    )
    network.clock.advance(45.0)

    directory = GMADirectory(network)
    layers = {site.name: GlobalLayer(site.gateway, directory) for site in sites}
    home = layers["site-a"]

    print("=== sites registered in the GMA directory ===")
    for record in directory.producers():
        print(f"   {record.site}: gateway {record.gateway_host}:{record.port}")

    print("\n=== client at site-a reads site-c's processors remotely ===")
    result = home.query_remote(
        "site-c",
        "SELECT HostName, LoadAverage1Min, CPUCount FROM Processor ORDER BY HostName",
        mode="realtime",
    )
    for row in result.dicts():
        print("  ", row)

    print("\n=== repeat query: served by the inter-gateway cache ===")
    t0 = network.clock.now()
    network.stats.reset()
    home.query_remote(
        "site-c",
        "SELECT HostName, LoadAverage1Min, CPUCount FROM Processor ORDER BY HostName",
        mode="realtime",
    )
    print(
        f"   wan requests: {network.stats.requests}, "
        f"virtual time: {(network.clock.now() - t0) * 1000:.2f} ms, "
        f"cache hits: {home.stats['remote_cache_hits']}"
    )

    print("\n=== find the least-loaded host across ALL sites ===")
    best = None
    for site in sites:
        result = layers[site.name].gateway.query_all_sources(
            "SELECT HostName, SiteName, LoadAverage1Min FROM Processor"
        )
        for row in result.dicts():
            load = row["LoadAverage1Min"]
            if load is not None and (best is None or load < best[2]):
                best = (row["SiteName"] or site.name, row["HostName"], load)
    print(f"   -> {best[1]} at {best[0]} (load {best[2]:.2f})")

    print("\n=== transparent routing: a remote URL given straight to site-a ===")
    remote_url = sites[2].url_for("snmp")
    result = sites[0].gateway.query(
        remote_url, "SELECT HostName, SiteName FROM Host"
    )
    print(f"   {remote_url} -> {result.dicts()}")
    print("   (site-a's gateway forwarded it to site-c's gateway via GMA)")

    print("\n=== site-a's console tree after all this ===")
    print(Console(sites[0].gateway).tree_view())


if __name__ == "__main__":
    main()
