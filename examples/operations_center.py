#!/usr/bin/env python
"""A Grid operations centre built on GridRM's extension surface.

Combines the pieces a real 2003 operations team would have wired up:

* **threshold alert rules** at each site's gateway (Figure 3's
  "Threshold exceeded. Event transmitted");
* **event subscriptions** pushing every alert across the WAN to a
  central **archiver** (GMA publish/subscribe, §3.1.5);
* **multi-group queries** joining Processor and MainMemory per host
  ("Clients select one or more GLUE group names to query", §3.2.3);
* the **servlet** endpoint (Figure 1's "GridRM Gateway (Servlet)") the
  NOC's dashboards would scrape.

Run:  python examples/operations_center.py
"""

from repro import build_testbed
from repro.core.alerts import AlertRule
from repro.gma.archiver import EventArchiver
from repro.gma.subscription import EventPublisher
from repro.web.servlet import GatewayServlet, http_get


def main() -> None:
    network, sites = build_testbed(
        n_sites=2, n_hosts=4, agents=("snmp", "ganglia"), seed=6
    )
    clock = network.clock
    clock.advance(30.0)

    # --- each site gets alert rules and an event publisher -------------
    publishers = []
    for site in sites:
        gw = site.gateway
        gw.alerts.add_rule(
            AlertRule(
                name="cpu-hot",
                urls=[site.url_for("ganglia")],
                sql="SELECT HostName, CPUUtilization FROM Processor "
                    "WHERE CPUUtilization > 60",
                period=30.0,
                severity="warning",
                rearm_after=300.0,
            )
        )
        gw.alerts.add_rule(
            AlertRule(
                name="memory-low",
                urls=[site.url_for("ganglia")],
                sql="SELECT HostName, RAMAvailableMB FROM MainMemory "
                    "WHERE RAMAvailableMB < 400",
                period=60.0,
                severity="error",
                rearm_after=300.0,
            )
        )
        publishers.append(EventPublisher(gw))

    # --- the central archiver follows every site -----------------------
    archiver = EventArchiver(network, "noc-archive")
    for publisher in publishers:
        archiver.follow(publisher, name_prefix="alert.")

    print("=== monitoring both sites for 30 virtual minutes ===")
    clock.advance(1800.0)
    print(f"   events archived centrally: {archiver.event_count()}")
    for name, count in archiver.query(
        "SELECT name, COUNT(*) AS n FROM events GROUP BY name ORDER BY n DESC"
    ).rows:
        print(f"     {name}: {count}")

    print("\n=== noisiest hosts across the whole Grid ===")
    for host, count in archiver.noisiest_hosts(5):
        print(f"   {host}: {count} alert(s)")

    print("\n=== one SQL join answers 'load AND free memory per host' ===")
    for site in sites:
        result = site.gateway.query(
            site.url_for("ganglia"),
            "SELECT HostName, LoadAverage1Min, RAMAvailableMB "
            "FROM Processor, MainMemory ORDER BY LoadAverage1Min DESC",
        )
        worst = result.dicts()[0]
        print(
            f"   {site.name}: busiest is {worst['HostName']} "
            f"(load {worst['LoadAverage1Min']:.2f}, "
            f"{worst['RAMAvailableMB']:.0f} MB free)"
        )

    print("\n=== the NOC dashboard scrapes the servlet ===")
    servlet = GatewayServlet(sites[0].gateway)
    code, body = http_get(
        network, "noc-archive", servlet.address, "/alerts"
    )
    print(f"   GET /alerts -> {code}")
    for line in body.splitlines()[:6]:
        print("   " + line)


if __name__ == "__main__":
    main()
