#!/usr/bin/env python
"""Quickstart: build a site, query heterogeneous agents with one SQL dialect.

This is the paper's elevator pitch in 40 lines: SNMP and Ganglia speak
completely different protocols and formats, yet the same
``SELECT ... FROM Processor`` works against both and returns rows in the
same GLUE shape.

Run:  python examples/quickstart.py
"""

from repro import QueryMode, build_testbed


def main() -> None:
    # One site, four machines, two very different monitoring agents.
    network, (site,) = build_testbed(n_hosts=4, agents=("snmp", "ganglia"), seed=1)
    network.clock.advance(60.0)  # let the agents take some measurements
    gateway = site.gateway

    print("=== data sources configured at the gateway ===")
    for source in gateway.sources():
        print("  ", source.url)

    sql = "SELECT HostName, CPUCount, LoadAverage1Min, CPUUtilization FROM Processor"

    print("\n=== fine-grained source: SNMP (one host per agent) ===")
    result = gateway.query(site.url_for("snmp"), sql)
    for row in result.dicts():
        print("  ", row)

    print("\n=== coarse-grained source: Ganglia (whole cluster per query) ===")
    result = gateway.query(site.url_for("ganglia"), sql + " ORDER BY HostName")
    for row in result.dicts():
        print("  ", row)

    print("\n=== consolidated: every source at once, WHERE applied ===")
    result = gateway.query_all_sources(
        "SELECT HostName, LoadAverage1Min FROM Processor WHERE LoadAverage1Min > 0.2",
        mode=QueryMode.REALTIME,
    )
    print(f"   {result.ok_sources} sources answered, {len(result.rows)} rows")
    for row in result.dicts():
        print("  ", row)

    print("\n=== the same query, served from the gateway cache ===")
    cached = gateway.query(
        site.url_for("ganglia"), sql + " ORDER BY HostName", mode=QueryMode.CACHED_OK
    )
    print(f"   from_cache={cached.statuses[0].from_cache}")

    print("\n=== and against recorded history ===")
    network.clock.advance(30.0)
    gateway.query(site.url_for("ganglia"), "SELECT * FROM Processor")
    hist = gateway.query(
        site.url_for("ganglia"),
        "SELECT HostName, LoadAverage1Min, RecordedAt FROM Processor",
        mode=QueryMode.HISTORY,
    )
    print(f"   {len(hist.rows)} historical rows recorded so far")


if __name__ == "__main__":
    main()
