#!/usr/bin/env python
"""Event handling: SNMP traps -> GridRM events -> alerts (paper §3.1.5).

SNMP agents watch their host's 1-minute load and emit traps above a
threshold.  The gateway's EventManager translates those native traps into
the GridRM event format, records them in the historical database, fans
them out to registered listeners, and can re-transmit them natively to a
downstream sink — the full Figure 4 pipeline.

Run:  python examples/event_alerts.py
"""

from repro import Console, build_site
from repro.core.events import Event
from repro.simnet.clock import VirtualClock
from repro.simnet.network import Address, Network


def main() -> None:
    clock = VirtualClock()
    network = Network(clock, seed=3)
    site = build_site(
        network,
        name="ops",
        n_hosts=4,
        agents=("snmp",),
        seed=3,
        snmp_trap_threshold=0.8,  # alert when 1-min load > 0.8
    )
    gateway = site.gateway

    alerts: list[Event] = []
    gateway.events.register_listener(alerts.append, name_prefix="load.")

    print("=== monitoring for 30 virtual minutes (threshold: load > 0.8) ===")
    clock.advance(1800.0)

    stats = gateway.events.stats
    print(
        f"   traps received={stats['received']} translated={stats['translated']} "
        f"delivered={stats['delivered']} dropped={stats['dropped']}"
    )

    print("\n=== last few alerts ===")
    for event in alerts[-5:]:
        load = next(iter(event.fields.values()), None)
        load_text = f"{load / 100:.2f}" if isinstance(load, int) else "?"
        print(
            f"   t={event.time:7.1f}s  {event.source_host:10s}  {event.name}"
            f"  severity={event.severity}  load1={load_text}"
        )

    print("\n=== alerts were recorded to history as LogEvents ===")
    result = gateway.history.query(
        "SELECT HostName, COUNT(*) AS alerts FROM LogEvent "
        "GROUP BY HostName ORDER BY HostName"
    )
    for host, count in result.rows:
        print(f"   {host}: {count} alert(s)")

    print("\n=== forwarding the latest alert to a downstream NOC, natively ===")
    network.add_host("noc", site="ops")
    received = []
    network.listen(
        Address("noc", 162),
        lambda p, s: None,
        datagram_handler=lambda p, s: received.append(p),
    )
    if alerts:
        gateway.events.transmit(alerts[-1], Address("noc", 162), kind="snmp-trap")
        clock.advance(1.0)
        print(f"   NOC received {len(received)} native SNMP trap(s) "
              f"({len(received[0])} bytes on the wire)")

    print("\n=== the console tree flags hosts with recent events ===")
    print(Console(gateway).tree_view())


if __name__ == "__main__":
    main()
