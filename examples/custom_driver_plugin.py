#!/usr/bin/env python
"""Writing a new data-source driver plug-in (paper §3.2).

The paper's central promise: "GridRM can be extended to work with any
number of data sources, all communicating via native protocols and
supplying data in a variety of formats".  This example adds a kind of
source the original authors never shipped — an environmental sensor box
(machine-room temperature / humidity / UPS charge) with its own tiny
text protocol — end to end:

1. implement the native agent;
2. extend the GLUE schema with an ``Environment`` group;
3. implement the driver (a ~40-line GridRmDriver subclass);
4. register it with a *running* gateway, no restart;
5. query it with plain SQL like every other source.

Run:  python examples/custom_driver_plugin.py
"""

from repro import build_testbed
from repro.drivers.base import GridRmDriver
from repro.glue.mapping import GroupMapping, MappingRule, SchemaMapping
from repro.glue.schema import GlueField, GlueGroup
from repro.simnet.errors import PortClosedError
from repro.simnet.network import Address

SENSOR_PORT = 7700


# ----------------------------------------------------------------------
# 1. The native agent: answers "READ" with one key=value line per sensor.
# ----------------------------------------------------------------------
class EnvSensorAgent:
    """An environmental monitoring box in the machine room."""

    def __init__(self, network, host_name):
        self.network = network
        self.address = Address(host_name, SENSOR_PORT)
        network.listen(self.address, self._handle)

    def _handle(self, payload, src):
        if str(payload).strip().upper() != "READ":
            return "ERR unknown command"
        t = self.network.clock.now()
        import math

        temp = 21.0 + 3.0 * math.sin(t / 900.0)          # HVAC cycle
        humidity = 45.0 + 5.0 * math.sin(t / 1700.0 + 1)
        battery = max(5.0, 100.0 - (t / 36000.0))        # slow drain
        return (
            f"temp_c={temp:.2f}\nhumidity_pct={humidity:.1f}\n"
            f"ups_charge_pct={battery:.1f}\nstatus=ok"
        )


# ----------------------------------------------------------------------
# 3. The driver plug-in.
# ----------------------------------------------------------------------
class EnvSensorDriver(GridRmDriver):
    """JDBC-style driver for EnvSensorAgent's protocol."""

    protocol = "envsensor"
    default_port = SENSOR_PORT
    display_name = "JDBC-EnvSensor"

    def build_mapping(self):
        return SchemaMapping(
            self.display_name,
            [
                GroupMapping(
                    "Environment",
                    [
                        MappingRule("HostName", "_host"),
                        MappingRule("SiteName", "_site"),
                        MappingRule("Timestamp", "_time"),
                        MappingRule("TemperatureC", "temp_c"),
                        MappingRule("HumidityPercent", "humidity_pct"),
                        MappingRule("UPSChargePercent", "ups_charge_pct"),
                        MappingRule("StatusOk", "status", transform=lambda v: v == "ok"),
                    ],
                )
            ],
        )

    def probe(self, url, *, timeout: float = 1.0) -> bool:
        self.stats["probes"] += 1
        port = url.port if url.port is not None else self.default_port
        try:
            response = self.network.request(
                self.gateway_host, Address(url.host, port), "READ", timeout=timeout
            )
        except PortClosedError:
            return False
        return isinstance(response, str) and "temp_c=" in response

    def fetch_group(self, connection, group, select):
        self.stats["fetches"] += 1
        record = {}
        for line in str(connection.request("READ")).splitlines():
            key, _, value = line.partition("=")
            record[key] = value
        record["_host"] = connection.url.host
        record["_site"] = self.network.site_of(connection.url.host)
        record["_time"] = self.network.clock.now()
        return [record]


def main() -> None:
    network, (site,) = build_testbed(n_hosts=3, agents=("snmp",), seed=4)
    gateway = site.gateway
    clock = network.clock
    clock.advance(30.0)

    # The machine room gets a sensor box on an existing host.
    sensor_host = site.host_names()[0]
    EnvSensorAgent(network, sensor_host)

    # 2. Extend the GLUE schema at the gateway — no restart required.
    gateway.schema_manager.schema.add_group(
        GlueGroup(
            "Environment",
            (
                GlueField("HostName", "TEXT"),
                GlueField("SiteName", "TEXT"),
                GlueField("Timestamp", "TIMESTAMP", "s"),
                GlueField("TemperatureC", "REAL", "", "machine-room temperature"),
                GlueField("HumidityPercent", "REAL", "percent"),
                GlueField("UPSChargePercent", "REAL", "percent"),
                GlueField("StatusOk", "BOOLEAN"),
            ),
            "Machine-room environmental sensors",
        )
    )

    # 4. Register the driver with the live gateway and add the source.
    gateway.register_driver(EnvSensorDriver(network, gateway_host=gateway.host))
    url = f"jdbc:envsensor://{sensor_host}/machine-room"
    gateway.add_source(url)
    print("registered drivers:", ", ".join(gateway.driver_manager.driver_names()))

    # 5. Query it like any other source.
    print("\n=== SELECT * FROM Environment ===")
    for _ in range(4):
        result = gateway.query(url, "SELECT * FROM Environment")
        print("  ", result.dicts()[0])
        clock.advance(600.0)

    print("\n=== SQL works, of course: thresholds, projections ===")
    result = gateway.query(
        url, "SELECT HostName, TemperatureC FROM Environment WHERE TemperatureC > 15"
    )
    print("  ", result.dicts())

    print("\n=== and history accumulated for plotting ===")
    from repro import Console

    print(Console(gateway).plot("Environment", "TemperatureC", host=sensor_host))

    # Dynamic driver selection sees the new driver too: a wildcard URL for
    # this host now matches both the SNMP agent and the sensor box.
    candidates = gateway.registry.locate_all(f"jdbc://{sensor_host}/anything")
    print(
        f"\nwildcard jdbc://{sensor_host}/... candidates: "
        + ", ".join(d.name() for d in candidates)
    )


if __name__ == "__main__":
    main()
